// Cone-bounded re-analysis benchmark: what does ONE edit cost a front-end
// after the first scan of a monorepo-scale tree?
//
// Two protocol-level paths answer the same question ("these files changed,
// what are the findings now?") against identically-warm services:
//
//   warm  — the whole-request path a watch-less front-end pays per edit:
//           re-send the ENTIRE file set as one NDJSON scan line. Timed
//           region: parse_ndjson_request (JSON-decoding every file body)
//           + AnalysisService::scan (re-hash + file-pool probe per file,
//           memoized summary validation, re-analysis of what changed)
//           + render_scan_line.
//   watch — the watch-mode path (service/watch.h): one small NDJSON edit
//           line naming only the changed files. Timed region: parse +
//           WatchSession::edit (pinned ASTs skip hash/probe for every
//           unchanged file; the invalidated cone comes from the reverse
//           project graph) + render_edit_line (delta findings only).
//
// Both paths run the full file set through the same perform_scan, so their
// reports agree byte-for-byte; what differs is the per-edit overhead, which
// is O(tree bytes) for the warm path and O(cone) for watch. The sweep runs
// monorepo scales 1/2/4/8 (~1.3k to ~10k files), single-edit and 16-edit
// batches, best-of-N reps. Results go to BENCH_graph.json (committed).
//
// Correctness gate (always a hard fail): the watch delta after an edit
// that plants a vulnerability must equal the multiset diff of two cold
// scans on fresh single-worker services — checked at workers 1 and 4 and
// under the "ir" taint backend.
//
// Usage: bench_graph [reps] [output.json]
//        bench_graph --smoke [baseline.json]
//
// --smoke is the CI gate: byte-identity plus the machine-independent
// watch/warm wall ratio on a small fixed workload; the ratio failing means
// the watch path lost its edge over the path it exists to replace, which
// no uniformly faster/slower CI box can mask. >20% regression against the
// committed baseline's smoke block fails (the bench_serve precedent).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "corpus/generator.h"
#include "report/export.h"
#include "service/ndjson.h"
#include "service/service.h"
#include "service/watch.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/timing.h"

#ifndef PHPSAFE_REPO_ROOT
#define PHPSAFE_REPO_ROOT "."
#endif

using namespace phpsafe;
using service::AnalysisService;
using service::NdjsonRequest;
using service::ScanRequest;
using service::ScanResponse;
using service::ServiceOptions;
using service::WatchDelta;
using service::WatchEditBatch;
using service::WatchSession;

namespace {

using FileList = std::vector<std::pair<std::string, std::string>>;

/// Client-side NDJSON line carrying the whole file set (untimed: building
/// the request is the client's cost; the benchmark times the server side).
std::string scan_line_json(const std::string& plugin, const FileList& files) {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object();
    w.kv("op", "scan");
    w.kv("plugin", plugin);
    w.key("files").begin_array();
    for (const auto& [name, text] : files) {
        w.begin_object();
        w.kv("name", name);
        w.kv("text", text);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return os.str();
}

/// Client-side NDJSON edit line naming only the changed files.
std::string edit_line_json(const FileList& upserts) {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object();
    w.kv("op", "edit");
    w.key("files").begin_array();
    for (const auto& [name, text] : upserts) {
        w.begin_object();
        w.kv("name", name);
        w.kv("text", text);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return os.str();
}

ScanRequest full_request(const std::string& plugin, const FileList& files,
                         const std::string& backend = "") {
    ScanRequest request;
    request.plugin = plugin;
    request.backend = backend;
    request.files.reserve(files.size());
    for (const auto& [name, text] : files)
        request.files.emplace_back(name, text);
    return request;
}

/// One warm whole-request round trip; returns wall seconds of the server
/// side (line parse + scan + response render).
double timed_warm(AnalysisService& service, const std::string& line) {
    const double t0 = wall_seconds();
    NdjsonRequest request = service::parse_ndjson_request(line);
    const ScanResponse response = service.scan(request.scan);
    const std::string rendered = service::render_scan_line(response, true);
    const double dt = wall_seconds() - t0;
    if (request.op != NdjsonRequest::Op::kScan || rendered.empty()) {
        std::cerr << "FATAL: warm path failed: " << request.error << "\n";
        std::exit(1);
    }
    return dt;
}

/// One watch edit round trip; returns wall seconds, reports the cone.
double timed_watch(WatchSession& watch, const std::string& line,
                   int& cone_files, int& cone_functions) {
    const double t0 = wall_seconds();
    NdjsonRequest request = service::parse_ndjson_request(line);
    const WatchDelta delta = watch.edit(request.edit);
    const std::string rendered = service::render_edit_line(delta, true);
    const double dt = wall_seconds() - t0;
    if (request.op != NdjsonRequest::Op::kEdit || !delta.ok ||
        rendered.empty()) {
        std::cerr << "FATAL: watch path failed: "
                  << (delta.ok ? request.error : delta.error) << "\n";
        std::exit(1);
    }
    cone_files = delta.cone_files;
    cone_functions = delta.cone_functions;
    return dt;
}

struct EditScenario {
    int edits = 0;
    double warm_seconds = 0;
    double watch_seconds = 0;
    int cone_files = 0;
    int cone_functions = 0;
    double speedup() const {
        return watch_seconds > 0 ? warm_seconds / watch_seconds : 0;
    }
};

struct ScaleResult {
    double scale = 0;
    int plugins = 0;
    size_t files = 0;
    int lines = 0;
    int graph_files = 0;
    int graph_functions = 0;
    int include_edges = 0;
    int use_edges = 0;
    EditScenario single;
    EditScenario batch16;
    bool ran_batch = false;
};

/// Best-of-`reps` measurement of one edit scenario: each rep revises the
/// target files (distinct content per rep, so nothing hits the result
/// pool), sends the whole tree through the warm service and the same edit
/// through the watch session. Separate services keep the paths honest —
/// neither feeds the other's caches.
EditScenario measure_edits(FileList& master,
                           std::map<std::string, size_t>& index,
                           const std::vector<std::string>& targets,
                           const std::string& tag, int reps,
                           AnalysisService& warm_service,
                           WatchSession& watch) {
    EditScenario scenario;
    scenario.edits = static_cast<int>(targets.size());
    for (int rep = 0; rep < reps; ++rep) {
        FileList upserts;
        upserts.reserve(targets.size());
        for (const std::string& target : targets) {
            std::string& text = master[index.at(target)].second;
            text += "\n// " + tag + " rev " + std::to_string(rep) + "\n";
            upserts.emplace_back(target, text);
        }
        const std::string warm_line = scan_line_json("monorepo", master);
        const double warm = timed_warm(warm_service, warm_line);
        const std::string edit_line = edit_line_json(upserts);
        int cone_files = 0, cone_functions = 0;
        const double watch_dt =
            timed_watch(watch, edit_line, cone_files, cone_functions);
        if (rep == 0 || warm < scenario.warm_seconds)
            scenario.warm_seconds = warm;
        if (rep == 0 || watch_dt < scenario.watch_seconds)
            scenario.watch_seconds = watch_dt;
        scenario.cone_files = cone_files;
        scenario.cone_functions = cone_functions;
    }
    return scenario;
}

ScaleResult run_scale(double scale, int reps) {
    corpus::MonorepoOptions options;
    options.scale = scale;
    const corpus::MonorepoSource source = corpus::generate_monorepo(options);

    ScaleResult result;
    result.scale = scale;
    result.files = source.files.size();
    result.lines = source.total_lines;

    FileList master = source.files;
    std::map<std::string, size_t> index;
    for (size_t i = 0; i < master.size(); ++i)
        index.emplace(master[i].first, i);
    for (const auto& [name, text] : master)
        if (name.size() > 9 &&
            name.compare(name.size() - 9, 9, "/main.php") == 0 &&
            name.rfind("plugin-", 0) == 0)
            ++result.plugins;

    ServiceOptions service_options;
    service_options.workers = 1;
    AnalysisService warm_service(service_options);
    AnalysisService watch_service(service_options);

    // Prime both: one full cold scan each, so every later round trip is
    // the steady-state warm comparison.
    warm_service.scan(full_request("monorepo", master));
    WatchSession watch(watch_service);
    watch.open(full_request("monorepo", master));

    const graph::ProjectGraph* g = watch.graph();
    if (g) {
        result.graph_files = g->file_count();
        result.graph_functions = g->function_count();
        result.include_edges = g->include_edge_count();
        result.use_edges = g->use_edge_count();
    }

    // Single edit: one leaf include part — its cone is {part, its main}.
    result.single = measure_edits(master, index, {"plugin-001/inc/part-5.php"},
                                  "single", reps, warm_service, watch);

    // 16-edit batch: one leaf part in each of 16 different plugins.
    if (result.plugins >= 17) {
        std::vector<std::string> targets;
        for (int p = 1; p <= 16; ++p) {
            char name[64];
            std::snprintf(name, sizeof name, "plugin-%03d/inc/part-%d.php", p,
                          3 + p % 10);
            targets.push_back(name);
        }
        result.batch16 =
            measure_edits(master, index, targets, "batch", reps, warm_service,
                          watch);
        result.ran_batch = true;
    }
    return result;
}

std::multiset<std::string> finding_multiset(const std::vector<Finding>& v) {
    std::multiset<std::string> out;
    for (const Finding& finding : v) out.insert(finding_json(finding));
    return out;
}

std::multiset<std::string> multiset_minus(const std::multiset<std::string>& a,
                                          const std::multiset<std::string>& b) {
    std::multiset<std::string> out;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.end()));
    return out;
}

/// The hard gate: open a watch session at `workers`/`backend`, plant a
/// vulnerability in one leaf file, and require the delta to equal the
/// multiset diff of two cold scans on fresh single-worker services (and
/// the underlying full report to match the cold re-scan byte-for-byte).
bool verify_byte_identity(int workers, const std::string& backend,
                          std::string& detail) {
    corpus::MonorepoOptions options;
    options.scale = 0.25;
    const corpus::MonorepoSource source = corpus::generate_monorepo(options);
    const std::string target = "plugin-001/inc/part-5.php";

    FileList edited = source.files;
    bool patched = false;
    for (auto& [name, text] : edited)
        if (name == target) {
            text += "\necho $_GET['bench_graph_probe'];\n";
            patched = true;
        }
    if (!patched) {
        detail = "edit target missing from the generated monorepo";
        return false;
    }

    const auto cold_scan = [&](const FileList& files) {
        ServiceOptions cold;
        cold.workers = 1;
        AnalysisService fresh(cold);
        return fresh.scan(full_request("monorepo-verify", files, backend))
            .result;
    };
    const AnalysisResult cold_before = cold_scan(source.files);
    const AnalysisResult cold_after = cold_scan(edited);

    ServiceOptions live;
    live.workers = workers;
    AnalysisService service(live);
    WatchSession watch(service);
    const ScanResponse open =
        watch.open(full_request("monorepo-verify", source.files, backend));
    if (render_json_report(open.result) != render_json_report(cold_before)) {
        detail = "watch open report differs from a cold scan";
        return false;
    }

    WatchEditBatch batch;
    for (const auto& [name, text] : edited)
        if (name == target) batch.upserts.emplace_back(name, text);
    const WatchDelta delta = watch.edit(batch);
    if (!delta.ok) {
        detail = "edit rejected: " + delta.error;
        return false;
    }
    if (render_json_report(delta.response.result) !=
        render_json_report(cold_after)) {
        detail = "post-edit report differs from a cold re-scan";
        return false;
    }
    const auto before = finding_multiset(cold_before.findings);
    const auto after = finding_multiset(cold_after.findings);
    if (finding_multiset(delta.added) != multiset_minus(after, before)) {
        detail = "added findings differ from the cold-scan diff";
        return false;
    }
    if (finding_multiset(delta.removed) != multiset_minus(before, after)) {
        detail = "removed findings differ from the cold-scan diff";
        return false;
    }
    if (delta.added.empty()) {
        detail = "planted vulnerability produced no delta findings";
        return false;
    }
    return true;
}

struct IdentityCheck {
    int workers = 0;
    std::string backend;
    bool ok = false;
};

std::vector<IdentityCheck> run_identity_checks() {
    std::vector<IdentityCheck> checks = {{1, "", false},
                                         {4, "", false},
                                         {4, "ir", false}};
    for (IdentityCheck& check : checks) {
        std::string detail;
        check.ok = verify_byte_identity(check.workers, check.backend, detail);
        std::cout << "byte-identity (workers " << check.workers << ", backend "
                  << (check.backend.empty() ? "default" : check.backend)
                  << "): " << (check.ok ? "ok" : "FAIL — " + detail) << "\n";
    }
    return checks;
}

int run_smoke(const std::string& baseline_path) {
    for (const IdentityCheck& check : run_identity_checks())
        if (!check.ok) {
            std::cerr << "SMOKE FAIL: watch delta not byte-identical to the "
                         "cold re-scan diff\n";
            return 1;
        }

    const ScaleResult small = run_scale(0.25, 3);
    const double ratio = small.single.warm_seconds > 0
                             ? small.single.watch_seconds /
                                   small.single.warm_seconds
                             : 1e9;

    std::ifstream in(baseline_path);
    if (!in) {
        std::cerr << "SMOKE FAIL: cannot read baseline " << baseline_path
                  << "\n";
        return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    JsonValue baseline;
    std::string error;
    if (!JsonReader::parse(text, baseline, &error)) {
        std::cerr << "SMOKE FAIL: bad baseline JSON: " << error << "\n";
        return 1;
    }
    const JsonValue* smoke = baseline.get("smoke");
    const JsonValue* base_ratio = smoke ? smoke->get("watch_over_warm") : nullptr;
    if (!base_ratio || !base_ratio->is_number() || base_ratio->number <= 0) {
        std::cerr << "SMOKE FAIL: baseline has no smoke.watch_over_warm\n";
        return 1;
    }
    const double limit = base_ratio->number * 1.2;
    std::cout << "graph smoke: warm " << small.single.warm_seconds * 1e3
              << "ms watch " << small.single.watch_seconds * 1e3
              << "ms ratio " << ratio << " (baseline " << base_ratio->number
              << ", limit " << limit << ")\n";
    if (ratio > limit) {
        std::cerr << "SMOKE FAIL: watch/warm ratio " << ratio
                  << " exceeds baseline " << base_ratio->number
                  << " by more than 20%\n";
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1 && std::string(argv[1]) == "--smoke") {
        const std::string baseline =
            argc > 2 ? argv[2]
                     : std::string(PHPSAFE_REPO_ROOT "/BENCH_graph.json");
        return run_smoke(baseline);
    }

    const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string(PHPSAFE_REPO_ROOT "/BENCH_graph.json");
    if (reps <= 0) {
        std::cerr << "usage: bench_graph [reps] [output.json] | "
                     "bench_graph --smoke [baseline.json]\n";
        return 2;
    }

    const std::vector<IdentityCheck> identity = run_identity_checks();
    bool identical = true;
    for (const IdentityCheck& check : identity) identical &= check.ok;

    const std::vector<double> sweep = {1, 2, 4, 8};
    std::vector<ScaleResult> results;
    for (double scale : sweep) {
        ScaleResult r = run_scale(scale, reps);
        std::cout << "scale " << scale << " (" << r.files << " files): single "
                  << "warm " << r.single.warm_seconds * 1e3 << "ms watch "
                  << r.single.watch_seconds * 1e3 << "ms (x"
                  << r.single.speedup() << ", cone " << r.single.cone_files
                  << " files)";
        if (r.ran_batch)
            std::cout << "; batch16 warm " << r.batch16.warm_seconds * 1e3
                      << "ms watch " << r.batch16.watch_seconds * 1e3
                      << "ms (x" << r.batch16.speedup() << ", cone "
                      << r.batch16.cone_files << " files)";
        std::cout << "\n";
        results.push_back(std::move(r));
    }

    // Smoke baseline: same small workload and statistic the CI gate replays.
    const ScaleResult smoke = run_scale(0.25, reps);
    const double smoke_ratio =
        smoke.single.warm_seconds > 0
            ? smoke.single.watch_seconds / smoke.single.warm_seconds
            : 0;

    std::ofstream out(out_path);
    JsonWriter w(out, 2);
    w.begin_object();
    w.kv("bench", "bench_graph");
    w.kv("scenario",
         "per-edit cost after the first scan of a generated monorepo: the "
         "whole-request warm path (full NDJSON scan line: parse + re-hash + "
         "probe every file + scan + full report render) vs the watch path "
         "(one edit line: cone-bounded re-analysis over pinned ASTs + delta "
         "render); identical services, identical findings, best-of-reps");
    w.kv("timing_reps", reps);
    w.kv("workers", 1);
    w.key("scales").begin_array();
    for (const ScaleResult& r : results) {
        w.begin_object();
        w.kv("scale", r.scale, 2);
        w.kv("plugins", r.plugins);
        w.kv("files", static_cast<uint64_t>(r.files));
        w.kv("lines", r.lines);
        w.kv("graph_functions", r.graph_functions);
        w.kv("include_edges", r.include_edges);
        w.kv("use_edges", r.use_edges);
        w.key("single_edit").begin_object();
        w.kv("warm_ms", r.single.warm_seconds * 1e3, 3);
        w.kv("watch_ms", r.single.watch_seconds * 1e3, 3);
        w.kv("speedup", r.single.speedup(), 2);
        w.kv("cone_files", r.single.cone_files);
        w.kv("cone_functions", r.single.cone_functions);
        w.end_object();
        if (r.ran_batch) {
            w.key("batch16_edits").begin_object();
            w.kv("warm_ms", r.batch16.warm_seconds * 1e3, 3);
            w.kv("watch_ms", r.batch16.watch_seconds * 1e3, 3);
            w.kv("speedup", r.batch16.speedup(), 2);
            w.kv("cone_files", r.batch16.cone_files);
            w.kv("cone_functions", r.batch16.cone_functions);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.key("byte_identity").begin_array();
    for (const IdentityCheck& check : identity) {
        w.begin_object();
        w.kv("workers", check.workers);
        w.kv("backend", check.backend.empty() ? "default" : check.backend);
        w.kv("delta_matches_cold_rescan_diff", check.ok);
        w.end_object();
    }
    w.end_array();
    w.key("smoke").begin_object();
    w.kv("monorepo_scale", 0.25);
    w.kv("warm_ms", smoke.single.warm_seconds * 1e3, 3);
    w.kv("watch_ms", smoke.single.watch_seconds * 1e3, 3);
    w.kv("watch_over_warm", smoke_ratio, 3);
    w.end_object();
    w.end_object();
    out << "\n";
    std::cout << "wrote " << out_path << "\n";

    if (!identical) {
        std::cerr << "FATAL: a watch delta differed from the cold re-scan "
                     "diff\n";
        return 1;
    }
    for (const ScaleResult& r : results)
        if (r.scale >= 4 && r.single.speedup() <= 1.0)
            std::cerr << "WARNING: watch did not beat the warm path at scale "
                      << r.scale << "\n";
    return 0;
}
