// Multi-client load benchmark for the analysis server: N synthetic clients
// hammer ONE shared AnalysisService with the three request kinds real
// front-ends send — cold scans of unseen plugins, warm re-scans of content
// the cache already holds, and single-file edits (the BENCH_incremental
// scenario) — while the service dispatches across its TaskTeam and the
// sharded AnalysisCache. Reported per client count: p50/p95/p99 request
// latency and throughput; the saturation row is the client count with the
// highest throughput.
//
// Two correctness/performance gates ride along:
//   - byte-identity: every concurrent response's report must equal the
//     report a serial single-client service produces for the same request
//     fingerprint (the repo's standing invariant — scheduling must never
//     change output);
//   - sharding: a microbenchmark drives the cache's result pool from 8
//     threads with the production shard count vs. a single-mutex (shards=1)
//     configuration. The sharded cache must not lose; on multi-core hosts
//     it should win outright, and the shard contention counters quantify
//     why (fewer blocked lock acquisitions).
//
// Results go to BENCH_serve.json at the repo root (committed, like the
// other BENCH_*.json files).
//
// Usage: bench_serve [scale] [output.json]
//        bench_serve --smoke [baseline.json]
//
// --smoke is the CI gate: it replays a small fixed workload and fails when
// the measured p95/p50 tail ratio regresses more than 20% against the
// committed baseline's smoke block. Gating the RATIO rather than absolute
// p95 keeps the check meaningful across machines of different speeds (the
// bench_alloc precedent): a scheduling or lock-contention regression
// amplifies the tail relative to the median on any host, while a uniformly
// slower CI box moves both together. Byte-identity is always a hard fail.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "obs/counters.h"
#include "report/export.h"
#include "service/cache.h"
#include "service/service.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/timing.h"

#ifndef PHPSAFE_REPO_ROOT
#define PHPSAFE_REPO_ROOT "."
#endif

using namespace phpsafe;
using service::AnalysisCache;
using service::AnalysisService;
using service::CacheBudgets;
using service::ScanRequest;
using service::ScanResponse;
using service::ServiceOptions;

namespace {

/// Per-client request schedule: a deterministic mix of cold scans, warm
/// re-scans and single-file edits over the shared corpus. Client c starts
/// at a different corpus offset so the cold phase fans out over distinct
/// plugins, then revisits (warm) and edits them. The same schedules replay
/// serially for the byte-identity reference.
std::vector<ScanRequest> client_schedule(const corpus::Corpus& corpus,
                                         int client, int requests) {
    std::vector<ScanRequest> schedule;
    schedule.reserve(static_cast<size_t>(requests));
    const size_t plugins = corpus.plugins.size();
    for (int i = 0; i < requests; ++i) {
        const corpus::GeneratedPlugin& plugin =
            corpus.plugins[(static_cast<size_t>(client) * 7 +
                            static_cast<size_t>(i)) %
                           plugins];
        ScanRequest request;
        request.plugin = plugin.name;
        for (const auto& [name, text] : plugin.v2014.files)
            request.files.push_back({name, text});
        // i % 3 == 0: base content (cold the first time, warm after);
        // i % 3 == 1: identical re-scan (result-pool hit / dedup);
        // i % 3 == 2: single-file edit — appends a comment revision, so
        // ASTs of untouched files and most summaries reuse.
        if (i % 3 == 2 && !request.files.empty())
            request.files[0].text +=
                "\n// edit revision " + std::to_string(i / 3) + "\n";
        schedule.push_back(std::move(request));
    }
    return schedule;
}

double percentile(std::vector<double> sorted, double q) {
    if (sorted.empty()) return 0;
    const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

struct LoadResult {
    int clients = 0;
    size_t requests = 0;
    double wall = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    double throughput = 0;
    obs::Counters counters;  ///< summed per-scan deltas (includes shard stats)
    bool identical = true;
};

/// Runs every client schedule concurrently against one shared service and
/// checks each response's report against the serial reference.
LoadResult run_load(const std::vector<std::vector<ScanRequest>>& schedules,
                    const std::map<uint64_t, std::string>& reference) {
    LoadResult result;
    result.clients = static_cast<int>(schedules.size());

    ServiceOptions options;
    options.workers = result.clients;
    options.max_queue_depth = 4096;  // effectively unbounded; keeps the
                                     // admission path compiled into the run
    AnalysisService service(options);

    std::mutex merge_mutex;
    std::vector<double> latencies;
    std::atomic<bool> identical{true};

    std::vector<std::thread> threads;
    threads.reserve(schedules.size());
    const double start = wall_seconds();
    for (const std::vector<ScanRequest>& schedule : schedules) {
        threads.emplace_back([&, &schedule = schedule] {
            std::vector<double> local;
            obs::Counters local_counters;
            local.reserve(schedule.size());
            for (const ScanRequest& request : schedule) {
                const double t0 = wall_seconds();
                ScanResponse response = service.scan(request);
                local.push_back(wall_seconds() - t0);
                local_counters += response.counters;
                const auto expect = reference.find(
                    AnalysisService::request_fingerprint(request));
                if (expect == reference.end() ||
                    expect->second != render_json_report(response.result))
                    identical.store(false, std::memory_order_relaxed);
            }
            std::lock_guard<std::mutex> lock(merge_mutex);
            latencies.insert(latencies.end(), local.begin(), local.end());
            result.counters += local_counters;
        });
    }
    for (std::thread& t : threads) t.join();
    result.wall = wall_seconds() - start;

    std::sort(latencies.begin(), latencies.end());
    result.requests = latencies.size();
    result.p50 = percentile(latencies, 0.50);
    result.p95 = percentile(latencies, 0.95);
    result.p99 = percentile(latencies, 0.99);
    result.throughput =
        result.wall > 0 ? static_cast<double>(result.requests) / result.wall : 0;
    result.identical = identical.load();
    return result;
}

/// Serial single-client reference: one worker, requests in client order.
/// The returned map is fingerprint → report, the ground truth every
/// concurrent response must match byte-for-byte.
std::map<uint64_t, std::string> serial_reference(
    const std::vector<std::vector<ScanRequest>>& schedules) {
    ServiceOptions options;
    options.workers = 1;
    AnalysisService service(options);
    std::map<uint64_t, std::string> reference;
    for (const std::vector<ScanRequest>& schedule : schedules)
        for (const ScanRequest& request : schedule)
            reference.emplace(AnalysisService::request_fingerprint(request),
                              render_json_report(service.scan(request).result));
    return reference;
}

struct ShardBenchResult {
    double single_ops_per_sec = 0;
    double sharded_ops_per_sec = 0;
    uint64_t single_contention = 0;
    uint64_t sharded_contention = 0;
};

/// Hammers the result pool from `threads` threads: mostly lookups over a
/// pre-populated key range, one insert per 64 ops. The only difference
/// between the two configurations is CacheBudgets::shards.
double hammer_cache(int shards, int threads, int ops_per_thread,
                    uint64_t& contention_out) {
    CacheBudgets budgets;
    budgets.shards = shards;
    AnalysisCache cache(budgets);
    AnalysisResult payload;
    payload.plugin = "shard-bench";
    constexpr uint64_t kKeys = 512;
    for (uint64_t key = 0; key < kKeys; ++key)
        cache.insert_result("bench", key, payload);

    std::atomic<uint64_t> contention{0};
    std::vector<std::thread> team;
    team.reserve(static_cast<size_t>(threads));
    const double start = wall_seconds();
    for (int t = 0; t < threads; ++t) {
        team.emplace_back([&, t] {
            const obs::CounterDelta delta;
            uint64_t state = static_cast<uint64_t>(t) * 0x9E3779B97F4A7C15ull + 1;
            for (int i = 0; i < ops_per_thread; ++i) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                const uint64_t key = (state >> 33) % kKeys;
                if (i % 64 == 63)
                    cache.insert_result("bench", kKeys + key, payload);
                else
                    (void)cache.find_result("bench", key);
            }
            contention.fetch_add(delta.take().cache_shard_contention,
                                 std::memory_order_relaxed);
        });
    }
    for (std::thread& t : team) t.join();
    const double wall = wall_seconds() - start;
    contention_out = contention.load();
    const double total_ops =
        static_cast<double>(threads) * static_cast<double>(ops_per_thread);
    return wall > 0 ? total_ops / wall : 0;
}

ShardBenchResult shard_microbench(int threads, int reps) {
    ShardBenchResult best;
    for (int rep = 0; rep < reps; ++rep) {
        uint64_t contention = 0;
        const double single = hammer_cache(1, threads, 200000, contention);
        if (single > best.single_ops_per_sec) {
            best.single_ops_per_sec = single;
            best.single_contention = contention;
        }
        const double sharded =
            hammer_cache(CacheBudgets{}.shards, threads, 200000, contention);
        if (sharded > best.sharded_ops_per_sec) {
            best.sharded_ops_per_sec = sharded;
            best.sharded_contention = contention;
        }
    }
    return best;
}

std::vector<std::vector<ScanRequest>> build_schedules(
    const corpus::Corpus& corpus, int clients, int requests_per_client) {
    std::vector<std::vector<ScanRequest>> schedules;
    schedules.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c)
        schedules.push_back(client_schedule(corpus, c, requests_per_client));
    return schedules;
}

/// Runs the smoke workload `reps` times and keeps the run with the lowest
/// p95/p50 tail ratio. Best-of-N because the ratio is a scheduling-noise
/// statistic on a loaded box: one bad rep must not fail CI, a consistent
/// regression still shows in every rep. Byte-identity is checked on all
/// reps regardless.
LoadResult best_smoke_run(int reps, bool& identical) {
    corpus::CorpusOptions corpus_options;
    corpus_options.scale = 0.5;
    const corpus::Corpus corpus = corpus::generate_corpus(corpus_options);
    const auto schedules = build_schedules(corpus, 4, 9);
    const auto reference = serial_reference(schedules);
    LoadResult best;
    double best_ratio = 0;
    identical = true;
    for (int rep = 0; rep < reps; ++rep) {
        LoadResult load = run_load(schedules, reference);
        identical = identical && load.identical;
        const double ratio = load.p50 > 0 ? load.p95 / load.p50 : 0;
        if (rep == 0 || (ratio > 0 && ratio < best_ratio)) {
            best_ratio = ratio;
            best = std::move(load);
        }
    }
    return best;
}

int run_smoke(const std::string& baseline_path) {
    bool identical = true;
    const LoadResult load = best_smoke_run(3, identical);
    if (!identical) {
        std::cerr << "SMOKE FAIL: concurrent responses differ from the "
                     "serial reference\n";
        return 1;
    }
    const double ratio = load.p50 > 0 ? load.p95 / load.p50 : 0;

    std::ifstream in(baseline_path);
    if (!in) {
        std::cerr << "SMOKE FAIL: cannot read baseline " << baseline_path
                  << "\n";
        return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    JsonValue baseline;
    std::string error;
    if (!JsonReader::parse(text, baseline, &error)) {
        std::cerr << "SMOKE FAIL: bad baseline JSON: " << error << "\n";
        return 1;
    }
    const JsonValue* smoke = baseline.get("smoke");
    const JsonValue* base_ratio =
        smoke ? smoke->get("p95_over_p50") : nullptr;
    if (!base_ratio || !base_ratio->is_number() || base_ratio->number <= 0) {
        std::cerr << "SMOKE FAIL: baseline has no smoke.p95_over_p50\n";
        return 1;
    }
    const double limit = base_ratio->number * 1.2;
    std::cout << "serve smoke: p50 " << load.p50 * 1e3 << "ms p95 "
              << load.p95 * 1e3 << "ms tail ratio " << ratio << " (baseline "
              << base_ratio->number << ", limit " << limit << ")\n";
    if (ratio > limit) {
        std::cerr << "SMOKE FAIL: p95/p50 tail ratio " << ratio
                  << " exceeds baseline " << base_ratio->number
                  << " by more than 20%\n";
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1 && std::string(argv[1]) == "--smoke") {
        const std::string baseline =
            argc > 2 ? argv[2]
                     : std::string(PHPSAFE_REPO_ROOT "/BENCH_serve.json");
        return run_smoke(baseline);
    }

    const double scale = argc > 1 ? std::atof(argv[1]) : 4.0;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string(PHPSAFE_REPO_ROOT "/BENCH_serve.json");
    if (scale <= 0) {
        std::cerr << "usage: bench_serve [scale] [output.json] | "
                     "bench_serve --smoke [baseline.json]\n";
        return 2;
    }

    corpus::CorpusOptions corpus_options;
    corpus_options.scale = scale;
    const corpus::Corpus corpus = corpus::generate_corpus(corpus_options);
    const int requests_per_client = 12;

    // One schedule set per client count; the serial reference covers the
    // union (fingerprint-keyed, so shared requests dedupe naturally).
    const std::vector<int> sweep = {1, 2, 4, 8};
    std::vector<std::vector<std::vector<ScanRequest>>> all_schedules;
    for (int clients : sweep)
        all_schedules.push_back(
            build_schedules(corpus, clients, requests_per_client));
    std::map<uint64_t, std::string> reference;
    {
        ServiceOptions options;
        options.workers = 1;
        AnalysisService service(options);
        for (const auto& schedules : all_schedules)
            for (const auto& schedule : schedules)
                for (const ScanRequest& request : schedule)
                    reference.emplace(
                        AnalysisService::request_fingerprint(request),
                        render_json_report(service.scan(request).result));
    }

    std::vector<LoadResult> results;
    bool identical = true;
    for (size_t i = 0; i < sweep.size(); ++i) {
        LoadResult load = run_load(all_schedules[i], reference);
        identical = identical && load.identical;
        std::cout << "clients " << load.clients << ": " << load.requests
                  << " requests in " << load.wall << "s ("
                  << load.throughput << " req/s, p50 " << load.p50 * 1e3
                  << "ms, p95 " << load.p95 * 1e3 << "ms, p99 "
                  << load.p99 * 1e3 << "ms)\n";
        results.push_back(std::move(load));
    }
    const LoadResult& saturation = *std::max_element(
        results.begin(), results.end(),
        [](const LoadResult& a, const LoadResult& b) {
            return a.throughput < b.throughput;
        });

    const ShardBenchResult shard = shard_microbench(8, 3);
    const double shard_speedup =
        shard.single_ops_per_sec > 0
            ? shard.sharded_ops_per_sec / shard.single_ops_per_sec
            : 0;
    std::cout << "shard microbench (8 threads): single-mutex "
              << shard.single_ops_per_sec / 1e6 << "M ops/s ("
              << shard.single_contention << " contended), sharded "
              << shard.sharded_ops_per_sec / 1e6 << "M ops/s ("
              << shard.sharded_contention << " contended), x" << shard_speedup
              << "\n";

    // Smoke baseline measured at commit time with the same tiny workload
    // and the same best-of-N statistic the CI gate replays.
    bool smoke_identical = true;
    const LoadResult smoke = best_smoke_run(3, smoke_identical);
    identical = identical && smoke_identical;

    std::ofstream out(out_path);
    JsonWriter w(out, 2);
    w.begin_object();
    w.kv("bench", "bench_serve");
    w.kv("scenario",
         "N concurrent clients share one AnalysisService: per client, a "
         "deterministic mix of cold scans, identical warm re-scans and "
         "single-file edits over the generated corpus; latency measured per "
         "request, responses checked byte-identical to a serial "
         "single-client reference");
    w.kv("corpus_scale", scale);
    w.kv("hardware_concurrency",
         static_cast<uint64_t>(std::thread::hardware_concurrency()));
    w.kv("plugins", static_cast<int>(corpus.plugins.size()));
    w.kv("files", corpus.total_files("2014"));
    w.kv("lines", corpus.total_lines("2014"));
    w.kv("requests_per_client", requests_per_client);
    w.key("clients_sweep").begin_array();
    for (const LoadResult& load : results) {
        w.begin_object();
        w.kv("clients", load.clients);
        w.kv("requests", static_cast<uint64_t>(load.requests));
        w.kv("wall_seconds", load.wall);
        w.kv("throughput_rps", load.throughput, 2);
        w.kv("p50_ms", load.p50 * 1e3, 3);
        w.kv("p95_ms", load.p95 * 1e3, 3);
        w.kv("p99_ms", load.p99 * 1e3, 3);
        w.kv("cache_shard_probes", load.counters.cache_shard_probes);
        w.kv("cache_shard_contention", load.counters.cache_shard_contention);
        w.end_object();
    }
    w.end_array();
    w.key("saturation").begin_object();
    w.kv("clients", saturation.clients);
    w.kv("throughput_rps", saturation.throughput, 2);
    w.end_object();
    w.key("shard_microbench").begin_object();
    w.kv("threads", 8);
    w.kv("shards", CacheBudgets{}.shards);
    w.kv("single_mutex_mops_per_sec", shard.single_ops_per_sec / 1e6, 3);
    w.kv("sharded_mops_per_sec", shard.sharded_ops_per_sec / 1e6, 3);
    w.kv("speedup", shard_speedup, 2);
    w.kv("single_mutex_contended_locks", shard.single_contention);
    w.kv("sharded_contended_locks", shard.sharded_contention);
    if (std::thread::hardware_concurrency() < 2)
        w.kv("note",
             "measured on a single-core host where lock contention cannot "
             "cost parallel throughput; the sharded win needs real cores");
    w.end_object();
    w.key("smoke").begin_object();
    w.kv("corpus_scale", 0.5);
    w.kv("clients", 4);
    w.kv("p50_ms", smoke.p50 * 1e3, 3);
    w.kv("p95_ms", smoke.p95 * 1e3, 3);
    w.kv("p95_over_p50", smoke.p50 > 0 ? smoke.p95 / smoke.p50 : 0, 3);
    w.end_object();
    w.kv("responses_byte_identical_to_serial", identical);
    w.end_object();
    out << "\n";
    std::cout << "wrote " << out_path << "\n";

    if (!identical) {
        std::cerr << "FATAL: a concurrent response differed from the serial "
                     "reference\n";
        return 1;
    }
    if (shard_speedup < 1.0) {
        if (std::thread::hardware_concurrency() < 2)
            std::cerr << "note: sharded == single-mutex throughput is "
                         "expected on a single-core host (blocked waiters "
                         "never idle the only core); re-run on a multi-core "
                         "machine to see the sharded win\n";
        else
            std::cerr << "WARNING: sharded cache did not beat the "
                         "single-mutex baseline\n";
    }
    return 0;
}
