// Ablation bench (ours, not a paper table): switches individual phpSAFE
// capabilities off to quantify how much each contributes to the Table I
// result — OOP member resolution, the WordPress profile, uncalled-function
// analysis, closure analysis, and loop-iteration count. This isolates the
// paper's core claims: OOP support and CMS awareness are what separate
// phpSAFE from the free-tool baselines.
#include <iostream>

#include "harness.h"
#include "report/matching.h"
#include "report/render.h"

using namespace phpsafe;
using namespace phpsafe::bench;

namespace {

struct Variant {
    std::string name;
    Tool tool;
};

}  // namespace

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::stod(argv[1]) : 0.5;
    std::cout << "phpSAFE capability ablation (corpus scale " << scale << ")\n";

    corpus::CorpusOptions options;
    options.scale = scale;
    options.filler_lines_2012 = static_cast<int>(20000 * scale);
    options.filler_lines_2014 = static_cast<int>(40000 * scale);
    const corpus::Corpus corpus = corpus::generate_corpus(options);

    std::vector<Variant> variants;
    variants.push_back({"full phpSAFE", make_phpsafe_tool()});
    {
        Variant v{"no OOP support", make_phpsafe_tool()};
        v.tool.options.oop_support = false;
        variants.push_back(std::move(v));
    }
    {
        Variant v{"no WordPress profile", make_phpsafe_tool()};
        v.tool.kb = make_generic_php_kb();
        variants.push_back(std::move(v));
    }
    {
        Variant v{"no uncalled-function analysis", make_phpsafe_tool()};
        v.tool.options.analyze_uncalled_functions = false;
        variants.push_back(std::move(v));
    }
    {
        Variant v{"no closure analysis", make_phpsafe_tool()};
        v.tool.options.analyze_closures = false;
        variants.push_back(std::move(v));
    }
    {
        Variant v{"2 loop iterations", make_phpsafe_tool()};
        v.tool.options.loop_iterations = 2;
        variants.push_back(std::move(v));
    }
    {
        Variant v{"unbounded include depth", make_phpsafe_tool()};
        v.tool.options.max_include_depth = 64;
        variants.push_back(std::move(v));
    }

    TextTable table;
    table.add_row({"Variant", "TP 2014", "FP 2014", "OOP TPs", "Failed files"});
    for (const Variant& variant : variants) {
        int tp = 0, fp = 0, oop = 0, failed = 0;
        for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
            DiagnosticSink sink;
            const php::Project project =
                corpus::build_project(plugin, plugin.v2014, sink);
            const AnalysisResult result = run_tool(variant.tool, project);
            const MatchResult match =
                match_findings(result.findings, plugin.v2014.truth);
            tp += match.tp();
            fp += match.fp();
            for (const Finding* f : match.true_positives)
                if (f->via_oop) ++oop;
            failed += result.files_failed;
        }
        table.add_row({variant.name, std::to_string(tp), std::to_string(fp),
                       std::to_string(oop), std::to_string(failed)});
    }
    std::cout << table.to_string();
    return 0;
}
