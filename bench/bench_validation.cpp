// Static + dynamic composition bench (ours; the paper's §II discussion and
// its §III.E/§IV.B.5 methodology): every phpSAFE report on the corpus is
// replayed by the dynamic validator with an attack payload. Reports that
// match seeded ground truth should be confirmed (the exploit fires);
// false alarms should be rejected (a runtime guard stops the payload).
// This quantifies how much precision dynamic confirmation buys on top of
// static analysis — automating the paper's manual verification step.
#include <iomanip>
#include <iostream>

#include "harness.h"
#include "dynamic/validator.h"
#include "report/matching.h"
#include "report/render.h"

using namespace phpsafe;
using namespace phpsafe::bench;

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::stod(argv[1]) : 0.5;
    std::cout << "Dynamic validation of static findings (corpus scale " << scale
              << ")\n";

    corpus::CorpusOptions options;
    options.scale = scale;
    options.filler_lines_2012 = static_cast<int>(20000 * scale);
    options.filler_lines_2014 = static_cast<int>(40000 * scale);
    const corpus::Corpus corpus = corpus::generate_corpus(options);
    const Tool tool = make_phpsafe_tool();

    int tp_total = 0, tp_confirmed = 0;
    int fp_total = 0, fp_confirmed = 0;

    for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
        DiagnosticSink sink;
        const php::Project project =
            corpus::build_project(plugin, plugin.v2014, sink);
        const AnalysisResult result = run_tool(tool, project);
        const MatchResult match = match_findings(result.findings, plugin.v2014.truth);

        dynamic::Validator validator(project);
        for (const Finding* finding : match.true_positives) {
            ++tp_total;
            if (validator.validate(*finding).confirmed) ++tp_confirmed;
        }
        for (const Finding* finding : match.false_positives) {
            ++fp_total;
            if (validator.validate(*finding).confirmed) ++fp_confirmed;
        }
    }

    TextTable table;
    table.add_row({"Report class", "Count", "Dynamically confirmed", "Rate"});
    auto pct = [](int part, int whole) {
        if (whole == 0) return std::string("-");
        return std::to_string(100 * part / whole) + "%";
    };
    table.add_row({"True positives (seeded vulns)", std::to_string(tp_total),
                   std::to_string(tp_confirmed), pct(tp_confirmed, tp_total)});
    table.add_row({"False positives (guarded code)", std::to_string(fp_total),
                   std::to_string(fp_confirmed), pct(fp_confirmed, fp_total)});
    std::cout << table.to_string();

    const int kept = tp_confirmed + fp_confirmed;
    std::cout << "\nPrecision before validation: "
              << pct(tp_total, tp_total + fp_total)
              << "; after keeping only confirmed reports: "
              << pct(tp_confirmed, kept == 0 ? 1 : kept) << "\n";
    std::cout << "(Unconfirmed true positives are flows whose trigger needs "
                 "CMS context the replayer does not model, e.g. handlers "
                 "never invoked from plugin code.)\n";
    return 0;
}
