// Reproduces Table III (+ §V.E): CPU time to analyze all 35 plugins per
// tool per version (average of 5 runs, as in the paper) and the robustness
// observations (files each tool failed to analyze, error messages raised).
// Absolute times differ from the paper's 2015 hardware; the claims that
// survive are relative: phpSAFE and RIPS are in the same time class and
// scale roughly linearly with LOC.
#include <iomanip>
#include <iostream>

#include "harness.h"
#include "report/render.h"

using namespace phpsafe;
using namespace phpsafe::bench;

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::stod(argv[1]) : 1.0;
    const int kRuns = 5;  // paper: "time values are an average of five runs"
    std::cout << "Table III reproduction — detection time of all plugins "
                 "(seconds, avg of " << kRuns << " runs)\n";
    EvalRun run = run_evaluation(scale, kRuns);

    TextTable table;
    table.add_row({"Tool", "Ver. 2012 (s)", "Ver. 2014 (s)",
                   "s/KLOC 2012", "s/KLOC 2014"});
    const double kloc_2012 = run.corpus.total_lines("2012") / 1000.0;
    const double kloc_2014 = run.corpus.total_lines("2014") / 1000.0;
    for (const Tool& tool : run.tools) {
        std::ostringstream t12, t14, k12, k14;
        const double s12 = run.stats["2012"][tool.name].cpu_seconds();
        const double s14 = run.stats["2014"][tool.name].cpu_seconds();
        t12 << std::fixed << std::setprecision(2) << s12;
        t14 << std::fixed << std::setprecision(2) << s14;
        k12 << std::fixed << std::setprecision(4) << s12 / kloc_2012;
        k14 << std::fixed << std::setprecision(4) << s14 / kloc_2014;
        table.add_row({tool.name, t12.str(), t14.str(), k12.str(), k14.str()});
    }
    std::cout << table.to_string();

    std::cout << "\nCorpus size: 2012 " << run.corpus.total_files("2012")
              << " files / " << run.corpus.total_lines("2012") << " LOC; 2014 "
              << run.corpus.total_files("2014") << " files / "
              << run.corpus.total_lines("2014")
              << " LOC (paper: 266 files / 89,560 LOC; 356 files / 180,801 LOC)\n";

    std::cout << "\n--- Robustness (paper §V.E) ---\n";
    TextTable robust;
    robust.add_row({"Tool", "Failed files 2012", "Failed files 2014",
                    "Errors 2012", "Errors 2014"});
    for (const Tool& tool : run.tools) {
        robust.add_row({tool.name,
                        std::to_string(run.stats["2012"][tool.name].files_failed),
                        std::to_string(run.stats["2014"][tool.name].files_failed),
                        std::to_string(run.stats["2012"][tool.name].error_messages),
                        std::to_string(run.stats["2014"][tool.name].error_messages)});
    }
    std::cout << robust.to_string();
    std::cout << "\nPaper reference: phpSAFE failed 1 file (2012) / 3 files "
                 "(2014); RIPS completed all files; Pixy failed 32 files and "
                 "raised 1 (2012) / 37 (2014) error messages.\n"
                 "Paper times: phpSAFE 17.87/180.91 s, RIPS 69.42/178.46 s, "
                 "Pixy 49.57/106.54 s (2.8 GHz Core i5, 2015).\n";
    return 0;
}
