// Reproduces Table II: malicious input-vector classification of the
// confirmed vulnerabilities (paper §V.C) — POST, GET, POST/GET/COOKIE,
// DB, File/Function/Array — for 2012, 2014, and the vulnerabilities present
// in both versions, plus the root-cause shares the paper highlights
// (≈36% directly attacker-manipulated, ≈62% database-mediated).
#include <iomanip>
#include <iostream>

#include "harness.h"
#include "report/render.h"
#include "report/rootcause.h"

using namespace phpsafe;
using namespace phpsafe::bench;

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::stod(argv[1]) : 1.0;
    std::cout << "Table II reproduction — malicious input vector types\n";
    EvalRun run = run_evaluation(scale);

    // Confirmed = detected by at least one tool (the paper's union set).
    std::set<std::string> detected_2012, detected_2014;
    for (const auto& [tool, s] : run.stats["2012"])
        detected_2012.insert(s.detected_ids.begin(), s.detected_ids.end());
    for (const auto& [tool, s] : run.stats["2014"])
        detected_2014.insert(s.detected_ids.begin(), s.detected_ids.end());

    const VectorTable vectors = classify_vectors(
        run.truth["2012"], run.truth["2014"], detected_2012, detected_2014);

    const VectorGroup groups[] = {
        VectorGroup::kPost, VectorGroup::kGet, VectorGroup::kPostGetCookie,
        VectorGroup::kDatabase, VectorGroup::kFileFunctionArray};

    TextTable table;
    table.add_row({"Input Vectors", "Version 2012", "Version 2014", "Both versions"});
    auto at = [](const std::map<VectorGroup, int>& m, VectorGroup g) {
        const auto it = m.find(g);
        return it == m.end() ? 0 : it->second;
    };
    int total_2014 = 0, direct_2014 = 0, db_2014 = 0;
    for (VectorGroup g : groups) {
        table.add_row({to_string(g), std::to_string(at(vectors.v2012, g)),
                       std::to_string(at(vectors.v2014, g)),
                       std::to_string(at(vectors.both, g))});
        total_2014 += at(vectors.v2014, g);
        if (g == VectorGroup::kPost || g == VectorGroup::kGet ||
            g == VectorGroup::kPostGetCookie)
            direct_2014 += at(vectors.v2014, g);
        if (g == VectorGroup::kDatabase) db_2014 += at(vectors.v2014, g);
    }
    std::cout << table.to_string();

    std::cout << std::fixed << std::setprecision(0);
    std::cout << "\nRoot-cause shares (2014): directly attacker-manipulated "
              << (100.0 * direct_2014 / total_2014) << "% (paper: 36%), "
              << "database-mediated " << (100.0 * db_2014 / total_2014)
              << "% (paper: 62%)\n";
    std::cout << "\nPaper Table II reference:\n"
                 "  POST 22/43/11, GET 96/111/36, P/G/C 24/57/19, "
                 "DB 211/363/162, File/Fn/Array 41/11/4\n";
    return 0;
}
