// Scalability bench for the parse-once evaluation pipeline (paper §V.E:
// analysis cost grows roughly linearly with LOC). Three arms per corpus
// scale:
//
//   legacy    — the seed pipeline's structure: every (version, tool) pair
//               re-parses every plugin before analyzing it (6 model
//               constructions per plugin for the 3-tool × 2-version matrix).
//   serial    — the parse-once pipeline, parallelism = 1.
//   parallel  — the parse-once pipeline, auto parallelism (PHPSAFE_JOBS or
//               hardware_concurrency).
//
// All arms compute identical statistics (asserted); what changes is wall
// clock. Results are appended per scale and written as BENCH_scale.json at
// the repo root so later PRs have a perf trajectory to compare against.
//
// Usage: bench_scale [max_scale] [timing_reps] [output.json]
//   max_scale: largest corpus multiplier to run (default 4 → 1x, 2x, 4x)
//   timing_reps: wall-clock repetitions per arm; best (minimum) is kept.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "report/evaluation.h"
#include "report/matching.h"
#include "util/json_writer.h"
#include "util/timing.h"
#include "util/worker_pool.h"

#ifndef PHPSAFE_REPO_ROOT
#define PHPSAFE_REPO_ROOT "."
#endif

using namespace phpsafe;

namespace {

struct StageTotals {
    StageBreakdown stages;  ///< per-stage CPU, summed over versions/tools
    obs::Counters counters;
    int tp = 0, fp = 0;
};

StageTotals totals_of(const Evaluation& evaluation) {
    StageTotals totals;
    for (const auto& [version, tools] : evaluation.stats) {
        for (const auto& [tool, stats] : tools) {
            totals.stages += stats.stages;
            totals.counters += stats.counters;
            totals.tp += stats.tp;
            totals.fp += stats.fp;
        }
    }
    return totals;
}

/// The seed pipeline, reproduced structurally: parse inside the per-tool
/// loop, so each tool rebuilds every project. Serial, like the seed default.
Evaluation run_legacy_pipeline(const std::vector<Tool>& tools, double scale) {
    Evaluation evaluation;
    corpus::CorpusOptions corpus_options;
    corpus_options.scale = scale;
    evaluation.corpus = corpus::generate_corpus(corpus_options);
    for (const Tool& tool : tools) evaluation.tool_names.push_back(tool.name);

    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        evaluation.truth[version] = evaluation.corpus.all_truth(version);
        for (const Tool& tool : tools) {
            EvaluationStats& stats = evaluation.stats[version][tool.name];
            for (const corpus::GeneratedPlugin& plugin :
                 evaluation.corpus.plugins) {
                const corpus::PluginVersionSource& src =
                    version == "2012" ? plugin.v2012 : plugin.v2014;
                const double parse_start = thread_cpu_seconds();
                DiagnosticSink sink;
                const php::Project project =
                    corpus::build_project(plugin, src, sink);
                const double parse_seconds = thread_cpu_seconds() - parse_start;
                const AnalysisResult result = run_tool(tool, project);
                // The legacy arm predates the stage split: model time all
                // lands in parse, analysis time all in analyze.
                stats.stages.parse += parse_seconds;
                stats.stages.analyze += result.cpu_seconds;
                // Stats beyond timing and tp/fp are not needed by this
                // bench; tp/fp suffice for the equivalence check.
                const MatchResult match =
                    match_findings(result.findings, src.truth);
                stats.tp += match.tp();
                stats.fp += match.fp();
            }
        }
    }
    return evaluation;
}

struct ScaleResult {
    double scale = 1;
    int lines_2012 = 0, lines_2014 = 0;
    double legacy_wall = 0;
    double serial_wall = 0;
    double parallel_wall = 0;
    int parallel_workers = 1;
    StageTotals legacy_stages;
    StageTotals serial_stages;
};

template <typename Fn>
double best_wall_of(int reps, Fn&& fn) {
    double best = 0;
    for (int i = 0; i < reps; ++i) {
        const double start = wall_seconds();
        fn();
        const double elapsed = wall_seconds() - start;
        if (i == 0 || elapsed < best) best = elapsed;
    }
    return best;
}

void write_json(const std::string& path, const std::vector<ScaleResult>& rows) {
    std::ofstream out(path);
    JsonWriter w(out, 2);
    w.begin_object();
    w.kv("bench", "bench_scale");
    w.kv("pipeline",
         "parse-once (project built once per plugin-version, shared across "
         "tools)");
    w.kv("tools", 3);
    w.kv("hardware_concurrency", WorkerPool::resolve_parallelism(0));
    w.key("scales").begin_array();
    for (const ScaleResult& r : rows) {
        w.begin_object();
        w.kv("corpus_scale", r.scale);
        w.kv("lines_2012", r.lines_2012);
        w.kv("lines_2014", r.lines_2014);
        w.kv("legacy_serial_wall_seconds", r.legacy_wall);
        w.kv("parse_once_serial_wall_seconds", r.serial_wall);
        w.kv("parse_once_parallel_wall_seconds", r.parallel_wall);
        w.kv("parallel_workers", r.parallel_workers);
        w.kv("speedup_serial_vs_legacy", r.legacy_wall / r.serial_wall);
        w.kv("speedup_end_to_end", r.legacy_wall / r.parallel_wall);
        // Per-stage CPU breakdown, sourced from the obs subsystem
        // (StageBreakdown in EvaluationStats); the legacy arm predates the
        // lex/include split so it only reports the two coarse stages.
        w.key("stages").begin_object();
        w.key("legacy").begin_object();
        w.kv("parse_cpu_seconds", r.legacy_stages.stages.model());
        w.kv("analyze_cpu_seconds", r.legacy_stages.stages.analysis());
        w.end_object();
        w.key("parse_once").begin_object();
        w.kv("lex_cpu_seconds", r.serial_stages.stages.lex);
        w.kv("parse_cpu_seconds", r.serial_stages.stages.parse);
        w.kv("include_cpu_seconds", r.serial_stages.stages.include);
        w.kv("analyze_cpu_seconds", r.serial_stages.stages.analyze);
        w.end_object();
        w.end_object();
        // Work counters from obs::Counters, summed over versions and tools
        // of the serial arm (model counters are credited to every tool,
        // mirroring the Table III parse-time convention). Deterministic for
        // a fixed corpus scale, unlike the timings.
        w.key("counters").begin_object();
        r.serial_stages.counters.for_each_field(
            [&](const char* name, uint64_t value) { w.kv(name, value); });
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    double max_scale = 4.0;
    if (argc > 1) {
        char* end = nullptr;
        max_scale = std::strtod(argv[1], &end);
        if (end == argv[1] || *end != '\0' || max_scale <= 0) {
            std::cerr << "usage: bench_scale [max_scale] [timing_reps] "
                         "[output.json]\n  max_scale must be a positive "
                         "number, got '" << argv[1] << "'\n";
            return 2;
        }
    }
    const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 2;
    const std::string out_path =
        argc > 3 ? argv[3] : std::string(PHPSAFE_REPO_ROOT "/BENCH_scale.json");

    const std::vector<Tool> tools = paper_tool_set();
    std::vector<ScaleResult> rows;

    for (double scale = 1.0; scale <= max_scale + 1e-9; scale *= 2.0) {
        ScaleResult row;
        row.scale = scale;

        Evaluation legacy;
        row.legacy_wall = best_wall_of(
            reps, [&] { legacy = run_legacy_pipeline(tools, scale); });
        row.legacy_stages = totals_of(legacy);
        row.lines_2012 = legacy.corpus.total_lines("2012");
        row.lines_2014 = legacy.corpus.total_lines("2014");

        EvaluationOptions serial_options;
        serial_options.corpus_scale = scale;
        serial_options.parallelism = 1;
        Evaluation serial;
        row.serial_wall = best_wall_of(reps, [&] {
            serial = run_corpus_evaluation(tools, serial_options);
        });
        row.serial_stages = totals_of(serial);
        // Per Table III convention every tool's stats carry the shared model
        // cost; undo that attribution so the JSON reports CPU actually spent
        // building models (once per plugin-version, not once per tool).
        row.serial_stages.stages.lex /= static_cast<double>(tools.size());
        row.serial_stages.stages.parse /= static_cast<double>(tools.size());

        EvaluationOptions parallel_options = serial_options;
        parallel_options.parallelism = 0;  // auto
        row.parallel_workers = WorkerPool::resolve_parallelism(0);
        Evaluation parallel;
        row.parallel_wall = best_wall_of(reps, [&] {
            parallel = run_corpus_evaluation(tools, parallel_options);
        });

        // All three arms must agree on the statistics; a fast wrong
        // pipeline is not a speedup.
        const StageTotals serial_totals = totals_of(serial);
        const StageTotals parallel_totals = totals_of(parallel);
        if (row.legacy_stages.tp != serial_totals.tp ||
            row.legacy_stages.fp != serial_totals.fp ||
            serial_totals.tp != parallel_totals.tp ||
            serial_totals.fp != parallel_totals.fp) {
            std::cerr << "FATAL: pipelines disagree on statistics at scale "
                      << scale << "\n";
            return 1;
        }

        std::cout << "scale " << scale << "x: legacy " << row.legacy_wall
                  << "s, parse-once serial " << row.serial_wall
                  << "s (x" << row.legacy_wall / row.serial_wall
                  << "), parallel " << row.parallel_wall << "s (x"
                  << row.legacy_wall / row.parallel_wall << " end-to-end, "
                  << row.parallel_workers << " workers)\n";
        rows.push_back(row);
    }

    write_json(out_path, rows);
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
