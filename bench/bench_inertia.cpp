// Reproduces §V.D ("Inertia in fixing vulnerabilities"): how many of the
// vulnerabilities confirmed in the 2014 versions were already found — and
// disclosed to developers — in the 2012 versions (paper: 249, i.e. 42%),
// and how many of those are trivially exploitable via GET/POST/COOKIE
// (paper: 59, i.e. 24% of the carried ones).
#include <iomanip>
#include <iostream>

#include "harness.h"
#include "report/inertia.h"

using namespace phpsafe;
using namespace phpsafe::bench;

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::stod(argv[1]) : 1.0;
    std::cout << "Inertia reproduction (paper §V.D)\n";
    EvalRun run = run_evaluation(scale);

    std::set<std::string> detected_2014;
    for (const auto& [tool, s] : run.stats["2014"])
        detected_2014.insert(s.detected_ids.begin(), s.detected_ids.end());

    const InertiaReport report = analyze_inertia(run.truth["2014"], detected_2014);

    std::cout << std::fixed << std::setprecision(0);
    std::cout << "Confirmed vulnerabilities in 2014 versions: "
              << report.total_2014 << "\n";
    std::cout << "Already disclosed in the 2012 round:         "
              << report.carried_from_2012 << " ("
              << report.carried_fraction() * 100 << "%)  [paper: 249, 42%]\n";
    std::cout << "Of those, trivially exploitable (GET/POST/COOKIE): "
              << report.carried_easy_exploit << " ("
              << report.easy_fraction_of_carried() * 100
              << "% of carried)  [paper: 59, 24%]\n";
    return 0;
}
