// Incremental-analysis bench for the AnalysisService (the editor/CI loop
// the service exists for): scan the whole corpus cold, touch ONE file of
// ONE plugin, re-scan everything warm. The warm pass answers unchanged
// plugins from the result pool and re-analyzes the touched plugin with its
// unchanged ASTs and function summaries seeded from the cache, so it should
// beat a cold re-scan by well over the 3x acceptance floor.
//
// Correctness gate: the warm reports are compared byte-for-byte against a
// fresh cold service scanning the same mutated corpus. A cache that changes
// one byte of output is a bug, not a speedup — a mismatch fails the bench.
//
// Results go to BENCH_incremental.json at the repo root (committed, like
// BENCH_scale.json, so later PRs have a trajectory to compare against).
//
// Usage: bench_incremental [scale] [timing_reps] [output.json]
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "report/export.h"
#include "service/service.h"
#include "util/json_writer.h"
#include "util/timing.h"
#include "util/worker_pool.h"

#ifndef PHPSAFE_REPO_ROOT
#define PHPSAFE_REPO_ROOT "."
#endif

using namespace phpsafe;
using service::AnalysisService;
using service::ScanRequest;
using service::ScanResponse;

namespace {

std::vector<ScanRequest> corpus_requests(const corpus::Corpus& corpus) {
    std::vector<ScanRequest> requests;
    requests.reserve(corpus.plugins.size());
    for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
        ScanRequest request;
        request.plugin = plugin.name;
        for (const auto& [name, text] : plugin.v2014.files)
            request.files.push_back({name, text});
        requests.push_back(std::move(request));
    }
    return requests;
}

struct PassResult {
    double wall = 0;                    ///< whole corpus, wall clock
    double mutated_wall = 0;            ///< the touched plugin's scan alone
    std::vector<std::string> reports;   ///< render_json_report per plugin
    ScanResponse mutated_response;      ///< response for the touched plugin
};

PassResult scan_all(AnalysisService& service,
                    const std::vector<ScanRequest>& requests,
                    size_t mutated_index) {
    PassResult pass;
    pass.reports.reserve(requests.size());
    const double start = wall_seconds();
    for (size_t i = 0; i < requests.size(); ++i) {
        ScanResponse response = service.scan(requests[i]);
        pass.reports.push_back(render_json_report(response.result));
        if (i == mutated_index) {
            pass.mutated_wall = response.wall_seconds;
            pass.mutated_response = std::move(response);
        }
    }
    pass.wall = wall_seconds() - start;
    return pass;
}

}  // namespace

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;
    const std::string out_path =
        argc > 3 ? argv[3]
                 : std::string(PHPSAFE_REPO_ROOT "/BENCH_incremental.json");
    if (scale <= 0) {
        std::cerr << "usage: bench_incremental [scale] [timing_reps] "
                     "[output.json]\n";
        return 2;
    }

    corpus::CorpusOptions corpus_options;
    corpus_options.scale = scale;
    const corpus::Corpus corpus = corpus::generate_corpus(corpus_options);
    const std::vector<ScanRequest> original = corpus_requests(corpus);

    // Touch the first plugin's main file: a trailing line comment changes
    // the content hash (invalidating that file's ASTs and the summaries of
    // every function declared in it) without changing any finding.
    const size_t mutated_index = 0;

    double cold_wall = 0, warm_wall = 0;
    double cold_mutated_wall = 0, warm_mutated_wall = 0;
    ScanResponse warm_mutated_response;
    service::CacheStats warm_stats;
    bool reports_identical = true;

    for (int rep = 0; rep < reps; ++rep) {
        // A distinct revision per rep keeps every warm re-scan honest: the
        // mutated request never matches a cached result from a prior rep.
        std::vector<ScanRequest> mutated = original;
        mutated[mutated_index].files[0].text +=
            "\n// bench revision " + std::to_string(rep + 1) + "\n";

        AnalysisService warm_service;
        (void)scan_all(warm_service, original, mutated_index);  // prime caches
        const PassResult warm = scan_all(warm_service, mutated, mutated_index);

        AnalysisService cold_service;
        const PassResult cold = scan_all(cold_service, mutated, mutated_index);

        if (warm.reports != cold.reports) {
            reports_identical = false;
            for (size_t i = 0; i < warm.reports.size(); ++i) {
                if (warm.reports[i] != cold.reports[i])
                    std::cerr << "FATAL: warm report differs from cold for "
                              << mutated[i].plugin << "\n";
            }
        }

        if (rep == 0 || warm.wall < warm_wall) {
            warm_wall = warm.wall;
            warm_mutated_wall = warm.mutated_wall;
            warm_mutated_response = warm.mutated_response;
            warm_stats = warm_service.cache_stats();
        }
        if (rep == 0 || cold.wall < cold_wall) {
            cold_wall = cold.wall;
            cold_mutated_wall = cold.mutated_wall;
        }
    }

    const double total_speedup = warm_wall > 0 ? cold_wall / warm_wall : 0;
    const double mutated_speedup =
        warm_mutated_wall > 0 ? cold_mutated_wall / warm_mutated_wall : 0;

    std::ofstream out(out_path);
    JsonWriter w(out, 2);
    w.begin_object();
    w.kv("bench", "bench_incremental");
    w.kv("scenario",
         "scan corpus cold, append one comment line to one file, re-scan "
         "warm; unchanged plugins hit the result pool, the touched plugin "
         "re-analyzes with cached ASTs and seeded summaries");
    w.kv("corpus_scale", scale);
    w.kv("plugins", static_cast<int>(corpus.plugins.size()));
    w.kv("files", corpus.total_files("2014"));
    w.kv("lines", corpus.total_lines("2014"));
    w.kv("timing_reps", reps);
    w.kv("workers", WorkerPool::resolve_parallelism(0));
    w.kv("cold_wall_seconds", cold_wall);
    w.kv("warm_wall_seconds", warm_wall);
    w.kv("warm_speedup", total_speedup, 2);
    w.key("mutated_plugin").begin_object();
    w.kv("plugin", original[mutated_index].plugin);
    w.kv("cold_wall_seconds", cold_mutated_wall);
    w.kv("warm_wall_seconds", warm_mutated_wall);
    w.kv("warm_speedup", mutated_speedup, 2);
    w.kv("files_reused", warm_mutated_response.files_reused);
    w.kv("summaries_seeded", warm_mutated_response.summaries_seeded);
    w.kv("summaries_invalidated", warm_mutated_response.summaries_invalidated);
    w.end_object();
    w.key("cache").begin_object();
    w.kv("file_hits", warm_stats.file_hits);
    w.kv("file_misses", warm_stats.file_misses);
    w.kv("summary_hits", warm_stats.summary_hits);
    w.kv("summary_misses", warm_stats.summary_misses);
    w.kv("result_hits", warm_stats.result_hits);
    w.kv("evictions", warm_stats.evictions);
    w.kv("invalidations", warm_stats.invalidations);
    w.kv("bytes_resident", warm_stats.bytes_resident);
    w.end_object();
    w.kv("warm_reports_byte_identical_to_cold", reports_identical);
    w.end_object();
    out << "\n";

    std::cout << "incremental: cold " << cold_wall << "s, warm " << warm_wall
              << "s (x" << total_speedup << "); touched plugin cold "
              << cold_mutated_wall << "s, warm " << warm_mutated_wall << "s (x"
              << mutated_speedup << ", " << warm_mutated_response.files_reused
              << " files reused, " << warm_mutated_response.summaries_seeded
              << " summaries seeded)\n";
    std::cout << "wrote " << out_path << "\n";

    if (!reports_identical) return 1;
    if (total_speedup < 3.0) {
        std::cerr << "WARNING: warm speedup below the 3x floor\n";
        return 1;
    }
    return 0;
}
