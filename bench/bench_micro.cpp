// Micro-benchmarks: lexer/parser/engine throughput scaling with file size.
// Not a paper table; establishes that analysis cost grows roughly linearly
// with LOC (supporting the paper's §V.E scalability claim).
#include <benchmark/benchmark.h>

#include <string>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/lexer.h"
#include "php/parser.h"
#include "corpus/generator.h"
#include "php/project.h"

namespace {

std::string make_php(int blocks) {
    std::string code = "<?php\n";
    for (int i = 0; i < blocks; ++i) {
        const std::string n = std::to_string(i);
        code += "$title_" + n + " = $_GET['t" + n + "'];\n";
        code += "$clean_" + n + " = htmlspecialchars($title_" + n + ");\n";
        code += "echo '<h2>' . $clean_" + n + " . '</h2>';\n";
        code += "function helper_" + n + "($x) { return trim($x); }\n";
        code += "echo helper_" + n + "($title_" + n + ");\n";
    }
    return code;
}

void BM_Lexer(benchmark::State& state) {
    const std::string code = make_php(static_cast<int>(state.range(0)));
    phpsafe::SourceFile file("bench.php", code);
    for (auto _ : state) {
        phpsafe::DiagnosticSink sink;
        phpsafe::Arena arena;
        phpsafe::php::Lexer lexer(file, arena, sink);
        benchmark::DoNotOptimize(lexer.tokenize());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * code.size());
}
BENCHMARK(BM_Lexer)->Arg(10)->Arg(100)->Arg(1000);

void BM_Parser(benchmark::State& state) {
    const std::string code = make_php(static_cast<int>(state.range(0)));
    phpsafe::SourceFile file("bench.php", code);
    for (auto _ : state) {
        phpsafe::DiagnosticSink sink;
        phpsafe::Arena arena;
        phpsafe::php::Parser parser(file, arena, sink);
        benchmark::DoNotOptimize(parser.parse());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * code.size());
}
BENCHMARK(BM_Parser)->Arg(10)->Arg(100)->Arg(1000);

void BM_EngineAnalyze(benchmark::State& state) {
    const std::string code = make_php(static_cast<int>(state.range(0)));
    phpsafe::php::Project project("bench");
    project.add_file("bench.php", code);
    phpsafe::DiagnosticSink sink;
    project.parse_all(sink);
    const phpsafe::Tool tool = phpsafe::make_phpsafe_tool();
    const phpsafe::Analyzer analyzer =
        phpsafe::Analyzer::borrowing(tool.kb, tool.options);
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.scan(project).result);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * code.size());
}
BENCHMARK(BM_EngineAnalyze)->Arg(10)->Arg(100)->Arg(1000);

// Function-summary reuse (paper §III.C: "every function is analyzed only
// the first time it is called... the data flow of this analysis is used to
// process future calls"): analysis cost must grow with the number of call
// *sites* far slower than re-analyzing the body each time would.
void BM_SummaryReuse(benchmark::State& state) {
    const int call_sites = static_cast<int>(state.range(0));
    std::string code =
        "<?php\n"
        "function render($v) {\n"
        "  $out = '<div>' . htmlspecialchars($v) . '</div>';\n"
        "  $out .= '<span>' . strtoupper(trim($v)) . '</span>';\n"
        "  return $out;\n"
        "}\n";
    for (int i = 0; i < call_sites; ++i)
        code += "echo render($_GET['k" + std::to_string(i) + "']);\n";
    phpsafe::php::Project project("bench");
    project.add_file("bench.php", code);
    phpsafe::DiagnosticSink sink;
    project.parse_all(sink);
    const phpsafe::Tool tool = phpsafe::make_phpsafe_tool();
    const phpsafe::Analyzer analyzer =
        phpsafe::Analyzer::borrowing(tool.kb, tool.options);
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.scan(project).result);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * call_sites);
}
BENCHMARK(BM_SummaryReuse)->Arg(1)->Arg(32)->Arg(1024);

// Whole-corpus generation cost (the deterministic dataset substitute).
void BM_CorpusGeneration(benchmark::State& state) {
    phpsafe::corpus::CorpusOptions options;
    options.scale = static_cast<double>(state.range(0)) / 100.0;
    options.filler_lines_2012 = static_cast<int>(70000 * options.scale);
    options.filler_lines_2014 = static_cast<int>(150000 * options.scale);
    for (auto _ : state) {
        benchmark::DoNotOptimize(phpsafe::corpus::generate_corpus(options));
    }
}
BENCHMARK(BM_CorpusGeneration)->Arg(10)->Arg(50)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
