// Thin adapter between the bench binaries and the library's evaluation
// driver (report/evaluation.h) — the benches are printers; the procedure
// itself is public API.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "report/evaluation.h"
#include "report/metrics.h"

namespace phpsafe::bench {

using ToolVersionStats = EvaluationStats;

struct EvalRun {
    corpus::Corpus corpus;
    std::vector<Tool> tools;
    // stats[version][tool]
    std::map<std::string, std::map<std::string, ToolVersionStats>> stats;
    std::map<std::string, std::vector<corpus::SeededVuln>> truth;
};

inline EvalRun run_evaluation(double scale = 1.0, int repetitions = 1) {
    EvaluationOptions options;
    options.corpus_scale = scale;
    options.timing_repetitions = repetitions;
    // Auto parallelism in the bench path: PHPSAFE_JOBS when set, otherwise
    // hardware_concurrency(). Statistics are identical at any worker count
    // and per-plugin times use a per-thread CPU clock, so parallel bench
    // runs report the same tables, just sooner.
    options.parallelism = 0;
    Evaluation evaluation = run_corpus_evaluation(paper_tool_set(), options);

    EvalRun run;
    run.corpus = std::move(evaluation.corpus);
    run.tools = paper_tool_set();
    run.stats = std::move(evaluation.stats);
    run.truth = std::move(evaluation.truth);
    return run;
}

/// Paper-style FN per tool: vulnerabilities detected by any tool but missed
/// by this one (the paper's optimistic convention, §IV.B.5).
inline std::map<std::string, int> paper_fn(
    const std::map<std::string, ToolVersionStats>& stats,
    bool xss_only = false, bool sqli_only = false) {
    std::map<std::string, std::set<std::string>> detected;
    for (const auto& [tool, s] : stats)
        detected[tool] = xss_only    ? s.detected_ids_xss
                         : sqli_only ? s.detected_ids_sqli
                                     : s.detected_ids;
    return paper_style_false_negatives(detected);
}

}  // namespace phpsafe::bench
