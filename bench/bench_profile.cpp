// Profiling bench: runs the paper's 3-tool corpus evaluation with a
// force-enabled obs::Tracer and prints/exports where the CPU goes. Outputs:
//
//   BENCH_profile.json — flat stage table (per-tool stage breakdown plus
//                        the work counters) for scripted comparison.
//   trace.json         — Chrome trace-event file; load it in
//                        chrome://tracing or https://ui.perfetto.dev to see
//                        the per-(plugin, version, tool) spans on the
//                        worker-pool timeline.
//
// The tracer is armed explicitly with Tracer(true), so this works in any
// build — the PHPSAFE_TRACE CMake option only changes the default state of
// default-constructed tracers.
//
// Usage: bench_profile [corpus_scale] [parallelism] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "phpsafe.h"
#include "util/worker_pool.h"

#ifndef PHPSAFE_REPO_ROOT
#define PHPSAFE_REPO_ROOT "."
#endif

using namespace phpsafe;

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    const int parallelism = argc > 2 ? std::atoi(argv[2]) : 0;  // 0 = auto
    const std::string out_dir =
        argc > 3 ? argv[3] : std::string(PHPSAFE_REPO_ROOT);
    if (scale <= 0) {
        std::cerr << "usage: bench_profile [corpus_scale] [parallelism] "
                     "[output_dir]\n";
        return 2;
    }

    obs::Tracer tracer(/*enabled=*/true);
    // The paper's 3 tools plus the phpSAFE preset on the IR backend: the
    // fourth row is what makes the lower/propagate split in the stage
    // table non-trivial (the AST rows lower nothing).
    std::vector<Tool> tools = paper_tool_set();
    Tool ir_tool = make_phpsafe_tool();
    ir_tool.name = "phpSAFE-IR";
    ir_tool.options = ir_tool.options.to_builder()
                          .engine_backend(EngineBackend::kIr)
                          .build();
    tools.push_back(std::move(ir_tool));

    EvaluationOptions options;
    options.corpus_scale = scale;
    options.parallelism = parallelism;
    options.tracer = &tracer;

    const Evaluation evaluation = run_corpus_evaluation(tools, options);

    // Stage table: one row per (version, tool), sourced from the
    // StageBreakdown the evaluation driver fills from the obs subsystem.
    TextTable table;
    table.add_row({"Version", "Tool", "lex s", "parse s", "include s",
                   "lower s", "propagate s", "total s"});
    auto fmt = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", v);
        return std::string(buf);
    };
    for (const auto& [version, tools] : evaluation.stats) {
        for (const auto& [tool, stats] : tools) {
            const StageBreakdown& st = stats.stages;
            table.add_row({version, tool, fmt(st.lex), fmt(st.parse),
                           fmt(st.include), fmt(st.lower), fmt(st.propagate()),
                           fmt(st.total())});
        }
    }
    std::cout << table.to_string() << "\n";
    std::cout << "spans recorded: " << tracer.record_count() << "\n";

    const std::string profile_path = out_dir + "/BENCH_profile.json";
    {
        std::ofstream out(profile_path);
        JsonWriter w(out, 2);
        w.begin_object();
        w.kv("bench", "bench_profile");
        w.kv("corpus_scale", scale);
        w.kv("parallelism", WorkerPool::resolve_parallelism(parallelism));
        w.kv("spans", static_cast<uint64_t>(tracer.record_count()));
        w.key("tools").begin_array();
        for (const auto& [version, tools] : evaluation.stats) {
            for (const auto& [tool, stats] : tools) {
                const StageBreakdown& st = stats.stages;
                w.begin_object();
                w.kv("version", version);
                w.kv("tool", tool);
                w.key("stages").begin_object();
                w.kv("lex_cpu_seconds", st.lex);
                w.kv("parse_cpu_seconds", st.parse);
                w.kv("include_cpu_seconds", st.include);
                w.kv("analyze_cpu_seconds", st.analyze);
                w.kv("lower_cpu_seconds", st.lower);
                w.kv("propagate_cpu_seconds", st.propagate());
                w.kv("total_cpu_seconds", st.total());
                w.end_object();
                w.key("counters").begin_object();
                stats.counters.for_each_field(
                    [&](const char* name, uint64_t value) { w.kv(name, value); });
                w.end_object();
                w.end_object();
            }
        }
        w.end_array();
        w.end_object();
        out << "\n";
    }

    const std::string trace_path = out_dir + "/trace.json";
    if (!tracer.write_chrome_trace(trace_path)) {
        std::cerr << "failed to write " << trace_path << "\n";
        return 1;
    }
    std::cout << "wrote " << profile_path << " and " << trace_path << "\n";
    return 0;
}
