// Reproduces Fig. 2: the Venn overlap of distinct vulnerabilities detected
// by phpSAFE, RIPS-like and Pixy-like in each corpus version (the paper
// reports 394 distinct vulnerabilities in 2012, 586 in 2014 — a 51%
// increase in two years).
#include <iostream>

#include "harness.h"
#include "report/overlap.h"

using namespace phpsafe;
using namespace phpsafe::bench;

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::stod(argv[1]) : 1.0;
    std::cout << "Fig. 2 reproduction — tools' vulnerability detection overlap\n";
    EvalRun run = run_evaluation(scale);

    int union_2012 = 0, union_2014 = 0;
    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        std::map<std::string, std::set<std::string>> detected;
        for (const auto& [tool, s] : run.stats[version])
            detected[tool] = s.detected_ids;
        const VennRegions regions = compute_overlap(detected);
        std::cout << "\n=== Version " << version << " ===\n"
                  << render_overlap(regions);
        (version == "2012" ? union_2012 : union_2014) = regions.union_size;
    }

    std::cout << "\nGrowth in distinct vulnerabilities 2012 → 2014: "
              << union_2012 << " → " << union_2014 << " (+"
              << (100 * (union_2014 - union_2012) / union_2012)
              << "%; paper: 394 → 586, +51%)\n";
    return 0;
}
