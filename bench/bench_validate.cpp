// Batch validation benchmark: what does exploit-confirming EVERY finding
// AND verifying every proposed quickfix cost, sequentially vs through the
// batch pipeline?
//
// Two paths produce the same tiered verdicts and the same verified fixes:
//
//   sequential — the pre-pipeline composition (and what a per-finding
//                script around the standalone tool would pay): one
//                dynamic::Validator::validate call per finding, each
//                constructing and seeding its own interpreter run; then,
//                per proposed quickfix, write the patched file set, rebuild
//                the project model from text, re-run the analyzer cold and
//                replay the finding.
//   batched    — validate/validate.h: findings grouped by execution key
//                (entry file, payload, seed class) share one interpreter
//                run each; fix verification re-parses only the patched file
//                (php::Project::fork_with_replacement shares every other
//                AST and declaration-table entry) and seeds hermetic
//                function summaries captured once from the original
//                project, so each rescan recomputes only what the patch
//                can influence.
//
// Both judge with the same Validator::judge on deterministic executions
// and hold verified fixes to the same gates, so their outcomes agree
// byte-for-byte; the speedup is execution dedup plus the amortized model
// construction. The bench also reports the paper-facing precision
// composition the old bench_validation printed (how much precision does
// keeping only confirmed reports buy) — all into BENCH_validate.json
// (committed).
//
// Correctness gates (always a hard fail):
//   - batched tiers/replays AND per-case fix verdicts equal the sequential
//     ones case-by-case (this pins the fork+seeding fast path to the
//     from-scratch rebuild),
//   - validation_signature (tiers + verified fixes) is byte-identical at
//     workers 1 and 4,
//   - validation_signature is byte-identical under the "ast" and "ir"
//     taint backends.
//
// Usage: bench_validate [reps] [output.json]
//        bench_validate --smoke [baseline.json]
//
// --smoke is the CI gate: the identity gates plus the machine-independent
// batched-over-sequential speedup on a small fixed workload; >20%
// regression against the committed baseline's smoke block fails (the
// bench_graph precedent).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "corpus/generator.h"
#include "dynamic/validator.h"
#include "report/matching.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/timing.h"
#include "validate/quickfix.h"
#include "validate/validate.h"

#ifndef PHPSAFE_REPO_ROOT
#define PHPSAFE_REPO_ROOT "."
#endif

using namespace phpsafe;
using dynamic::ValidationResult;
using dynamic::Validator;
using validate::CaseOutcome;
using validate::Tier;
using validate::ValidateOptions;
using validate::ValidationReport;

namespace {

/// One corpus plugin's static pre-work (untimed: both paths start from the
/// same scan result).
struct PluginRun {
    php::Project project;
    AnalysisResult result;
    std::vector<corpus::SeededVuln> truth;
};

std::vector<PluginRun> scan_corpus(double scale, const Tool& tool) {
    corpus::CorpusOptions options;
    options.scale = scale;
    options.filler_lines_2012 = static_cast<int>(20000 * scale);
    options.filler_lines_2014 = static_cast<int>(40000 * scale);
    const corpus::Corpus corpus = corpus::generate_corpus(options);

    std::vector<PluginRun> runs;
    runs.reserve(corpus.plugins.size());
    for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
        DiagnosticSink sink;
        PluginRun run{corpus::build_project(plugin, plugin.v2014, sink), {},
                      plugin.v2014.truth};
        run.result = run_tool(tool, run.project);
        runs.push_back(std::move(run));
    }
    return runs;
}

/// Byte rendering of one finding (identity + full trace) for the
/// nothing-else-regressed gate — the bench-local mirror of the pipeline's
/// internal finding signature.
std::string finding_signature(const Finding& finding) {
    std::string sig = to_string(finding);
    sig += '\n';
    for (const TaintStep& step : finding.trace)
        sig += "  " + to_string(step.location) + ' ' + step.description + '\n';
    return sig;
}

struct SequentialOutcome {
    ValidationResult replay;
    bool proposed = false;
    bool verified = false;
};

/// The sequential fix verification: write the patched file set, rebuild the
/// whole project model from text, re-run the analyzer cold, replay. Gates
/// mirror validate.cpp's verify_fix exactly so the verdicts are comparable.
bool verify_sequentially(const Tool& tool, const php::Project& project,
                         const AnalysisResult& result, size_t target,
                         const validate::Quickfix& fix) {
    const std::optional<std::string> patched_text =
        validate::apply_quickfix(project, fix);
    if (!patched_text) return false;
    php::Project patched(project.name());
    for (const auto& file : project.files())
        patched.add_file(std::string(file->source->name()),
                         file->source->name() == fix.file
                             ? *patched_text
                             : std::string(file->source->text()));
    DiagnosticSink sink;
    patched.parse_all(sink);
    const php::ParsedFile* parsed = patched.file_named(fix.file);
    if (!parsed || parsed->parse_failed) return false;

    const AnalysisResult after = run_tool(tool, patched);
    if (after.files_failed != result.files_failed) return false;
    const Finding& finding = result.findings[target];
    const std::string target_key = finding.dedup_key();
    if (after.findings.size() + 1 != result.findings.size()) return false;
    size_t j = 0;
    for (size_t i = 0; i < result.findings.size(); ++i) {
        if (i == target) continue;
        const Finding& kept = after.findings[j++];
        if (kept.dedup_key() == target_key) return false;
        if (finding_signature(kept) != finding_signature(result.findings[i]))
            return false;
    }
    Validator validator(patched);
    return !validator.validate(finding).confirmed;
}

/// The sequential baseline: one Validator::validate per finding, then one
/// propose + from-scratch verification per quickfix. Returns the per-case
/// outcomes so the identity gate can compare them.
std::vector<std::vector<SequentialOutcome>> run_sequential(
    const std::vector<PluginRun>& runs, const Tool& tool, double& seconds) {
    std::vector<std::vector<SequentialOutcome>> outcomes(runs.size());
    const double t0 = wall_seconds();
    for (size_t p = 0; p < runs.size(); ++p) {
        Validator validator(runs[p].project);
        const std::vector<Finding>& findings = runs[p].result.findings;
        outcomes[p].resize(findings.size());
        for (size_t i = 0; i < findings.size(); ++i) {
            SequentialOutcome& out = outcomes[p][i];
            out.replay = validator.validate(findings[i]);
            const std::optional<validate::Quickfix> fix =
                validate::propose_quickfix(runs[p].project, tool.kb,
                                           findings[i]);
            if (!fix) continue;
            out.proposed = true;
            out.verified = verify_sequentially(tool, runs[p].project,
                                               runs[p].result, i, *fix);
        }
    }
    seconds = wall_seconds() - t0;
    return outcomes;
}

std::vector<ValidationReport> run_batched(const std::vector<PluginRun>& runs,
                                          const Tool& tool,
                                          const ValidateOptions& vopts,
                                          double& seconds) {
    std::vector<ValidationReport> reports;
    reports.reserve(runs.size());
    const double t0 = wall_seconds();
    for (const PluginRun& run : runs)
        reports.push_back(validate::validate_result(
            run.project, tool.kb, tool.options, run.result, vopts));
    seconds = wall_seconds() - t0;
    return reports;
}

/// The tier the sequential replay implies — the same mapping step 3 of the
/// pipeline applies to a shared execution.
Tier tier_of(const ValidationResult& replay) {
    if (replay.confirmed) return Tier::kValidated;
    if (replay.executed) return Tier::kUnvalidated;
    return Tier::kInconclusive;
}

/// Gate 1: every batched case must equal its sequential counterpart — same
/// tier, verdict, payload and evidence for the replay, and the same
/// proposed/verified outcome for the quickfix.
bool batched_equals_sequential(
    const std::vector<PluginRun>& runs,
    const std::vector<ValidationReport>& reports,
    const std::vector<std::vector<SequentialOutcome>>& sequential,
    std::string& detail) {
    for (size_t p = 0; p < runs.size(); ++p) {
        const std::vector<CaseOutcome>& cases = reports[p].cases;
        if (cases.size() != sequential[p].size()) {
            detail = "case count mismatch on plugin " + std::to_string(p);
            return false;
        }
        for (size_t i = 0; i < cases.size(); ++i) {
            const ValidationResult& batch = cases[i].replay;
            const SequentialOutcome& seq = sequential[p][i];
            if (cases[i].tier != tier_of(seq.replay) ||
                batch.confirmed != seq.replay.confirmed ||
                batch.executed != seq.replay.executed ||
                batch.evidence != seq.replay.evidence ||
                batch.payload_used != seq.replay.payload_used) {
                detail = "case " + std::to_string(i) + " of plugin " +
                         std::to_string(p) +
                         " differs between batched and sequential replay";
                return false;
            }
            const bool batch_verified = static_cast<bool>(cases[i].fix);
            if (batch_verified != seq.verified) {
                detail = "fix verdict for case " + std::to_string(i) +
                         " of plugin " + std::to_string(p) +
                         " differs between the incremental and from-scratch "
                         "verification";
                return false;
            }
        }
    }
    return true;
}

/// Gates 2 and 3: the full pipeline (tiers + verified fixes) must render
/// the same validation_signature at workers 1 vs 4, and under the ast vs
/// ir taint backends.
bool verify_workers_identity(double scale, std::string& detail) {
    const Tool tool = make_phpsafe_tool();
    const std::vector<PluginRun> runs = scan_corpus(scale, tool);
    for (const PluginRun& run : runs) {
        ValidateOptions one;
        one.workers = 1;
        ValidateOptions four;
        four.workers = 4;
        const ValidationReport a = validate::validate_result(
            run.project, tool.kb, tool.options, run.result, one);
        const ValidationReport b = validate::validate_result(
            run.project, tool.kb, tool.options, run.result, four);
        if (validate::validation_signature(run.result, a) !=
            validate::validation_signature(run.result, b)) {
            detail = "signatures differ between 1 and 4 workers on plugin " +
                     run.result.plugin;
            return false;
        }
    }
    return true;
}

bool verify_backend_identity(double scale, std::string& detail) {
    Tool ast = make_phpsafe_tool();
    ast.options =
        ast.options.to_builder().engine_backend(EngineBackend::kAst).build();
    Tool ir = make_phpsafe_tool();
    ir.options =
        ir.options.to_builder().engine_backend(EngineBackend::kIr).build();
    const std::vector<PluginRun> ast_runs = scan_corpus(scale, ast);
    const std::vector<PluginRun> ir_runs = scan_corpus(scale, ir);
    if (ast_runs.size() != ir_runs.size()) {
        detail = "plugin count differs between backends";
        return false;
    }
    ValidateOptions vopts;
    vopts.workers = 2;
    for (size_t p = 0; p < ast_runs.size(); ++p) {
        const ValidationReport a = validate::validate_result(
            ast_runs[p].project, ast.kb, ast.options, ast_runs[p].result,
            vopts);
        const ValidationReport b = validate::validate_result(
            ir_runs[p].project, ir.kb, ir.options, ir_runs[p].result, vopts);
        if (validate::validation_signature(ast_runs[p].result, a) !=
            validate::validation_signature(ir_runs[p].result, b)) {
            detail = "signatures differ between ast and ir backends on "
                     "plugin " +
                     ast_runs[p].result.plugin;
            return false;
        }
    }
    return true;
}

struct Measurement {
    size_t plugins = 0;
    int findings = 0;
    int executions = 0;
    int validated = 0;
    int unvalidated = 0;
    int inconclusive = 0;
    int tp_total = 0, tp_confirmed = 0;
    int fp_total = 0, fp_confirmed = 0;
    int fixes_proposed = 0;
    int fixes_verified = 0;
    double sequential_seconds = 0;
    double batched_seconds = 0;
    bool identical = false;
    std::string detail;

    double speedup() const {
        return batched_seconds > 0 ? sequential_seconds / batched_seconds : 0;
    }
    double dedup_factor() const {
        return executions > 0 ? static_cast<double>(findings) / executions : 0;
    }
};

/// Full measurement at one corpus scale: best-of-`reps` timings for both
/// full pipelines (replay + propose + verify), the batched-vs-sequential
/// identity gate, and the precision composition.
Measurement measure(double scale, int reps) {
    const Tool tool = make_phpsafe_tool();
    const std::vector<PluginRun> runs = scan_corpus(scale, tool);

    Measurement m;
    m.plugins = runs.size();
    for (const PluginRun& run : runs)
        m.findings += static_cast<int>(run.result.findings.size());

    std::vector<std::vector<SequentialOutcome>> sequential;
    std::vector<ValidationReport> batched;
    ValidateOptions timing;
    timing.workers = 1;  // single-core box: the speedup must be algorithmic
    timing.propose_fixes = true;
    for (int rep = 0; rep < reps; ++rep) {
        double seq_dt = 0, batch_dt = 0;
        auto seq = run_sequential(runs, tool, seq_dt);
        auto batch = run_batched(runs, tool, timing, batch_dt);
        if (rep == 0 || seq_dt < m.sequential_seconds)
            m.sequential_seconds = seq_dt;
        if (rep == 0 || batch_dt < m.batched_seconds)
            m.batched_seconds = batch_dt;
        sequential = std::move(seq);
        batched = std::move(batch);
    }

    m.identical =
        batched_equals_sequential(runs, batched, sequential, m.detail);
    for (const ValidationReport& report : batched) {
        m.executions += report.executions;
        m.validated += report.validated;
        m.unvalidated += report.unvalidated;
        m.inconclusive += report.inconclusive;
        m.fixes_proposed += report.fixes_proposed;
        m.fixes_verified += report.fixes_verified;
    }

    // Precision composition (the old bench_validation table): confirmed
    // rates over ground-truth-matched vs false-positive findings.
    for (size_t p = 0; p < runs.size(); ++p) {
        const MatchResult match =
            match_findings(runs[p].result.findings, runs[p].truth);
        const std::vector<Finding>& findings = runs[p].result.findings;
        for (const Finding* finding : match.true_positives) {
            const size_t i = static_cast<size_t>(finding - findings.data());
            ++m.tp_total;
            if (batched[p].cases[i].replay.confirmed) ++m.tp_confirmed;
        }
        for (const Finding* finding : match.false_positives) {
            const size_t i = static_cast<size_t>(finding - findings.data());
            ++m.fp_total;
            if (batched[p].cases[i].replay.confirmed) ++m.fp_confirmed;
        }
    }

    return m;
}

int run_smoke(const std::string& baseline_path) {
    std::string detail;
    if (!verify_workers_identity(0.25, detail)) {
        std::cerr << "SMOKE FAIL: " << detail << "\n";
        return 1;
    }
    if (!verify_backend_identity(0.25, detail)) {
        std::cerr << "SMOKE FAIL: " << detail << "\n";
        return 1;
    }
    const Measurement small = measure(0.25, 3);
    if (!small.identical) {
        std::cerr << "SMOKE FAIL: " << small.detail << "\n";
        return 1;
    }

    std::ifstream in(baseline_path);
    if (!in) {
        std::cerr << "SMOKE FAIL: cannot read baseline " << baseline_path
                  << "\n";
        return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    JsonValue baseline;
    std::string error;
    if (!JsonReader::parse(text, baseline, &error)) {
        std::cerr << "SMOKE FAIL: bad baseline JSON: " << error << "\n";
        return 1;
    }
    const JsonValue* smoke = baseline.get("smoke");
    const JsonValue* base = smoke ? smoke->get("speedup") : nullptr;
    if (!base || !base->is_number() || base->number <= 0) {
        std::cerr << "SMOKE FAIL: baseline has no smoke.speedup\n";
        return 1;
    }
    const double floor = base->number * 0.8;
    std::cout << "validate smoke: sequential "
              << small.sequential_seconds * 1e3 << "ms batched "
              << small.batched_seconds * 1e3 << "ms speedup x"
              << small.speedup() << " (baseline x" << base->number
              << ", floor x" << floor << ")\n";
    if (small.speedup() < floor) {
        std::cerr << "SMOKE FAIL: batched speedup x" << small.speedup()
                  << " fell more than 20% below baseline x" << base->number
                  << "\n";
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1 && std::string(argv[1]) == "--smoke") {
        const std::string baseline =
            argc > 2 ? argv[2]
                     : std::string(PHPSAFE_REPO_ROOT "/BENCH_validate.json");
        return run_smoke(baseline);
    }

    const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
    const std::string out_path =
        argc > 2 ? argv[2]
                 : std::string(PHPSAFE_REPO_ROOT "/BENCH_validate.json");
    if (reps <= 0) {
        std::cerr << "usage: bench_validate [reps] [output.json] | "
                     "bench_validate --smoke [baseline.json]\n";
        return 2;
    }

    std::string workers_detail, backend_detail;
    const bool workers_ok = verify_workers_identity(0.25, workers_detail);
    const bool backend_ok = verify_backend_identity(0.25, backend_detail);
    std::cout << "byte-identity (workers 1 vs 4): "
              << (workers_ok ? "ok" : "FAIL — " + workers_detail) << "\n";
    std::cout << "byte-identity (backend ast vs ir): "
              << (backend_ok ? "ok" : "FAIL — " + backend_detail) << "\n";

    const Measurement full = measure(1.0, reps);
    std::cout << "corpus scale 1: " << full.plugins << " plugins, "
              << full.findings << " findings, " << full.executions
              << " deduplicated executions (factor x" << full.dedup_factor()
              << ")\n"
              << "sequential " << full.sequential_seconds * 1e3
              << "ms batched " << full.batched_seconds * 1e3 << "ms (x"
              << full.speedup() << ")\n"
              << "tiers: " << full.validated << " validated, "
              << full.unvalidated << " unvalidated, " << full.inconclusive
              << " inconclusive\n"
              << "fixes: " << full.fixes_verified << " verified of "
              << full.fixes_proposed << " proposed\n";
    if (!full.identical)
        std::cout << "IDENTITY FAIL: " << full.detail << "\n";

    const Measurement smoke = measure(0.25, reps);

    std::ofstream out(out_path);
    JsonWriter w(out, 2);
    w.begin_object();
    w.kv("bench", "bench_validate");
    w.kv("scenario",
         "exploit-confirming every corpus finding AND verifying every "
         "proposed quickfix: sequential replay (one seeded interpreter run "
         "per finding, then per fix a from-text project rebuild + cold "
         "analyzer rescan + replay) vs the batch pipeline (findings sharing "
         "an execution key share one run; fix rescans re-parse only the "
         "patched file via fork_with_replacement and seed hermetic "
         "summaries captured once). Outcomes byte-identical case by case, "
         "best-of-reps, single worker so the speedup is algorithmic");
    w.kv("timing_reps", reps);
    w.kv("corpus_scale", 1.0, 2);
    w.kv("plugins", static_cast<uint64_t>(full.plugins));
    w.kv("findings", full.findings);
    w.kv("executions", full.executions);
    w.kv("dedup_factor", full.dedup_factor(), 2);
    w.kv("sequential_ms", full.sequential_seconds * 1e3, 3);
    w.kv("batched_ms", full.batched_seconds * 1e3, 3);
    w.kv("speedup", full.speedup(), 2);
    w.key("tiers").begin_object();
    w.kv("validated", full.validated);
    w.kv("unvalidated", full.unvalidated);
    w.kv("inconclusive", full.inconclusive);
    w.end_object();
    w.key("precision").begin_object();
    w.kv("true_positives", full.tp_total);
    w.kv("true_positives_confirmed", full.tp_confirmed);
    w.kv("false_positives", full.fp_total);
    w.kv("false_positives_confirmed", full.fp_confirmed);
    w.end_object();
    w.key("quickfixes").begin_object();
    w.kv("proposed", full.fixes_proposed);
    w.kv("verified", full.fixes_verified);
    w.end_object();
    w.key("byte_identity").begin_array();
    w.begin_object();
    w.kv("gate", "batched_equals_sequential");
    w.kv("ok", full.identical);
    w.end_object();
    w.begin_object();
    w.kv("gate", "workers_1_vs_4");
    w.kv("ok", workers_ok);
    w.end_object();
    w.begin_object();
    w.kv("gate", "backend_ast_vs_ir");
    w.kv("ok", backend_ok);
    w.end_object();
    w.end_array();
    w.key("smoke").begin_object();
    w.kv("corpus_scale", 0.25, 2);
    w.kv("sequential_ms", smoke.sequential_seconds * 1e3, 3);
    w.kv("batched_ms", smoke.batched_seconds * 1e3, 3);
    w.kv("speedup", smoke.speedup(), 2);
    w.end_object();
    w.end_object();
    out << "\n";
    std::cout << "wrote " << out_path << "\n";

    if (!full.identical || !smoke.identical || !workers_ok || !backend_ok) {
        std::cerr << "FATAL: batched validation diverged from sequential "
                     "replay\n";
        return 1;
    }
    return 0;
}
