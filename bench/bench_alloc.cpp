// Allocation bench: cold model construction (lex + parse + include
// resolution) over the full generated corpus, measured against the
// pre-arena seed pipeline. This is the verification artifact for the
// arena-allocated AST: it reports wall/CPU time, a malloc-count proxy
// (every global operator new call made while the models are built), and
// peak RSS, and writes BENCH_alloc.json next to the repo root.
//
// The "pre" block embeds the seed baseline measured with this same
// procedure before the arena landed: the old parser made at least one heap
// allocation per AST node (make_unique per node, plus a std::string per
// identifier), so allocations-per-node = 1.0 is a conservative floor.
//
// Usage: bench_alloc [corpus_scale] [output_path]
//        bench_alloc --smoke
//
// --smoke rebuilds the corpus at the committed baseline's scale and gates
// on the committed BENCH_alloc.json:
// it fails (exit 1) when allocations-per-node or arena-bytes-per-node
// regress by more than 20%. Those two ratios are scale- and
// machine-independent, unlike wall time on a shared CI runner, so the gate
// catches "someone re-introduced per-node heap traffic" without flaking.
#include <sys/resource.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>

#include "corpus/generator.h"
#include "obs/counters.h"
#include "php/project.h"
#include "php/walk.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/timing.h"

#ifndef PHPSAFE_REPO_ROOT
#define PHPSAFE_REPO_ROOT "."
#endif

// ---------------------------------------------------------------------------
// Malloc-count proxy: count every global operator new while models build.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace phpsafe {
namespace {

// Seed baseline (pre-arena pipeline, same machine, same procedure): cold
// lex/parse/include CPU over the scale-1.0 corpus, and its peak RSS.
constexpr double kPreLexCpuSeconds = 0.316;      // 2012: 0.099 + 2014: 0.217
constexpr double kPreParseCpuSeconds = 0.261;    // 2012: 0.082 + 2014: 0.179
constexpr double kPreIncludeCpuSeconds = 0.001;
constexpr double kPreTotalCpuSeconds =
    kPreLexCpuSeconds + kPreParseCpuSeconds + kPreIncludeCpuSeconds;
constexpr uint64_t kPreAstNodes = 681135;
constexpr uint64_t kPrePeakRssKb = 27696;
constexpr double kPreAllocsPerNodeFloor = 1.0;

struct ColdRun {
    double wall_seconds = 0;
    double lex_cpu_seconds = 0;
    double parse_cpu_seconds = 0;
    double include_cpu_seconds = 0;
    uint64_t heap_allocations = 0;
    obs::Counters counters;
    int includes_checked = 0;

    double total_cpu_seconds() const {
        return lex_cpu_seconds + parse_cpu_seconds + include_cpu_seconds;
    }
    double allocs_per_node() const {
        return counters.ast_nodes
                   ? static_cast<double>(heap_allocations) /
                         static_cast<double>(counters.ast_nodes)
                   : 0;
    }
    double arena_bytes_per_node() const {
        return counters.ast_nodes
                   ? static_cast<double>(counters.alloc_arena_bytes) /
                         static_cast<double>(counters.ast_nodes)
                   : 0;
    }
};

/// Builds every plugin-version model of the corpus from cold source text,
/// then resolves every literal include path, exactly like the engine's
/// model-construction stage — and nothing else.
ColdRun run_cold_construction(const corpus::Corpus& corpus) {
    ColdRun run;
    const obs::CounterDelta delta;
    const uint64_t allocs_before =
        g_heap_allocations.load(std::memory_order_relaxed);
    const double wall_start = wall_seconds();

    for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
        for (const corpus::PluginVersionSource* version :
             {&plugin.v2012, &plugin.v2014}) {
            php::Project project(plugin.name);
            for (const auto& [name, text] : version->files)
                project.add_file(name, text);
            DiagnosticSink sink;
            project.parse_all(sink);
            run.lex_cpu_seconds += project.build_stats().lex_cpu_seconds;
            run.parse_cpu_seconds += project.build_stats().parse_cpu_seconds;

            const double include_start = thread_cpu_seconds();
            // Visitors hoisted out of the statement loop so the walk costs
            // zero allocations regardless of std::function's SBO size.
            const php::ExprVisitor find_includes = [&](const php::Expr& e) {
                if (e.kind != php::NodeKind::kIncludeExpr) return;
                const auto& inc = static_cast<const php::IncludeExpr&>(e);
                if (!inc.path || inc.path->kind != php::NodeKind::kLiteral)
                    return;
                const auto& lit = static_cast<const php::Literal&>(*inc.path);
                (void)project.resolve_include(lit.value);
                ++run.includes_checked;
            };
            const php::StmtVisitor ignore_stmts = [](const php::Stmt&) {};
            for (const auto& file : project.files()) {
                if (!file) continue;
                for (const php::StmtPtr& stmt : file->unit.statements)
                    if (stmt) php::walk_stmt(*stmt, find_includes, ignore_stmts);
            }
            run.include_cpu_seconds += thread_cpu_seconds() - include_start;
        }
    }

    run.wall_seconds = wall_seconds() - wall_start;
    run.heap_allocations =
        g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
    run.counters = delta.take();
    return run;
}

uint64_t peak_rss_kb() {
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<uint64_t>(usage.ru_maxrss);
}

void write_report(const std::string& path, double scale, const ColdRun& run) {
    std::ofstream out(path);
    JsonWriter w(out, 2);
    w.begin_object();
    w.kv("bench", "bench_alloc");
    w.kv("corpus_scale", scale, 4);
    w.key("pre").begin_object();
    w.kv("pipeline", "per-node make_unique + std::string identifiers");
    w.kv("lex_cpu_seconds", kPreLexCpuSeconds, 4);
    w.kv("parse_cpu_seconds", kPreParseCpuSeconds, 4);
    w.kv("include_cpu_seconds", kPreIncludeCpuSeconds, 4);
    w.kv("total_cpu_seconds", kPreTotalCpuSeconds, 4);
    w.kv("ast_nodes", kPreAstNodes);
    w.kv("peak_rss_kb", kPrePeakRssKb);
    w.kv("allocs_per_node_floor", kPreAllocsPerNodeFloor, 4);
    w.end_object();
    w.key("post").begin_object();
    w.kv("pipeline", "arena nodes + zero-copy string_view identifiers");
    w.kv("wall_seconds", run.wall_seconds, 4);
    w.kv("lex_cpu_seconds", run.lex_cpu_seconds, 4);
    w.kv("parse_cpu_seconds", run.parse_cpu_seconds, 4);
    w.kv("include_cpu_seconds", run.include_cpu_seconds, 4);
    w.kv("total_cpu_seconds", run.total_cpu_seconds(), 4);
    w.kv("ast_nodes", run.counters.ast_nodes);
    w.kv("tokens_lexed", run.counters.tokens_lexed);
    w.kv("files_parsed", run.counters.files_parsed);
    w.kv("includes_checked", static_cast<uint64_t>(run.includes_checked));
    w.kv("heap_allocations", run.heap_allocations);
    w.kv("allocs_per_node", run.allocs_per_node(), 4);
    w.kv("arena_bytes", run.counters.alloc_arena_bytes);
    w.kv("arena_blocks", run.counters.alloc_arena_blocks);
    w.kv("arena_bytes_per_node", run.arena_bytes_per_node(), 4);
    w.kv("string_bytes_copied", run.counters.alloc_string_bytes);
    w.kv("string_bytes_zero_copy", run.counters.alloc_string_bytes_saved);
    w.kv("peak_rss_kb", peak_rss_kb());
    w.end_object();
    w.kv("speedup_cold_model_construction",
         kPreTotalCpuSeconds / run.total_cpu_seconds(), 4);
    w.kv("heap_alloc_reduction_per_node",
         kPreAllocsPerNodeFloor / run.allocs_per_node(), 4);
    w.end_object();
}

/// Loads the committed baseline; returns false (with a message) when it is
/// missing or malformed.
bool load_baseline(JsonValue& doc) {
    const std::string baseline_path =
        std::string(PHPSAFE_REPO_ROOT) + "/BENCH_alloc.json";
    std::ifstream in(baseline_path);
    if (!in) {
        std::cerr << "bench_alloc --smoke: baseline " << baseline_path
                  << " not found\n";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!JsonReader::parse(buffer.str(), doc, &error)) {
        std::cerr << "bench_alloc --smoke: bad baseline JSON: " << error
                  << "\n";
        return false;
    }
    return true;
}

int smoke(const ColdRun& run, const JsonValue& doc) {
    const JsonValue* post = doc.get("post");
    const JsonValue* base_allocs = post ? post->get("allocs_per_node") : nullptr;
    const JsonValue* base_bytes =
        post ? post->get("arena_bytes_per_node") : nullptr;
    if (!base_allocs || !base_bytes) {
        std::cerr << "bench_alloc --smoke: baseline lacks post ratios\n";
        return 1;
    }

    int failures = 0;
    auto gate = [&](const char* what, double current, double committed) {
        const double limit = committed * 1.2;
        const bool ok = current <= limit;
        std::printf("%-24s current %.4f  committed %.4f  limit %.4f  %s\n",
                    what, current, committed, limit, ok ? "ok" : "REGRESSION");
        if (!ok) ++failures;
    };
    gate("allocs_per_node", run.allocs_per_node(), base_allocs->number);
    gate("arena_bytes_per_node", run.arena_bytes_per_node(),
         base_bytes->number);
    return failures ? 1 : 0;
}

int bench_main(int argc, char** argv) {
    bool smoke_mode = false;
    double scale = 1.0;
    std::string output = std::string(PHPSAFE_REPO_ROOT) + "/BENCH_alloc.json";
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke_mode = true;
        } else if (positional == 0) {
            scale = std::atof(argv[i]);
            ++positional;
        } else {
            output = argv[i];
            ++positional;
        }
    }
    // The per-node ratios depend on corpus scale (tiny files amortize
    // per-file fixed costs over fewer nodes), so the smoke run rebuilds the
    // corpus at the committed baseline's own scale — a full-scale cold
    // construction takes well under a second.
    JsonValue baseline;
    if (smoke_mode) {
        if (!load_baseline(baseline)) return 1;
        const JsonValue* base_scale = baseline.get("corpus_scale");
        scale = base_scale ? base_scale->number : 1.0;
    }
    if (scale <= 0) {
        std::cerr << "usage: bench_alloc [corpus_scale] [output_path] "
                     "| bench_alloc --smoke\n";
        return 2;
    }

    corpus::CorpusOptions options;
    options.scale = scale;
    options.filler_lines_2012 = static_cast<int>(70000 * scale);
    options.filler_lines_2014 = static_cast<int>(150000 * scale);
    const corpus::Corpus corpus = corpus::generate_corpus(options);

    const ColdRun run = run_cold_construction(corpus);

    std::printf(
        "cold model construction: %.3f s wall, %.3f s cpu "
        "(lex %.3f, parse %.3f, include %.3f)\n",
        run.wall_seconds, run.total_cpu_seconds(), run.lex_cpu_seconds,
        run.parse_cpu_seconds, run.include_cpu_seconds);
    std::printf(
        "%llu nodes, %llu heap allocations (%.4f per node), "
        "%llu arena bytes in %llu blocks\n",
        static_cast<unsigned long long>(run.counters.ast_nodes),
        static_cast<unsigned long long>(run.heap_allocations),
        run.allocs_per_node(),
        static_cast<unsigned long long>(run.counters.alloc_arena_bytes),
        static_cast<unsigned long long>(run.counters.alloc_arena_blocks));

    if (smoke_mode) return smoke(run, baseline);

    std::printf("speedup vs seed: %.2fx cpu; alloc reduction: %.1fx; "
                "peak rss %llu KB (seed %llu KB)\n",
                kPreTotalCpuSeconds / run.total_cpu_seconds(),
                kPreAllocsPerNodeFloor / run.allocs_per_node(),
                static_cast<unsigned long long>(peak_rss_kb()),
                static_cast<unsigned long long>(kPrePeakRssKb));
    write_report(output, scale, run);
    std::printf("wrote %s\n", output.c_str());
    return 0;
}

}  // namespace
}  // namespace phpsafe

int main(int argc, char** argv) { return phpsafe::bench_main(argc, argv); }
