// Reproduces Table I: TP / FP / Precision / Recall / F-score for phpSAFE,
// RIPS-like and Pixy-like across the 2012 and 2014 corpus versions, per
// vulnerability class (XSS, SQLi) and globally — plus the §V.A OOP
// breakdown (vulnerabilities flowing through WordPress objects, which only
// phpSAFE detects).
//
// FN (and therefore recall) follows the paper's optimistic convention: a
// tool's FNs are the vulnerabilities the OTHER tools detected that it
// missed. The oracle variant (all seeded vulnerabilities) is printed as a
// supplementary block the paper could not compute.
#include <iostream>

#include "harness.h"
#include "report/render.h"

using namespace phpsafe;
using namespace phpsafe::bench;

namespace {

struct Cell {
    int tp, fp, fn;
};

void print_section(const char* title, const EvalRun& run, bool xss, bool sqli,
                   bool oracle) {
    std::cout << "\n--- " << title << " ---\n";
    TextTable table;
    table.add_row({"Metric", "phpSAFE 2012", "phpSAFE 2014", "RIPS 2012",
                   "RIPS 2014", "Pixy 2012", "Pixy 2014"});

    auto cell = [&](const std::string& version, const std::string& tool) -> Cell {
        const ToolVersionStats& s = run.stats.at(version).at(tool);
        int tp = xss ? s.tp_xss : sqli ? s.tp_sqli : s.tp;
        int fp = xss ? s.fp_xss : sqli ? s.fp_sqli : s.fp;
        int fn = 0;
        if (oracle) {
            int total = 0;
            for (const corpus::SeededVuln& v : run.truth.at(version)) {
                if (xss && v.kind != VulnKind::kXss) continue;
                if (sqli && v.kind != VulnKind::kSqli) continue;
                ++total;
            }
            const auto& ids = xss    ? s.detected_ids_xss
                              : sqli ? s.detected_ids_sqli
                                     : s.detected_ids;
            fn = total - static_cast<int>(ids.size());
        } else {
            fn = paper_fn(run.stats.at(version), xss, sqli).at(tool);
        }
        return {tp, fp, fn};
    };

    const std::vector<std::pair<std::string, std::string>> columns = {
        {"2012", "phpSAFE"}, {"2014", "phpSAFE"}, {"2012", "RIPS"},
        {"2014", "RIPS"},    {"2012", "Pixy"},    {"2014", "Pixy"},
    };

    std::vector<std::string> tp_row = {"True Positives"};
    std::vector<std::string> fp_row = {"False Positives"};
    std::vector<std::string> fn_row = {"False Negatives"};
    std::vector<std::string> prec_row = {"Precision"};
    std::vector<std::string> rec_row = {"Recall"};
    std::vector<std::string> f_row = {"F-score"};
    for (const auto& [version, tool] : columns) {
        const Cell c = cell(version, tool);
        ConfusionMetrics m{c.tp, c.fp, c.fn};
        tp_row.push_back(std::to_string(c.tp));
        fp_row.push_back(std::to_string(c.fp));
        fn_row.push_back(std::to_string(c.fn));
        prec_row.push_back(format_pct(m.precision()));
        rec_row.push_back(format_pct(m.recall()));
        f_row.push_back(format_pct(m.f_score()));
    }
    table.add_row(tp_row);
    table.add_row(fp_row);
    table.add_row(fn_row);
    table.add_row(prec_row);
    table.add_row(rec_row);
    table.add_row(f_row);
    std::cout << table.to_string();
}

}  // namespace

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::stod(argv[1]) : 1.0;
    std::cout << "Table I reproduction — vulnerabilities in the 2012 and 2014 "
                 "plugin versions\n";
    std::cout << "(corpus scale " << scale << "; see EXPERIMENTS.md)\n";
    EvalRun run = run_evaluation(scale);

    std::cout << "\nCorpus: " << run.corpus.plugins.size() << " plugins; 2012: "
              << run.corpus.total_files("2012") << " files / "
              << run.corpus.total_lines("2012") << " lines, seeded vulns "
              << run.truth["2012"].size() << "; 2014: "
              << run.corpus.total_files("2014") << " files / "
              << run.corpus.total_lines("2014") << " lines, seeded vulns "
              << run.truth["2014"].size() << "\n";

    print_section("XSS (paper-style FN)", run, true, false, false);
    print_section("SQLi (paper-style FN)", run, false, true, false);
    print_section("Global (paper-style FN)", run, false, false, false);
    print_section("Global (oracle FN — all seeded vulns)", run, false, false, true);

    std::cout << "\n--- OOP-related vulnerabilities (paper §V.A) ---\n";
    TextTable oop;
    oop.add_row({"Tool", "2012 OOP TPs", "2014 OOP TPs"});
    for (const Tool& tool : run.tools)
        oop.add_row({tool.name,
                     std::to_string(run.stats["2012"][tool.name].tp_oop),
                     std::to_string(run.stats["2014"][tool.name].tp_oop)});
    std::cout << oop.to_string();

    std::cout << "\nPaper Table I reference (for shape comparison):\n"
                 "  Global TP:  phpSAFE 315/387, RIPS 134/304, Pixy 50/20\n"
                 "  Global FP:  phpSAFE 65/62,  RIPS 79/79,   Pixy 187/208\n"
                 "  OOP vulns:  phpSAFE 151/179, RIPS 0/0,    Pixy 0/0\n";
    return 0;
}
