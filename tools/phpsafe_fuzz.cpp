// phpsafe_fuzz — mutation-fuzzing driver for the analyzer's oracle battery
// (src/fuzz/). Replays the regression corpus, then runs `--iterations`
// mutated cases through the no-crash / determinism / preset-monotonicity /
// interpreter-agreement oracles; violations are minimized and written back
// into the corpus.
//
//   phpsafe_fuzz [--iterations N] [--seed S] [--corpus DIR]
//                [--byte-percent P] [--replay-only] [--no-write]
//                [--concurrency] [--quickfix]
//                [--backend ast|ir|differential]
//
// --concurrency additionally runs the multi-client interleaving oracle on
// every case (3 client threads against a shared 4-worker service) — slower
// per case, so it is opt-in for dedicated CI stages.
//
// --quickfix additionally runs the quickfix-soundness oracle on every case
// (full validation pipeline + an independent rescan per emitted fix) —
// likewise opt-in for dedicated CI stages.
//
// --backend sets PHPSAFE_BACKEND for the whole process before any engine
// is built, so every oracle (including the service-backed ones) runs its
// phpSAFE scans on the chosen taint backend. `differential` turns each
// case into an IR-vs-AST byte-identity check: a divergence surfaces as a
// no-crash violation and is minimized into the corpus like any other.
//
// Exit status: 0 = clean, 1 = oracle violations, 2 = usage error.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "fuzz/fuzzer.h"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--iterations N] [--seed S] [--corpus DIR]"
                 " [--byte-percent P] [--replay-only] [--no-write]"
                 " [--concurrency] [--quickfix]"
                 " [--backend ast|ir|differential]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace phpsafe::fuzz;

    // --backend must win before the first default_engine_backend() call
    // caches the env var, i.e. before any AnalysisOptions is constructed.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--backend" && i + 1 < argc) {
            phpsafe::EngineBackend backend;
            if (!phpsafe::backend_from_string(argv[i + 1], backend)) {
                std::cerr << "unknown backend '" << argv[i + 1]
                          << "' (expected ast, ir or differential)\n";
                return 2;
            }
            setenv("PHPSAFE_BACKEND", argv[i + 1], /*overwrite=*/1);
        }
    }

    FuzzOptions options;
    options.corpus_dir = "tests/fuzz_corpus/regressions";
    bool replay_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--iterations") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.iterations = std::atoi(v);
        } else if (arg == "--seed") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--corpus") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.corpus_dir = v;
        } else if (arg == "--byte-percent") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.byte_percent = std::atoi(v);
        } else if (arg == "--backend") {
            if (!next()) return usage(argv[0]);  // value consumed above
        } else if (arg == "--concurrency") {
            options.oracles.check_concurrency = true;
        } else if (arg == "--quickfix") {
            options.oracles.check_quickfix = true;
        } else if (arg == "--replay-only") {
            replay_only = true;
        } else if (arg == "--no-write") {
            options.write_regressions = false;
        } else {
            return usage(argv[0]);
        }
    }
    if (!options.corpus_dir.empty() &&
        !std::filesystem::is_directory(options.corpus_dir)) {
        std::cerr << "note: corpus directory '" << options.corpus_dir
                  << "' not found; replay skipped\n";
        options.corpus_dir.clear();
        options.write_regressions = false;
    }
    options.log = &std::cout;

    FuzzStats stats;
    if (replay_only) {
        stats = replay_corpus(options.corpus_dir, options.oracles);
    } else {
        stats = run_fuzz(options);
    }

    std::cout << "corpus: " << stats.corpus_replayed << " replayed, "
              << stats.corpus_violations.size() << " violation(s)\n";
    if (!replay_only) {
        char hash[17];
        std::snprintf(hash, sizeof hash, "%016llx",
                      static_cast<unsigned long long>(stats.case_trace_hash));
        std::cout << "fuzz: " << stats.iterations_run << " case(s) ("
                  << stats.structure_cases << " structure, "
                  << stats.byte_cases << " byte), " << stats.violations.size()
                  << " violation(s), " << stats.regressions_written.size()
                  << " regression(s) written\n"
                  << "case trace hash: " << hash << "\n";
    }
    for (const auto& v : stats.corpus_violations)
        std::cout << "CORPUS VIOLATION [" << to_string(v.oracle) << "] "
                  << v.detail << "\n";
    for (const auto& v : stats.violations)
        std::cout << "VIOLATION [" << to_string(v.oracle) << "] " << v.detail
                  << "\n";
    return stats.clean() ? 0 : 1;
}
