// phpsafe_serve — newline-delimited JSON front end for the AnalysisService.
// Reads one JSON request object per stdin line, writes one JSON response
// object per stdout line; editors/CI keep the process alive so consecutive
// scans hit the warm AST/summary/result caches.
//
// Requests:
//   {"op":"scan","path":"/plugin/dir"}            scan *.php under a directory
//   {"op":"scan","plugin":"p","files":[{"name":"a.php","text":"<?php ..."}]}
//   {"op":"scan",...,"preset":"rips"}             preset: phpsafe|rips|pixy
//   {"op":"stats"}                                cache statistics
//   {"op":"clear"}                                drop all cache pools
//   {"op":"quit"}                                 exit cleanly
//
// Scan responses carry the same report object render_json_report() emits
// for the batch tools, plus cache effectiveness fields:
//   {"ok":true,"from_result_cache":false,"files_reused":12,
//    "summaries_seeded":80,"summaries_invalidated":2,"wall_seconds":0.0131,
//    "report":{"tool":...,"plugin":...,"findings":[...]}}
// Errors: {"ok":false,"error":"..."}.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/export.h"
#include "service/service.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace fs = std::filesystem;
using phpsafe::JsonReader;
using phpsafe::JsonValue;
using phpsafe::JsonWriter;

namespace {

void reply_error(const std::string& message) {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object().kv("ok", false).kv("error", message).end_object();
    std::cout << out.str() << "\n" << std::flush;
}

/// Loads all *.php files under `root` (recursively, path-sorted so the
/// request fingerprint is stable across directory iteration order).
bool load_directory(const std::string& root,
                    std::vector<phpsafe::service::SourceFileSpec>& files,
                    std::string& error) {
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        error = "not a directory: " + root;
        return false;
    }
    std::vector<fs::path> paths;
    for (const auto& entry :
         fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".php")
            paths.push_back(entry.path());
    }
    if (ec) {
        error = "cannot list " + root + ": " + ec.message();
        return false;
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            error = "cannot read " + path.string();
            return false;
        }
        std::ostringstream text;
        text << in.rdbuf();
        files.push_back({fs::relative(path, root, ec).generic_string(),
                         std::move(text).str()});
    }
    if (files.empty()) {
        error = "no .php files under " + root;
        return false;
    }
    return true;
}

bool build_request(const JsonValue& request,
                   phpsafe::service::ScanRequest& scan, std::string& error) {
    scan.preset = request.string_or("preset", "phpsafe");
    const std::string path = request.string_or("path", "");
    if (!path.empty()) {
        if (!load_directory(path, scan.files, error)) return false;
        scan.plugin =
            request.string_or("plugin", fs::path(path).filename().string());
        return true;
    }
    const JsonValue* files = request.get("files");
    if (!files || !files->is_array() || files->array.empty()) {
        error = "scan needs \"path\" or a non-empty \"files\" array";
        return false;
    }
    for (const JsonValue& file : files->array) {
        const JsonValue* name = file.get("name");
        const JsonValue* text = file.get("text");
        if (!name || !name->is_string() || !text || !text->is_string()) {
            error = "each file needs string \"name\" and \"text\"";
            return false;
        }
        scan.files.push_back({name->string, text->string});
    }
    scan.plugin = request.string_or("plugin", "stdin");
    return true;
}

void reply_scan(const phpsafe::service::ScanResponse& response) {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object();
    w.kv("ok", true);
    w.kv("from_result_cache", response.from_result_cache);
    w.kv("deduplicated", response.deduplicated);
    w.kv("files_reused", response.files_reused);
    w.kv("summaries_seeded", response.summaries_seeded);
    w.kv("summaries_invalidated", response.summaries_invalidated);
    w.kv("wall_seconds", response.wall_seconds, 4);
    w.key("report");
    // render_json_report emits a complete compact object; splice it in as
    // the final member rather than re-serializing every finding here.
    out << phpsafe::render_json_report(response.result) << "}";
    std::cout << out.str() << "\n" << std::flush;
}

void reply_stats(const phpsafe::service::CacheStats& stats) {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object();
    w.kv("ok", true);
    w.kv("file_entries", stats.file_entries);
    w.kv("summary_entries", stats.summary_entries);
    w.kv("result_entries", stats.result_entries);
    w.kv("bytes_resident", stats.bytes_resident);
    w.kv("file_hits", stats.file_hits);
    w.kv("file_misses", stats.file_misses);
    w.kv("summary_hits", stats.summary_hits);
    w.kv("summary_misses", stats.summary_misses);
    w.kv("result_hits", stats.result_hits);
    w.kv("evictions", stats.evictions);
    w.kv("invalidations", stats.invalidations);
    w.end_object();
    std::cout << out.str() << "\n" << std::flush;
}

}  // namespace

int main() {
    std::ios::sync_with_stdio(false);
    phpsafe::service::AnalysisService service;

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        JsonValue request;
        std::string error;
        if (!JsonReader::parse(line, request, &error) || !request.is_object()) {
            reply_error(error.empty() ? "request must be a JSON object" : error);
            continue;
        }

        const std::string op = request.string_or("op", "");
        if (op == "quit" || op == "shutdown") {
            std::ostringstream out;
            JsonWriter w(out);
            w.begin_object().kv("ok", true).kv("bye", true).end_object();
            std::cout << out.str() << "\n" << std::flush;
            break;
        }
        if (op == "stats") {
            reply_stats(service.cache_stats());
            continue;
        }
        if (op == "clear") {
            service.clear_cache();
            std::ostringstream out;
            JsonWriter w(out);
            w.begin_object().kv("ok", true).end_object();
            std::cout << out.str() << "\n" << std::flush;
            continue;
        }
        if (op != "scan") {
            reply_error("unknown op: \"" + op + "\"");
            continue;
        }

        phpsafe::service::ScanRequest scan;
        if (!build_request(request, scan, error)) {
            reply_error(error);
            continue;
        }
        reply_scan(service.scan(std::move(scan)));
    }
    return 0;
}
