// phpsafe_serve — newline-delimited JSON front end for the AnalysisService.
// Reads one JSON request object per stdin line, writes one JSON response
// object per stdout line; editors/CI keep the process alive so consecutive
// scans hit the warm AST/summary/result caches. The protocol itself lives
// in service/ndjson.h (drivable from tests); this binary just binds it to
// the standard streams.
//
// --deterministic zeroes wall-clock/resident-byte fields so a scripted
// session is byte-reproducible (used to regenerate the golden transcript
// in tests/golden/).
#include <cstring>
#include <iostream>

#include "service/ndjson.h"

int main(int argc, char** argv) {
    std::ios::sync_with_stdio(false);
    phpsafe::service::ServeOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--deterministic") == 0) {
            options.deterministic = true;
        } else {
            std::cerr << "usage: " << argv[0] << " [--deterministic]\n";
            return 2;
        }
    }
    phpsafe::service::serve_ndjson(std::cin, std::cout, options);
    return 0;
}
