// phpsafe_serve — newline-delimited JSON front end for the AnalysisService.
//
// Default mode reads one JSON request object per stdin line and writes one
// JSON response object per stdout line; editors/CI keep the process alive
// so consecutive scans hit the warm AST/summary/result caches. The
// protocol lives in service/ndjson.h (drivable from tests); this binary
// binds it to streams.
//
// Multi-client mode (one or more --session IN:OUT flags) runs the
// pipelined AnalysisServer instead: every IN:OUT pair — named pipes for
// live clients, regular files for scripted ones — gets its own session
// thread against ONE shared service, so all clients share the sharded
// cache, the priority queue, and admission control. Sessions end on quit
// or EOF of their input; the process exits when every session has ended.
//
//   phpsafe_serve --session /tmp/a.in:/tmp/a.out --session /tmp/b.in:/tmp/b.out
//
// --workers N      worker threads (default: auto)
// --max-queue N    admission control: reject scans once N are queued
// --deterministic  zero wall-clock/resident-byte fields so a scripted
//                  session is byte-reproducible (used to regenerate the
//                  golden transcripts in tests/golden/)
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "service/ndjson.h"
#include "service/server.h"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--deterministic] [--workers N] [--max-queue N]"
                 " [--session IN:OUT]...\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::ios::sync_with_stdio(false);
    phpsafe::service::ServerOptions options;
    std::vector<std::pair<std::string, std::string>> sessions;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--deterministic") {
            options.deterministic = true;
        } else if (arg == "--workers" && i + 1 < argc) {
            options.service.workers = std::atoi(argv[++i]);
        } else if (arg == "--max-queue" && i + 1 < argc) {
            options.service.max_queue_depth =
                static_cast<size_t>(std::atoll(argv[++i]));
        } else if (arg == "--session" && i + 1 < argc) {
            const std::string spec = argv[++i];
            const size_t colon = spec.find(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 >= spec.size()) {
                std::cerr << "--session needs IN:OUT, got \"" << spec
                          << "\"\n";
                return 2;
            }
            sessions.emplace_back(spec.substr(0, colon),
                                  spec.substr(colon + 1));
        } else {
            return usage(argv[0]);
        }
    }

    if (sessions.empty()) {
        phpsafe::service::ServeOptions serve;
        serve.deterministic = options.deterministic;
        phpsafe::service::serve_ndjson(std::cin, std::cout, serve);
        return 0;
    }

    phpsafe::service::AnalysisServer server(options);
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    threads.reserve(sessions.size());
    for (const auto& [in_path, out_path] : sessions) {
        threads.emplace_back([&, in_path, out_path] {
            // Open output first: with FIFOs, the client opens its read end
            // before writing requests, and mirroring that order avoids an
            // open/open deadlock.
            std::ofstream out(out_path, std::ios::binary);
            std::ifstream in(in_path, std::ios::binary);
            if (!in || !out) {
                std::cerr << "cannot open session " << in_path << ":"
                          << out_path << "\n";
                failed = true;
                return;
            }
            server.serve_session(in, out);
        });
    }
    for (std::thread& t : threads) t.join();
    return failed ? 1 : 0;
}
