#include "service/service.h"

#include <utility>

#include "util/strings.h"
#include "util/timing.h"

namespace phpsafe::service {

/// One queued/running scan. Awaiters block on `cv` until `done`. The
/// lifecycle field makes cancellation race-free: a worker claims the scan
/// with a kQueued→kRunning CAS, cancel() with kQueued→kCancelled — exactly
/// one of them wins.
struct PendingScan {
    enum State { kQueued = 0, kRunning, kCancelled };

    ScanRequest request;
    uint64_t fingerprint = 0;
    std::atomic<int> state{kQueued};
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    ScanResponse response;
};

uint64_t AnalysisService::spec_content_hash(const SourceFileSpec& spec) {
    if (spec.parsed) return spec.parsed->content_hash;
    if (spec.known_hash != 0) return spec.known_hash;
    return php::content_hash(spec.text);
}

uint64_t AnalysisService::request_fingerprint(const ScanRequest& request) {
    uint64_t h = fnv1a64(request.plugin);
    h = fnv1a64("\x1f", h);
    h = fnv1a64(request.preset, h);
    h = fnv1a64("\x1f", h);
    h = fnv1a64(request.backend, h);
    for (const SourceFileSpec& file : request.files) {
        h = fnv1a64("\x1f", h);
        h = fnv1a64(file.name, h);
        h = fnv1a64("\x1f", h);
        uint64_t content = spec_content_hash(file);
        char bytes[8];
        for (char& b : bytes) {
            b = static_cast<char>(content & 0xff);
            content >>= 8;
        }
        h = fnv1a64(std::string_view(bytes, sizeof bytes), h);
    }
    return h;
}

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.budgets) {
    // Every preset runs hermetic: summaries are computed context-free in
    // declaration order, the property that makes cross-run reuse sound (see
    // AnalysisOptions::hermetic_summaries).
    Tool phpsafe = make_phpsafe_tool();
    phpsafe.options.hermetic_summaries = true;
    presets_.emplace("phpsafe", std::move(phpsafe));
    Tool rips = make_rips_like_tool();
    rips.options.hermetic_summaries = true;
    presets_.emplace("rips", std::move(rips));
    Tool pixy = make_pixy_like_tool();
    pixy.options.hermetic_summaries = true;
    presets_.emplace("pixy", std::move(pixy));

    team_ = std::make_unique<TaskTeam>(
        WorkerPool::resolve_parallelism(options_.workers));
}

// ~team_ (declared last, destroyed first) resumes a paused queue and runs
// every remaining scan to completion, so no awaiter is left hanging.
AnalysisService::~AnalysisService() = default;

void AnalysisService::pause() { team_->pause(); }

void AnalysisService::resume() { team_->resume(); }

size_t AnalysisService::queue_depth() const { return team_->depth(); }

AnalysisService::Ticket AnalysisService::submit(ScanRequest request) {
    const uint64_t fingerprint = request_fingerprint(request);
    const int priority = request.priority;
    Ticket ticket;
    std::shared_ptr<PendingScan> scan;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = in_flight_.find(fingerprint);
        if (it != in_flight_.end()) {
            std::shared_ptr<PendingScan> existing = it->second.lock();
            if (existing &&
                existing->state.load(std::memory_order_acquire) !=
                    PendingScan::kCancelled) {
                ticket.scan_ = std::move(existing);
                ticket.coalesced = true;
                return ticket;
            }
        }
        if (options_.max_queue_depth != 0 &&
            team_->depth() >= options_.max_queue_depth) {
            // Admission control: answer immediately instead of queueing.
            // The rejected scan never enters the dedup map.
            auto rejected = std::make_shared<PendingScan>();
            rejected->request = std::move(request);
            rejected->response.rejected = true;
            rejected->response.result.plugin = rejected->request.plugin;
            rejected->response.result.diagnostics.push_back(Diagnostic{
                Severity::kFatal, SourceLocation{},
                "scan rejected: queue depth limit reached"});
            rejected->done = true;
            ticket.scan_ = std::move(rejected);
            return ticket;
        }
        scan = std::make_shared<PendingScan>();
        scan->request = std::move(request);
        scan->fingerprint = fingerprint;
        in_flight_[fingerprint] = scan;
    }
    maybe_shed();
    team_->post(priority,
                [this, scan] { run_scan(scan); });
    ticket.scan_ = std::move(scan);
    return ticket;
}

ScanResponse AnalysisService::await(const Ticket& ticket) {
    if (!ticket.scan_) return {};
    PendingScan& scan = *ticket.scan_;
    std::unique_lock<std::mutex> lock(scan.mutex);
    scan.cv.wait(lock, [&] { return scan.done; });
    ScanResponse response = scan.response;
    response.deduplicated = ticket.coalesced;
    return response;
}

ScanResponse AnalysisService::scan(ScanRequest request) {
    return await(submit(std::move(request)));
}

void AnalysisService::clear_cache() {
    cache_.clear();
    std::lock_guard<std::mutex> lock(validate_mutex_);
    validate_cache_.clear();
    validate_order_.clear();
}

ValidateResponse AnalysisService::validate(const ScanRequest& request) {
    const double wall_start = wall_seconds();
    const uint64_t fingerprint = request_fingerprint(request);
    {
        std::lock_guard<std::mutex> lock(validate_mutex_);
        const auto it = validate_cache_.find(fingerprint);
        if (it != validate_cache_.end()) {
            ValidateResponse response = *it->second;
            response.from_validate_cache = true;
            response.wall_seconds = wall_seconds() - wall_start;
            return response;
        }
    }

    ValidateResponse response;
    response.scan = scan(request);
    if (response.scan.cancelled || response.scan.rejected) {
        response.wall_seconds = wall_seconds() - wall_start;
        return response;
    }

    // The replay needs the concrete project, which the scan path does not
    // hand out: rebuild it from the request's specs. Pinned ASTs (watch
    // sessions) ride through without re-parsing; plain texts parse fresh.
    php::Project project(request.plugin);
    for (const SourceFileSpec& file : request.files) {
        if (file.parsed)
            project.add_parsed(file.parsed);
        else
            project.add_file(file.name, file.text);
    }
    DiagnosticSink sink;
    project.parse_all(sink);

    // Same preset + backend resolution as perform_scan, so the analyzer
    // configuration fix verification re-runs is exactly the one that
    // produced the findings.
    const auto preset_it = presets_.find(request.preset);
    const Tool& tool =
        preset_it != presets_.end() ? preset_it->second : presets_.at("phpsafe");
    AnalysisOptions options = tool.options;
    if (!request.backend.empty()) {
        EngineBackend backend = EngineBackend::kAst;
        if (backend_from_string(request.backend, backend))
            options = options.to_builder().engine_backend(backend).build();
    }

    validate::ValidateOptions vopts;  // workers auto: PHPSAFE_JOBS aware
    response.report = validate::validate_result(project, tool.kb, options,
                                                response.scan.result, vopts);
    response.tiered = response.scan.result;
    validate::apply_confidence(response.tiered, response.report);

    {
        std::lock_guard<std::mutex> lock(validate_mutex_);
        constexpr size_t kValidateCacheCap = 32;
        if (validate_cache_
                .emplace(fingerprint,
                         std::make_shared<const ValidateResponse>(response))
                .second) {
            validate_order_.push_back(fingerprint);
            if (validate_order_.size() > kValidateCacheCap) {
                validate_cache_.erase(validate_order_.front());
                validate_order_.erase(validate_order_.begin());
            }
        }
    }
    response.wall_seconds = wall_seconds() - wall_start;
    return response;
}

bool AnalysisService::cancel(const Ticket& ticket) {
    if (!ticket.scan_) return false;
    int expected = PendingScan::kQueued;
    if (!ticket.scan_->state.compare_exchange_strong(
            expected, PendingScan::kCancelled, std::memory_order_acq_rel))
        return false;
    // Release the fingerprint immediately: a new identical submit must run
    // fresh rather than coalesce onto a corpse. The queued task still runs
    // (cheaply) to deliver the cancelled response to awaiters.
    release_fingerprint(ticket.scan_);
    return true;
}

void AnalysisService::maybe_shed() {
    const size_t watermark = options_.pressure_queue_depth != 0
                                 ? options_.pressure_queue_depth
                                 : options_.max_queue_depth / 2;
    if (watermark == 0) return;
    if (team_->depth() < watermark) {
        shed_armed_.store(true, std::memory_order_relaxed);
        return;
    }
    // Rising edge only: a sustained deep queue sheds once, then re-arms
    // after it drains. Target half the resident bytes — AnalysisCache::shed
    // takes whole results first and parsed files last.
    if (shed_armed_.exchange(false, std::memory_order_relaxed))
        cache_.shed(cache_.stats().bytes_resident / 2);
}

void AnalysisService::release_fingerprint(
    const std::shared_ptr<PendingScan>& scan) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = in_flight_.find(scan->fingerprint);
    if (it == in_flight_.end()) return;
    // Only erase our own registration: a cancelled scan's slot may already
    // be occupied by a fresh identical submit.
    const std::shared_ptr<PendingScan> current = it->second.lock();
    if (!current || current == scan) in_flight_.erase(it);
}

void AnalysisService::finish(const std::shared_ptr<PendingScan>& scan,
                             ScanResponse response) {
    // The two critical sections here are deliberately tiny and disjoint:
    // the dedup map entry is released under the service mutex, the done
    // flag is flipped under the scan's own mutex — a slow scan completing
    // never holds the service-wide lock while awaiters wake up.
    release_fingerprint(scan);
    {
        std::lock_guard<std::mutex> lock(scan->mutex);
        scan->response = std::move(response);
        scan->done = true;
    }
    scan->cv.notify_all();
}

void AnalysisService::run_scan(const std::shared_ptr<PendingScan>& scan) {
    int expected = PendingScan::kQueued;
    if (!scan->state.compare_exchange_strong(expected, PendingScan::kRunning,
                                             std::memory_order_acq_rel)) {
        // cancel() won the race while the scan was queued.
        ScanResponse response;
        response.cancelled = true;
        response.result.plugin = scan->request.plugin;
        finish(scan, std::move(response));
        return;
    }
    scan->response.dispatch_seq =
        dispatch_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    ScanResponse response;
    try {
        response = perform_scan(*scan);
    } catch (const std::exception& e) {
        response = {};
        response.result.plugin = scan->request.plugin;
        response.result.diagnostics.push_back(
            Diagnostic{Severity::kFatal, SourceLocation{}, e.what()});
    } catch (...) {
        response = {};
        response.result.plugin = scan->request.plugin;
        response.result.diagnostics.push_back(Diagnostic{
            Severity::kFatal, SourceLocation{}, "unknown scan failure"});
    }
    response.dispatch_seq = scan->response.dispatch_seq;
    finish(scan, std::move(response));
}

ScanResponse AnalysisService::perform_scan(PendingScan& scan) {
    const double wall_start = wall_seconds();
    obs::Tracer inert(false);
    obs::Tracer& tracer = options_.tracer ? *options_.tracer : inert;
    auto scan_span = tracer.span("service.scan", {{"plugin", scan.request.plugin},
                                                  {"preset", scan.request.preset}});
    const obs::CounterDelta delta;
    ScanResponse response;

    const auto preset_it = presets_.find(scan.request.preset);
    const Tool& tool =
        preset_it != presets_.end() ? preset_it->second : presets_.at("phpsafe");
    // Per-request backend override. The effective options' fingerprint keys
    // the summary and result pools, so an "ir" scan never serves (or seeds)
    // an "ast" scan's cached artifacts.
    AnalysisOptions options = tool.options;
    if (!scan.request.backend.empty()) {
        EngineBackend backend = EngineBackend::kAst;
        if (!backend_from_string(scan.request.backend, backend)) {
            response.result.plugin = scan.request.plugin;
            response.result.diagnostics.push_back(Diagnostic{
                Severity::kFatal, SourceLocation{},
                "unknown backend \"" + scan.request.backend +
                    "\" (expected ast, ir or differential)"});
            response.wall_seconds = wall_seconds() - wall_start;
            return response;
        }
        options = options.to_builder().engine_backend(backend).build();
    }
    const std::string preset_fp = options.fingerprint();

    // Path 1: the exact (content, preset) pair was scanned before.
    bool served = false;
    if (options_.reuse_results) {
        if (auto cached = cache_.find_result(preset_fp, scan.fingerprint)) {
            response.result = *cached;
            response.from_result_cache = true;
            served = true;
        }
    }

    if (!served) {
        // Model construction, with per-file AST reuse.
        php::Project project(scan.request.plugin);
        {
            auto build_span =
                tracer.span("service.build", {{"plugin", scan.request.plugin}});
            for (const SourceFileSpec& file : scan.request.files) {
                if (file.parsed) {
                    // Pinned by the requester (watch sessions): no hash, no
                    // cache probe — the shared_ptr alone keeps it alive.
                    project.add_parsed(file.parsed);
                    continue;
                }
                const uint64_t hash = file.known_hash != 0
                                          ? file.known_hash
                                          : php::content_hash(file.text);
                if (auto cached = cache_.find_file(file.name, hash))
                    project.add_parsed(std::move(cached));
                else
                    project.add_file(file.name, file.text);
            }
            DiagnosticSink sink;
            project.parse_all(sink);
            // Pinned files skip (re)insertion: they bypassed the probe on
            // the way in, and their owner keeps them resident regardless.
            const auto& parsed_files = project.files();
            for (size_t i = 0; i < parsed_files.size(); ++i) {
                if (i < scan.request.files.size() && scan.request.files[i].parsed)
                    continue;
                cache_.insert_file(parsed_files[i]);
            }
        }
        response.files_reused = project.build_stats().files_reused;

        std::map<std::string, uint64_t, std::less<>> file_hashes;
        for (const auto& parsed : project.files())
            if (parsed) file_hashes[parsed->source->name()] = parsed->content_hash;

        // Summary seeding: sound only for presets that pre-summarize every
        // declared function ("pixy" skips uncalled functions, so its stage
        // order — and therefore summary purity — is call-driven; it gets
        // AST and result caching only).
        const bool summary_reuse = options_.reuse_summaries &&
                                   options.hermetic_summaries &&
                                   options.analyze_uncalled_functions;
        std::map<std::string, const SummaryArtifact*> seeds;
        std::vector<std::shared_ptr<const SummaryArtifact>> pins;
        if (summary_reuse) {
            auto seed_span =
                tracer.span("service.seed", {{"plugin", scan.request.plugin}});
            // One memo per request: distinct dependency names resolve
            // against the project tables once, not once per summary
            // mentioning them (see DepCheckMemo).
            DepCheckMemo dep_memo(project);
            for (const php::FunctionRef& ref : project.all_functions()) {
                if (!ref.decl) continue;
                const std::string key = ascii_lower(ref.qualified_name());
                // Duplicate declarations: the project tables keep the first
                // one, so only it may be seeded.
                if (seeds.count(key)) continue;
                const auto declaring = file_hashes.find(ref.file);
                if (declaring == file_hashes.end()) continue;
                auto artifact =
                    cache_.find_summary(preset_fp, key, declaring->second);
                if (!artifact) continue;
                if (!dep_memo.validate(*artifact)) {
                    cache_.note_invalidation();
                    ++response.summaries_invalidated;
                    continue;
                }
                seeds.emplace(key, artifact.get());
                pins.push_back(std::move(artifact));
            }
            response.summaries_seeded = static_cast<int>(seeds.size());
        }

        SummaryExchange exchange;
        std::map<std::string, SummaryArtifact> capture;
        if (summary_reuse) {
            exchange.seeds = &seeds;
            exchange.capture = &capture;
        }

        Engine engine(tool.kb, options);
        {
            auto run_span =
                tracer.span("service.analyze", {{"plugin", scan.request.plugin},
                                                {"tool", tool.name}});
            const double cpu_start = thread_cpu_seconds();
            response.result = engine.analyze(project, exchange);
            response.result.cpu_seconds = thread_cpu_seconds() - cpu_start;
        }

        // Admit this run's reusable summaries, pinning each kFile dep to
        // the content hash it was computed against.
        if (summary_reuse) {
            std::map<std::string, const std::string_view*> declaring_file;
            for (const php::FunctionRef& ref : project.all_functions()) {
                if (!ref.decl) continue;
                declaring_file.emplace(ascii_lower(ref.qualified_name()),
                                       &ref.file);
            }
            for (auto& [key, artifact] : capture) {
                if (!artifact.reusable) continue;
                const auto owner = declaring_file.find(key);
                if (owner == declaring_file.end()) continue;
                const auto owner_hash = file_hashes.find(*owner->second);
                if (owner_hash == file_hashes.end()) continue;
                bool hashes_ok = true;
                for (SummaryDep& dep : artifact.deps) {
                    if (dep.kind != SummaryDep::Kind::kFile) continue;
                    const auto file_hash = file_hashes.find(dep.name);
                    if (file_hash == file_hashes.end()) {
                        hashes_ok = false;
                        break;
                    }
                    dep.hash = file_hash->second;
                }
                if (!hashes_ok) continue;
                cache_.insert_summary(preset_fp, key, owner_hash->second,
                                      std::move(artifact));
            }
        }

        if (options_.reuse_results) {
            response.result.counters = delta.take();
            cache_.insert_result(preset_fp, scan.fingerprint, response.result);
        }
    }

    response.counters = delta.take();
    if (!response.from_result_cache) response.result.counters = response.counters;
    response.wall_seconds = wall_seconds() - wall_start;
    scan_span.note("result_cache", response.from_result_cache ? "hit" : "miss");
    scan_span.end();
    return response;
}

}  // namespace phpsafe::service
