#include "service/service.h"

#include <utility>

#include "util/strings.h"
#include "util/timing.h"

namespace phpsafe::service {

/// One queued/running scan. Awaiters block on `cv` until `done`.
struct PendingScan {
    ScanRequest request;
    uint64_t fingerprint = 0;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    ScanResponse response;
};

uint64_t AnalysisService::request_fingerprint(const ScanRequest& request) {
    uint64_t h = fnv1a64(request.plugin);
    h = fnv1a64("\x1f", h);
    h = fnv1a64(request.preset, h);
    for (const SourceFileSpec& file : request.files) {
        h = fnv1a64("\x1f", h);
        h = fnv1a64(file.name, h);
        h = fnv1a64("\x1f", h);
        h = fnv1a64(file.text, h);
    }
    return h;
}

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.budgets) {
    // Every preset runs hermetic: summaries are computed context-free in
    // declaration order, the property that makes cross-run reuse sound (see
    // AnalysisOptions::hermetic_summaries).
    Tool phpsafe = make_phpsafe_tool();
    phpsafe.options.hermetic_summaries = true;
    presets_.emplace("phpsafe", std::move(phpsafe));
    Tool rips = make_rips_like_tool();
    rips.options.hermetic_summaries = true;
    presets_.emplace("rips", std::move(rips));
    Tool pixy = make_pixy_like_tool();
    pixy.options.hermetic_summaries = true;
    presets_.emplace("pixy", std::move(pixy));

    pool_ = std::make_unique<WorkerPool>(
        WorkerPool::resolve_parallelism(options_.workers));
    scheduler_ = std::thread([this] { scheduler_loop(); });
}

AnalysisService::~AnalysisService() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    queue_cv_.notify_all();
    scheduler_.join();
}

void AnalysisService::pause() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void AnalysisService::resume() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    queue_cv_.notify_all();
}

AnalysisService::Ticket AnalysisService::submit(ScanRequest request) {
    const uint64_t fingerprint = request_fingerprint(request);
    Ticket ticket;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = in_flight_.find(fingerprint);
    if (it != in_flight_.end()) {
        if (std::shared_ptr<PendingScan> existing = it->second.lock()) {
            ticket.scan_ = std::move(existing);
            ticket.coalesced = true;
            return ticket;
        }
    }
    auto scan = std::make_shared<PendingScan>();
    scan->request = std::move(request);
    scan->fingerprint = fingerprint;
    in_flight_[fingerprint] = scan;
    queue_.push_back(scan);
    ticket.scan_ = std::move(scan);
    queue_cv_.notify_all();
    return ticket;
}

ScanResponse AnalysisService::await(const Ticket& ticket) {
    if (!ticket.scan_) return {};
    PendingScan& scan = *ticket.scan_;
    std::unique_lock<std::mutex> lock(scan.mutex);
    scan.cv.wait(lock, [&] { return scan.done; });
    ScanResponse response = scan.response;
    response.deduplicated = ticket.coalesced;
    return response;
}

ScanResponse AnalysisService::scan(ScanRequest request) {
    return await(submit(std::move(request)));
}

void AnalysisService::scheduler_loop() {
    for (;;) {
        std::vector<std::shared_ptr<PendingScan>> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_cv_.wait(lock, [&] {
                return stop_ || (!paused_ && !queue_.empty());
            });
            if (queue_.empty()) {
                if (stop_) return;
                continue;
            }
            batch.assign(queue_.begin(), queue_.end());
            queue_.clear();
        }
        // The whole batch fans out onto one shared worker pool; identical
        // requests were already coalesced at submit().
        pool_->run(batch.size(), [&](size_t i) {
            PendingScan& scan = *batch[i];
            ScanResponse response;
            try {
                perform_scan(scan);
                return;
            } catch (const std::exception& e) {
                response.result.plugin = scan.request.plugin;
                response.result.diagnostics.push_back(Diagnostic{
                    Severity::kFatal, SourceLocation{}, e.what()});
            } catch (...) {
                response.result.plugin = scan.request.plugin;
                response.result.diagnostics.push_back(Diagnostic{
                    Severity::kFatal, SourceLocation{}, "unknown scan failure"});
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                in_flight_.erase(scan.fingerprint);
            }
            {
                std::lock_guard<std::mutex> lock(scan.mutex);
                scan.response = std::move(response);
                scan.done = true;
            }
            scan.cv.notify_all();
        });
    }
}

void AnalysisService::perform_scan(PendingScan& scan) {
    const double wall_start = wall_seconds();
    obs::Tracer inert(false);
    obs::Tracer& tracer = options_.tracer ? *options_.tracer : inert;
    auto scan_span = tracer.span("service.scan", {{"plugin", scan.request.plugin},
                                                  {"preset", scan.request.preset}});
    const obs::CounterDelta delta;
    ScanResponse response;

    const auto preset_it = presets_.find(scan.request.preset);
    const Tool& tool =
        preset_it != presets_.end() ? preset_it->second : presets_.at("phpsafe");
    const std::string preset_fp = tool.options.fingerprint();

    // Path 1: the exact (content, preset) pair was scanned before.
    bool served = false;
    if (options_.reuse_results) {
        if (auto cached = cache_.find_result(preset_fp, scan.fingerprint)) {
            response.result = *cached;
            response.from_result_cache = true;
            served = true;
        }
    }

    if (!served) {
        // Model construction, with per-file AST reuse.
        php::Project project(scan.request.plugin);
        {
            auto build_span =
                tracer.span("service.build", {{"plugin", scan.request.plugin}});
            for (const SourceFileSpec& file : scan.request.files) {
                const uint64_t hash = php::content_hash(file.text);
                if (auto cached = cache_.find_file(file.name, hash))
                    project.add_parsed(std::move(cached));
                else
                    project.add_file(file.name, file.text);
            }
            DiagnosticSink sink;
            project.parse_all(sink);
            for (const auto& parsed : project.files()) cache_.insert_file(parsed);
        }
        response.files_reused = project.build_stats().files_reused;

        std::map<std::string, uint64_t, std::less<>> file_hashes;
        for (const auto& parsed : project.files())
            if (parsed) file_hashes[parsed->source->name()] = parsed->content_hash;

        // Summary seeding: sound only for presets that pre-summarize every
        // declared function ("pixy" skips uncalled functions, so its stage
        // order — and therefore summary purity — is call-driven; it gets
        // AST and result caching only).
        const bool summary_reuse = options_.reuse_summaries &&
                                   tool.options.hermetic_summaries &&
                                   tool.options.analyze_uncalled_functions;
        std::map<std::string, const SummaryArtifact*> seeds;
        std::vector<std::shared_ptr<const SummaryArtifact>> pins;
        if (summary_reuse) {
            auto seed_span =
                tracer.span("service.seed", {{"plugin", scan.request.plugin}});
            for (const php::FunctionRef& ref : project.all_functions()) {
                if (!ref.decl) continue;
                const std::string key = ascii_lower(ref.qualified_name());
                // Duplicate declarations: the project tables keep the first
                // one, so only it may be seeded.
                if (seeds.count(key)) continue;
                const auto declaring = file_hashes.find(ref.file);
                if (declaring == file_hashes.end()) continue;
                auto artifact =
                    cache_.find_summary(preset_fp, key, declaring->second);
                if (!artifact) continue;
                if (!validate_deps(*artifact, project)) {
                    cache_.note_invalidation();
                    ++response.summaries_invalidated;
                    continue;
                }
                seeds.emplace(key, artifact.get());
                pins.push_back(std::move(artifact));
            }
            response.summaries_seeded = static_cast<int>(seeds.size());
        }

        SummaryExchange exchange;
        std::map<std::string, SummaryArtifact> capture;
        if (summary_reuse) {
            exchange.seeds = &seeds;
            exchange.capture = &capture;
        }

        Engine engine(tool.kb, tool.options);
        {
            auto run_span =
                tracer.span("service.analyze", {{"plugin", scan.request.plugin},
                                                {"tool", tool.name}});
            const double cpu_start = thread_cpu_seconds();
            response.result = engine.analyze(project, exchange);
            response.result.cpu_seconds = thread_cpu_seconds() - cpu_start;
        }

        // Admit this run's reusable summaries, pinning each kFile dep to
        // the content hash it was computed against.
        if (summary_reuse) {
            std::map<std::string, const std::string_view*> declaring_file;
            for (const php::FunctionRef& ref : project.all_functions()) {
                if (!ref.decl) continue;
                declaring_file.emplace(ascii_lower(ref.qualified_name()),
                                       &ref.file);
            }
            for (auto& [key, artifact] : capture) {
                if (!artifact.reusable) continue;
                const auto owner = declaring_file.find(key);
                if (owner == declaring_file.end()) continue;
                const auto owner_hash = file_hashes.find(*owner->second);
                if (owner_hash == file_hashes.end()) continue;
                bool hashes_ok = true;
                for (SummaryDep& dep : artifact.deps) {
                    if (dep.kind != SummaryDep::Kind::kFile) continue;
                    const auto file_hash = file_hashes.find(dep.name);
                    if (file_hash == file_hashes.end()) {
                        hashes_ok = false;
                        break;
                    }
                    dep.hash = file_hash->second;
                }
                if (!hashes_ok) continue;
                cache_.insert_summary(preset_fp, key, owner_hash->second,
                                      std::move(artifact));
            }
        }

        if (options_.reuse_results) {
            response.result.counters = delta.take();
            cache_.insert_result(preset_fp, scan.fingerprint, response.result);
        }
    }

    response.counters = delta.take();
    if (!response.from_result_cache) response.result.counters = response.counters;
    response.wall_seconds = wall_seconds() - wall_start;
    scan_span.note("result_cache", response.from_result_cache ? "hit" : "miss");
    scan_span.end();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        in_flight_.erase(scan.fingerprint);
    }
    {
        std::lock_guard<std::mutex> lock(scan.mutex);
        scan.response = std::move(response);
        scan.done = true;
    }
    scan.cv.notify_all();
}

}  // namespace phpsafe::service
