// AnalysisService: a long-lived front door for the analysis engine. Where
// the batch tools (baselines/run_tool, the evaluation driver) build a fresh
// project and engine per scan, the service keeps an AnalysisCache across
// scans and answers each request with the cheapest sound path:
//
//   1. result pool hit — the exact (plugin content, preset) was scanned
//      before: the stored AnalysisResult is returned without running
//      anything.
//   2. warm scan — unchanged files come from the file pool pre-parsed, and
//      function summaries whose dependency records still validate against
//      the new project are seeded into the engine (core/summaries.h
//      SummaryExchange); only summaries invalidated by the edit are
//      recomputed.
//   3. cold scan — everything misses; the scan also populates the cache.
//
// Every path returns byte-identical findings: the engine runs in hermetic-
// summaries mode (AnalysisOptions::hermetic_summaries), seeded summaries
// replay their recorded findings, and deduplicate() imposes a total order.
// tests/determinism_test.cpp and tests/service_test.cpp assert equality
// across cache states and worker counts.
//
// Concurrency: submit() enqueues a request and returns a ticket; a
// scheduler thread drains the queue in batches onto a WorkerPool, so
// concurrent submitters share one thread team instead of oversubscribing.
// Identical in-flight requests (same plugin content + preset) are
// deduplicated onto one scan. await() blocks until the ticket's scan is
// done; scan() is the synchronous submit+await convenience.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/analyzers.h"
#include "core/finding.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "util/worker_pool.h"

namespace phpsafe::service {

struct ServiceOptions {
    /// Worker threads for batch fan-out; <= 0 means auto (PHPSAFE_JOBS or
    /// hardware concurrency, via WorkerPool::resolve_parallelism).
    int workers = 0;
    CacheBudgets budgets;
    /// Master switches for the summary and result pools (the file pool is
    /// always on — AST reuse is unconditionally sound).
    bool reuse_summaries = true;
    bool reuse_results = true;
    /// Optional span sink (not owned; must outlive the service).
    obs::Tracer* tracer = nullptr;
};

/// One source file of a scan request.
struct SourceFileSpec {
    std::string name;
    std::string text;
};

struct ScanRequest {
    std::string plugin;
    /// Analysis preset: "phpsafe" (default), "rips" or "pixy". The preset
    /// picks the knowledge base and engine options; all presets run with
    /// hermetic_summaries on. Summary seeding applies only to presets that
    /// analyze uncalled functions ("pixy" gets AST caching only).
    std::string preset = "phpsafe";
    std::vector<SourceFileSpec> files;
};

struct ScanResponse {
    AnalysisResult result;
    /// obs counter delta of this scan (zero when served from the result
    /// pool of a previous scan... the result hit itself is counted).
    obs::Counters counters;
    bool from_result_cache = false;
    /// True when this request coalesced onto an identical in-flight scan.
    bool deduplicated = false;
    int files_reused = 0;          ///< parsed files injected from the cache
    int summaries_seeded = 0;      ///< summaries installed without analysis
    int summaries_invalidated = 0; ///< cache hits rejected by dep validation
    double wall_seconds = 0;
};

class AnalysisService {
public:
    explicit AnalysisService(ServiceOptions options = {});
    ~AnalysisService();

    AnalysisService(const AnalysisService&) = delete;
    AnalysisService& operator=(const AnalysisService&) = delete;

    class Ticket {
    public:
        bool valid() const noexcept { return scan_ != nullptr; }

    private:
        friend class AnalysisService;
        std::shared_ptr<struct PendingScan> scan_;
        bool coalesced = false;
    };

    /// Enqueues a scan. Identical requests (same plugin name, preset and
    /// file contents) already queued or running return a ticket onto the
    /// same scan with `deduplicated` set in the eventual response.
    Ticket submit(ScanRequest request);

    /// Blocks until the ticket's scan completes and returns its response.
    ScanResponse await(const Ticket& ticket);

    /// submit() + await().
    ScanResponse scan(ScanRequest request);

    /// Test hook: while paused, the scheduler queues but does not dispatch —
    /// lets tests submit identical requests that provably coalesce. Never
    /// await() a ticket submitted under pause() before calling resume().
    void pause();
    void resume();

    CacheStats cache_stats() const { return cache_.stats(); }
    void clear_cache() { cache_.clear(); }

    /// Stable fingerprint of a request's analysis input (plugin name,
    /// preset, file names and contents) — the result-pool / dedup key.
    static uint64_t request_fingerprint(const ScanRequest& request);

private:
    void scheduler_loop();
    void perform_scan(PendingScan& scan);

    ServiceOptions options_;
    AnalysisCache cache_;
    /// Preset name → fully configured tool, built once at construction.
    std::map<std::string, Tool> presets_;

    std::unique_ptr<WorkerPool> pool_;
    std::thread scheduler_;
    mutable std::mutex mutex_;
    std::condition_variable queue_cv_;
    std::deque<std::shared_ptr<PendingScan>> queue_;
    /// fingerprint → queued or running scan (for in-flight dedup).
    std::map<uint64_t, std::weak_ptr<PendingScan>> in_flight_;
    bool paused_ = false;
    bool stop_ = false;
};

}  // namespace phpsafe::service
