// AnalysisService: a long-lived front door for the analysis engine. Where
// the batch tools (baselines/run_tool, the evaluation driver) build a fresh
// project and engine per scan, the service keeps an AnalysisCache across
// scans and answers each request with the cheapest sound path:
//
//   1. result pool hit — the exact (plugin content, preset) was scanned
//      before: the stored AnalysisResult is returned without running
//      anything.
//   2. warm scan — unchanged files come from the file pool pre-parsed, and
//      function summaries whose dependency records still validate against
//      the new project are seeded into the engine (core/summaries.h
//      SummaryExchange); only summaries invalidated by the edit are
//      recomputed.
//   3. cold scan — everything misses; the scan also populates the cache.
//
// Every path returns byte-identical findings: the engine runs in hermetic-
// summaries mode (AnalysisOptions::hermetic_summaries), seeded summaries
// replay their recorded findings, and deduplicate() imposes a total order.
// tests/determinism_test.cpp and tests/service_test.cpp assert equality
// across cache states, worker counts and request interleavings.
//
// Concurrency: submit() enqueues a request and returns a ticket; a
// TaskTeam of worker threads drains the queue continuously, highest
// priority first — there is no batch barrier, so a slow scan never delays
// the dispatch of an unrelated later one. Identical in-flight requests
// (same plugin content + preset) are deduplicated onto one scan; the
// coalesced request keeps the first submitter's priority. A queued (not
// yet started) scan can be cancel()ed; its awaiters get a response with
// `cancelled` set and no result. When `max_queue_depth` is configured,
// submit() applies admission control: requests beyond the depth limit are
// rejected immediately (`rejected` in the response) instead of growing the
// queue without bound, and crossing the pressure watermark sheds cache
// bytes — whole-result entries first, parsed files last (AnalysisCache::
// shed) — so a request wave doesn't meet a memory-squeezed engine.
// await() blocks until the ticket's scan is done; scan() is the
// synchronous submit+await convenience.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "core/finding.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "util/worker_pool.h"
#include "validate/validate.h"

namespace phpsafe::service {

struct ServiceOptions {
    /// Worker threads for scan dispatch; <= 0 means auto (PHPSAFE_JOBS or
    /// hardware concurrency, via WorkerPool::resolve_parallelism).
    int workers = 0;
    CacheBudgets budgets;
    /// Master switches for the summary and result pools (the file pool is
    /// always on — AST reuse is unconditionally sound).
    bool reuse_summaries = true;
    bool reuse_results = true;
    /// Admission control: submit() rejects once this many scans are queued
    /// and not yet started. 0 = unbounded (library default; the NDJSON
    /// server configures a bound).
    size_t max_queue_depth = 0;
    /// Queue depth at which cache pressure shedding kicks in; 0 derives
    /// half of max_queue_depth (so it stays off when that is unbounded).
    size_t pressure_queue_depth = 0;
    /// Optional span sink (not owned; must outlive the service).
    obs::Tracer* tracer = nullptr;
};

/// One source file of a scan request. Callers that already know the file
/// (the watch sessions of service/watch.h) can skip re-hashing and even
/// re-parsing:
///   - `known_hash` non-zero pre-computes content_hash(text) — the scan
///     trusts it instead of hashing the text again,
///   - `parsed` non-null pins an immutable AST that is injected directly
///     (php::Project::add_parsed), so neither text nor hash are needed and
///     the per-file cache probe is skipped entirely.
/// Either way the request fingerprint is computed from the per-file
/// content hashes, so a pinned, a pre-hashed and a plain-text spec of the
/// same content are the same request (they coalesce and share result-pool
/// entries).
struct SourceFileSpec {
    SourceFileSpec() = default;
    SourceFileSpec(std::string name, std::string text)
        : name(std::move(name)), text(std::move(text)) {}

    std::string name;
    std::string text;
    uint64_t known_hash = 0;
    std::shared_ptr<const php::ParsedFile> parsed;
};

struct ScanRequest {
    std::string plugin;
    /// Analysis preset: "phpsafe" (default), "rips" or "pixy". The preset
    /// picks the knowledge base and engine options; all presets run with
    /// hermetic_summaries on. Summary seeding applies only to presets that
    /// analyze uncalled functions ("pixy" gets AST caching only).
    std::string preset = "phpsafe";
    /// Taint-propagation backend override: "" keeps the preset's backend
    /// (the process default), otherwise "ast" | "ir" | "differential" (see
    /// EngineBackend). Part of the request fingerprint — the backend is an
    /// analysis-semantics key, so different backends never coalesce and
    /// never share result-pool entries. An unknown value yields a scan
    /// response carrying a kFatal diagnostic, not a crash.
    std::string backend;
    /// Scheduling priority: higher runs sooner; never affects results or
    /// the request fingerprint (identical content at different priorities
    /// still coalesces).
    int priority = 0;
    std::vector<SourceFileSpec> files;
};

struct ScanResponse {
    AnalysisResult result;
    /// obs counter delta of this scan (zero when served from the result
    /// pool of a previous scan... the result hit itself is counted).
    obs::Counters counters;
    bool from_result_cache = false;
    /// True when this request coalesced onto an identical in-flight scan.
    bool deduplicated = false;
    /// True when the scan was cancelled before it started (no result).
    bool cancelled = false;
    /// True when admission control refused the request (no result).
    bool rejected = false;
    int files_reused = 0;          ///< parsed files injected from the cache
    int summaries_seeded = 0;      ///< summaries installed without analysis
    int summaries_invalidated = 0; ///< cache hits rejected by dep validation
    double wall_seconds = 0;
    /// 1-based order in which a worker picked this scan off the queue
    /// (0 for rejected/cancelled-before-dispatch responses) — observable
    /// scheduling, used by the priority tests.
    uint64_t dispatch_seq = 0;
};

/// Answer to one validate request: the underlying scan (cache-aware like
/// any other scan), the validation report, and the tiered copy of the
/// result with per-finding confidence stamped in.
struct ValidateResponse {
    ScanResponse scan;
    /// scan.result with Finding::confidence applied from the report.
    AnalysisResult tiered;
    validate::ValidationReport report;
    /// True when the whole tiered response was replayed from the
    /// validate cache (same request fingerprint validated before).
    bool from_validate_cache = false;
    double wall_seconds = 0;
};

class AnalysisService {
public:
    explicit AnalysisService(ServiceOptions options = {});
    ~AnalysisService();

    AnalysisService(const AnalysisService&) = delete;
    AnalysisService& operator=(const AnalysisService&) = delete;

    class Ticket {
    public:
        bool valid() const noexcept { return scan_ != nullptr; }

    private:
        friend class AnalysisService;
        std::shared_ptr<struct PendingScan> scan_;
        bool coalesced = false;
    };

    /// Enqueues a scan. Identical requests (same plugin name, preset and
    /// file contents) already queued or running return a ticket onto the
    /// same scan with `deduplicated` set in the eventual response.
    Ticket submit(ScanRequest request);

    /// Blocks until the ticket's scan completes and returns its response.
    ScanResponse await(const Ticket& ticket);

    /// submit() + await().
    ScanResponse scan(ScanRequest request);

    /// Scan (through the normal queue and caches) + batch-validate every
    /// finding through the exploit-confirmation pipeline, with verified
    /// quickfixes. Responses are cached by request fingerprint like scan
    /// results: an identical request replays the stored tiered response
    /// with `from_validate_cache` set.
    ValidateResponse validate(const ScanRequest& request);

    /// Cancels a scan that has not started yet: its awaiters receive a
    /// response with `cancelled` set, and the fingerprint is released so a
    /// later identical submit runs fresh. Returns false when the scan
    /// already started (or finished) — a running scan is never torn down.
    /// Cancelling affects every ticket coalesced onto the scan.
    bool cancel(const Ticket& ticket);

    /// Scans queued and not yet picked up by a worker.
    size_t queue_depth() const;

    /// Test hook: while paused, workers finish their current scan and then
    /// idle, so tests can build a provable backlog (coalescing, priority
    /// order, cancellation). Never await() a ticket submitted under
    /// pause() before calling resume().
    void pause();
    void resume();

    CacheStats cache_stats() const { return cache_.stats(); }
    /// Drops every cache pool, including stored validate responses.
    void clear_cache();
    AnalysisCache& cache() { return cache_; }

    /// Stable fingerprint of a request's analysis input (plugin name,
    /// preset, backend, file names and per-file content hashes) — the
    /// result-pool / dedup key. Hashing content hashes rather than full
    /// texts keeps the fingerprint identical across the three
    /// SourceFileSpec forms (text, pre-hashed, pinned AST) and makes
    /// fingerprinting O(names) for watch-mode requests. Scheduling fields
    /// (priority) are excluded on purpose.
    static uint64_t request_fingerprint(const ScanRequest& request);

    /// The content hash a spec contributes to the fingerprint: the pinned
    /// AST's hash, the pre-computed hash, or a fresh hash of the text.
    static uint64_t spec_content_hash(const SourceFileSpec& spec);

private:
    void run_scan(const std::shared_ptr<PendingScan>& scan);
    ScanResponse perform_scan(PendingScan& scan);
    void finish(const std::shared_ptr<PendingScan>& scan,
                ScanResponse response);
    void release_fingerprint(const std::shared_ptr<PendingScan>& scan);
    void maybe_shed();

    ServiceOptions options_;
    AnalysisCache cache_;
    /// Preset name → fully configured tool, built once at construction.
    std::map<std::string, Tool> presets_;

    /// Validate-response cache: request fingerprint → stored tiered
    /// response, FIFO-capped. Guarded by its own mutex (validate() runs
    /// outside the scan queue).
    mutable std::mutex validate_mutex_;
    std::map<uint64_t, std::shared_ptr<const ValidateResponse>>
        validate_cache_;
    std::vector<uint64_t> validate_order_;

    mutable std::mutex mutex_;
    /// fingerprint → queued or running scan (for in-flight dedup).
    std::map<uint64_t, std::weak_ptr<PendingScan>> in_flight_;
    std::atomic<uint64_t> dispatch_counter_{0};
    /// Rising-edge latch for pressure shedding: re-arms when the queue
    /// drains below the watermark, so a sustained deep queue sheds once.
    std::atomic<bool> shed_armed_{true};
    /// Declared last: destroyed first, so worker threads have finished
    /// (running every queued scan to completion) before any state above
    /// goes away.
    std::unique_ptr<TaskTeam> team_;
};

}  // namespace phpsafe::service
