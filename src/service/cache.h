// Content-addressed cache for the long-lived analysis service. Three pools,
// each with its own LRU byte budget:
//
//   - file pool: lexed+parsed files keyed by (file name, fnv1a64 of the
//     text). A hit injects the shared immutable AST into the next project
//     via php::Project::add_parsed(), skipping lexing and parsing — the two
//     stages that dominate model-construction CPU (see BENCH_scale.json).
//   - summary pool: reusable SummaryArtifacts (core/summaries.h) keyed by
//     (analysis-preset fingerprint, lowercased qualified function name,
//     content hash of the declaring file). Before an artifact seeds a new
//     run, every recorded dependency is revalidated against the new project
//     (validate_deps); a changed file therefore invalidates its dependents'
//     summaries through the include/call graph while their ASTs — keyed by
//     content alone — stay usable.
//   - result pool: whole AnalysisResults keyed by (preset fingerprint,
//     project fingerprint). A hit answers a scan without touching the
//     engine at all.
//
// Concurrency model: each pool is split into up to CacheBudgets::shards
// independently-locked shards, selected by hashing the entry key, so a
// server's worker threads only contend when they touch the same slice of
// the key space. Each shard owns an equal slice of the pool's byte budget
// and runs strict LRU within itself: inserting over the shard budget
// evicts that shard's least recently used entries until it fits. A pool
// whose whole budget is smaller than 64 KiB per shard collapses to fewer
// shards (floor one), so tiny test budgets keep the exact single-LRU
// semantics the eviction tests pin down. Byte sizes are estimates
// (approx_bytes) — good enough to bound memory, not an allocator audit.
//
// Statistics are kept in relaxed atomics (hit/miss/eviction totals at the
// cache level, occupancy gauges per shard), so stats() assembles its
// snapshot without taking a single shard lock — a monitoring thread never
// stalls the scan path. Shard lock acquisitions bump the obs::Counters
// cache_shard_probes / cache_shard_contention pair on the calling thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/finding.h"
#include "core/summaries.h"
#include "php/project.h"

namespace phpsafe::service {

/// Per-pool LRU byte budgets. Zero disables a pool entirely (every lookup
/// misses, nothing is admitted) — used by tests to exercise eviction.
struct CacheBudgets {
    uint64_t file_bytes = 64ull << 20;
    uint64_t summary_bytes = 64ull << 20;
    uint64_t result_bytes = 16ull << 20;
    /// Upper bound on lock shards per pool. Each shard gets an equal slice
    /// of the pool budget, but never less than 64 KiB — pools with small
    /// budgets use fewer shards rather than uselessly tiny ones.
    int shards = 8;
};

/// Occupancy of one lock shard (aggregated across the three pools).
struct CacheShardStats {
    uint64_t entries = 0;
    uint64_t bytes = 0;
};

/// Point-in-time cache statistics (also mirrored into obs::Counters).
struct CacheStats {
    uint64_t file_entries = 0;
    uint64_t summary_entries = 0;
    uint64_t result_entries = 0;
    uint64_t bytes_resident = 0;
    uint64_t file_hits = 0;
    uint64_t file_misses = 0;
    uint64_t summary_hits = 0;
    uint64_t summary_misses = 0;
    uint64_t result_hits = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    /// Entries dropped by shed() — admission-control pressure relief.
    uint64_t shed_entries = 0;
    /// Per-shard occupancy, indexed by shard; sized by the file pool's
    /// shard count (the widest pool).
    std::vector<CacheShardStats> shards;
};

/// Rough resident-size estimates used for LRU byte accounting.
uint64_t approx_bytes(const php::ParsedFile& file);
uint64_t approx_bytes(const Finding& finding);
uint64_t approx_bytes(const SummaryArtifact& artifact);
uint64_t approx_bytes(const AnalysisResult& result);

/// True when every dependency recorded by `artifact` still holds in
/// `project`: kFile deps re-hash, resolution deps re-resolve to the same
/// file. A false result means seeding the artifact would be unsound.
bool validate_deps(const SummaryArtifact& artifact, const php::Project& project);

/// Memoized validate_deps for one scan request. The free function above
/// re-walks the project tables per dependency per summary — with a linear
/// file_named() scan per kFile record, that is O(summaries × deps × files)
/// on every warm hit. The memo front-loads one file→hash map (first
/// declaration wins, matching file_named) and resolves each distinct
/// (kind, name) against the project exactly once per request; every later
/// summary whose dependency list mentions the same name is answered from
/// the memo. Validation decisions are identical to the free function on
/// every input — only the lookup count changes, which the
/// cache_dep_walk_* obs counters record (cache_dep_walks lists walked,
/// cache_dep_walk_steps project lookups performed, cache_dep_walk_memo_hits
/// records answered without one). Not thread-safe; one memo per request.
class DepCheckMemo {
public:
    explicit DepCheckMemo(const php::Project& project);

    /// validate_deps(artifact, project) with memoized lookups.
    bool validate(const SummaryArtifact& artifact);

private:
    const php::Project& project_;
    std::map<std::string, uint64_t, std::less<>> file_hashes_;
    /// (dep kind, name) → the file the name currently resolves to; ""
    /// when unresolved, so "still unresolved" validates like the free
    /// function.
    std::map<std::pair<int, std::string>, std::string> resolutions_;
};

class AnalysisCache {
public:
    explicit AnalysisCache(CacheBudgets budgets = {});

    // -- file pool -----------------------------------------------------------
    /// Returns the cached parse of (name, content_hash), or null on miss.
    std::shared_ptr<const php::ParsedFile> find_file(std::string_view name,
                                                     uint64_t content_hash);
    void insert_file(const std::shared_ptr<const php::ParsedFile>& file);

    // -- summary pool --------------------------------------------------------
    /// `preset` is AnalysisOptions::fingerprint(); `declaring_hash` the
    /// content hash of the file declaring the function. Returns a shared
    /// handle so a concurrent eviction cannot free an artifact mid-scan.
    std::shared_ptr<const SummaryArtifact> find_summary(
        std::string_view preset, std::string_view qualified_lower,
        uint64_t declaring_hash);
    void insert_summary(std::string_view preset, std::string_view qualified_lower,
                        uint64_t declaring_hash, SummaryArtifact artifact);

    // -- result pool ---------------------------------------------------------
    std::shared_ptr<const AnalysisResult> find_result(std::string_view preset,
                                                      uint64_t project_fingerprint);
    void insert_result(std::string_view preset, uint64_t project_fingerprint,
                       const AnalysisResult& result);

    /// Bumps the invalidation counters (a cached summary failed dependency
    /// validation against a new project).
    void note_invalidation();

    /// Pressure relief for admission control: releases at least
    /// `target_bytes` of resident payload (or everything, whichever is
    /// smaller), shedding whole-result entries first, then summaries, and
    /// parsed files only as a last resort — results are pure cost savers
    /// while a warm file/summary pool is what keeps the queue draining
    /// fast. Returns the bytes actually released.
    uint64_t shed(uint64_t target_bytes);

    CacheStats stats() const;
    void clear();

    /// Lock shards per pool actually in use (after the budget floor):
    /// {file, summary, result}.
    int file_shards() const { return static_cast<int>(files_.shards.size()); }
    int summary_shards() const {
        return static_cast<int>(summaries_.shards.size());
    }
    int result_shards() const { return static_cast<int>(results_.shards.size()); }

private:
    /// One LRU entry: key → {payload, bytes}; lru front = most recent.
    struct Entry {
        std::shared_ptr<const void> payload;
        uint64_t bytes = 0;
        std::list<std::string>::iterator lru_pos;
    };
    /// One independently-locked slice of a pool.
    struct Shard {
        mutable std::mutex mutex;
        std::map<std::string, Entry> entries;
        std::list<std::string> lru;
        uint64_t bytes = 0;       ///< guarded by mutex
        uint64_t budget = 0;      ///< immutable after construction
        /// Lock-free mirrors of entries.size() / bytes for stats().
        std::atomic<uint64_t> entries_gauge{0};
        std::atomic<uint64_t> bytes_gauge{0};
    };
    /// A pool = its shards (unique_ptr: Shard is neither movable nor
    /// copyable because of the mutex and atomics).
    struct Pool {
        std::vector<std::unique_ptr<Shard>> shards;
    };

    static void init_pool(Pool& pool, uint64_t budget, int shards);
    Shard& shard_for(Pool& pool, std::string_view key);
    /// find/insert run under the shard lock taken by the caller.
    std::shared_ptr<const void> find(Shard& shard, const std::string& key);
    void insert(Shard& shard, const std::string& key,
                std::shared_ptr<const void> payload, uint64_t bytes);
    void evict_over_budget(Shard& shard);
    /// Evicts `shard`'s LRU tail until `freed` grows by up to `target`.
    uint64_t shed_from(Shard& shard, uint64_t target);

    Pool files_;
    Pool summaries_;
    Pool results_;

    // Cache-level statistics: relaxed atomics so stats() never locks.
    std::atomic<uint64_t> bytes_resident_{0};
    std::atomic<uint64_t> file_hits_{0};
    std::atomic<uint64_t> file_misses_{0};
    std::atomic<uint64_t> summary_hits_{0};
    std::atomic<uint64_t> summary_misses_{0};
    std::atomic<uint64_t> result_hits_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> invalidations_{0};
    std::atomic<uint64_t> shed_entries_{0};
};

}  // namespace phpsafe::service
