// Content-addressed cache for the long-lived analysis service. Three pools,
// each with its own LRU byte budget:
//
//   - file pool: lexed+parsed files keyed by (file name, fnv1a64 of the
//     text). A hit injects the shared immutable AST into the next project
//     via php::Project::add_parsed(), skipping lexing and parsing — the two
//     stages that dominate model-construction CPU (see BENCH_scale.json).
//   - summary pool: reusable SummaryArtifacts (core/summaries.h) keyed by
//     (analysis-preset fingerprint, lowercased qualified function name,
//     content hash of the declaring file). Before an artifact seeds a new
//     run, every recorded dependency is revalidated against the new project
//     (validate_deps); a changed file therefore invalidates its dependents'
//     summaries through the include/call graph while their ASTs — keyed by
//     content alone — stay usable.
//   - result pool: whole AnalysisResults keyed by (preset fingerprint,
//     project fingerprint). A hit answers a scan without touching the
//     engine at all.
//
// Eviction is strict LRU per pool: inserting over budget evicts the least
// recently used entries until the pool fits. Byte sizes are estimates
// (approx_bytes) — good enough to bound memory, not an allocator audit.
// All pools bump the obs::Counters cache_* group on the calling thread and
// keep an internal CacheStats snapshot under the same mutex that guards the
// pools, so the cache is safe to share between concurrent scans.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/finding.h"
#include "core/summaries.h"
#include "php/project.h"

namespace phpsafe::service {

/// Per-pool LRU byte budgets. Zero disables a pool entirely (every lookup
/// misses, nothing is admitted) — used by tests to exercise eviction.
struct CacheBudgets {
    uint64_t file_bytes = 64ull << 20;
    uint64_t summary_bytes = 64ull << 20;
    uint64_t result_bytes = 16ull << 20;
};

/// Point-in-time cache statistics (also mirrored into obs::Counters).
struct CacheStats {
    uint64_t file_entries = 0;
    uint64_t summary_entries = 0;
    uint64_t result_entries = 0;
    uint64_t bytes_resident = 0;
    uint64_t file_hits = 0;
    uint64_t file_misses = 0;
    uint64_t summary_hits = 0;
    uint64_t summary_misses = 0;
    uint64_t result_hits = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
};

/// Rough resident-size estimates used for LRU byte accounting.
uint64_t approx_bytes(const php::ParsedFile& file);
uint64_t approx_bytes(const Finding& finding);
uint64_t approx_bytes(const SummaryArtifact& artifact);
uint64_t approx_bytes(const AnalysisResult& result);

/// True when every dependency recorded by `artifact` still holds in
/// `project`: kFile deps re-hash, resolution deps re-resolve to the same
/// file. A false result means seeding the artifact would be unsound.
bool validate_deps(const SummaryArtifact& artifact, const php::Project& project);

class AnalysisCache {
public:
    explicit AnalysisCache(CacheBudgets budgets = {});

    // -- file pool -----------------------------------------------------------
    /// Returns the cached parse of (name, content_hash), or null on miss.
    std::shared_ptr<const php::ParsedFile> find_file(std::string_view name,
                                                     uint64_t content_hash);
    void insert_file(const std::shared_ptr<const php::ParsedFile>& file);

    // -- summary pool --------------------------------------------------------
    /// `preset` is AnalysisOptions::fingerprint(); `declaring_hash` the
    /// content hash of the file declaring the function. Returns a shared
    /// handle so a concurrent eviction cannot free an artifact mid-scan.
    std::shared_ptr<const SummaryArtifact> find_summary(
        std::string_view preset, std::string_view qualified_lower,
        uint64_t declaring_hash);
    void insert_summary(std::string_view preset, std::string_view qualified_lower,
                        uint64_t declaring_hash, SummaryArtifact artifact);

    // -- result pool ---------------------------------------------------------
    std::shared_ptr<const AnalysisResult> find_result(std::string_view preset,
                                                      uint64_t project_fingerprint);
    void insert_result(std::string_view preset, uint64_t project_fingerprint,
                       const AnalysisResult& result);

    /// Bumps the invalidation counters (a cached summary failed dependency
    /// validation against a new project).
    void note_invalidation();

    CacheStats stats() const;
    void clear();

private:
    /// One LRU pool: key → {payload, bytes}; lru_ front = most recent.
    struct Entry {
        std::shared_ptr<const void> payload;
        uint64_t bytes = 0;
        std::list<std::string>::iterator lru_pos;
    };
    struct Pool {
        std::map<std::string, Entry> entries;
        std::list<std::string> lru;
        uint64_t bytes = 0;
        uint64_t budget = 0;
    };

    std::shared_ptr<const void> find(Pool& pool, const std::string& key);
    void insert(Pool& pool, const std::string& key,
                std::shared_ptr<const void> payload, uint64_t bytes);
    void evict_over_budget(Pool& pool);

    mutable std::mutex mutex_;
    Pool files_;
    Pool summaries_;
    Pool results_;
    CacheStats stats_;
};

}  // namespace phpsafe::service
