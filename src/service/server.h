// AnalysisServer: the multi-client front-end over one shared
// AnalysisService. Where serve_ndjson (service/ndjson.h) answers one
// request at a time on one stream pair, a server session is *pipelined*:
// the calling thread reads and submits requests as fast as the client
// sends them, and a per-session writer thread emits the responses in
// request order as the scans complete. Clients therefore overlap — all
// sessions share the service's TaskTeam, its priority queue, and the
// sharded AnalysisCache — while each client still observes the simple
// serial protocol: response N on its stream answers request N.
//
// On top of the shared wire format the pipelined session adds:
//   - priorities: a scan's "priority" field (plus the session's base
//     priority) orders dispatch across all clients,
//   - supersede slots: a scan carrying "slot":"name" cancels the session's
//     previous still-queued scan in that slot — the editor pattern, where
//     only the latest state of a buffer is worth scanning. The superseded
//     request is still answered (in order) with {"ok":false,
//     "cancelled":true},
//   - admission control: when the service's queue depth limit is reached,
//     submissions are answered {"ok":false,"rejected":true} immediately
//     and cache pressure shedding kicks in (see ServiceOptions),
//   - bounded request memory: lines beyond max_line_bytes are answered
//     with an error without ever being buffered whole.
//
// Sessions that write to the SAME sink (many FIFO clients multiplexed
// onto one log, tests driving two sessions into one string stream) hand
// their output through a shared SyncLineWriter, which makes each response
// line atomic — interleaving happens only at line granularity.
//
// Responses stay byte-identical to a serial single-client replay of the
// same requests: scheduling (priorities, coalescing, shard locking) moves
// *when* a scan runs, never what it reports. tests/server_test.cpp and the
// fuzz concurrency oracle hold that invariant.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>

#include "service/ndjson.h"
#include "service/service.h"

namespace phpsafe::service {

struct ServerOptions {
    /// Configuration for the owned service (ignored when a shared service
    /// is injected via the second constructor).
    ServiceOptions service;
    /// Zero run-varying response fields (golden transcripts).
    bool deterministic = false;
    /// Longest accepted request line; 0 = unbounded.
    size_t max_line_bytes = 16u << 20;
};

/// Serializes whole-line writes from concurrent sessions onto one stream.
/// Each write_line appends the newline and flushes under the lock, so two
/// sessions sharing a sink can interleave lines but never bytes.
class SyncLineWriter {
public:
    explicit SyncLineWriter(std::ostream& out) : out_(out) {}

    SyncLineWriter(const SyncLineWriter&) = delete;
    SyncLineWriter& operator=(const SyncLineWriter&) = delete;

    void write_line(const std::string& line);

private:
    std::ostream& out_;
    std::mutex mutex_;
};

class AnalysisServer {
public:
    /// Owns its service, configured from `options.service`.
    explicit AnalysisServer(ServerOptions options = {});
    /// Shares an existing service (caller keeps ownership; it must outlive
    /// the server). Caches and the scheduler queue are common property.
    AnalysisServer(AnalysisService& service, ServerOptions options);
    ~AnalysisServer();

    AnalysisServer(const AnalysisServer&) = delete;
    AnalysisServer& operator=(const AnalysisServer&) = delete;

    AnalysisService& service() noexcept { return *service_; }

    /// Runs one client session to EOF or quit (blocking — dedicate a
    /// thread per client). Requests are read and submitted eagerly; the
    /// session's writer thread emits responses in request order to `out`.
    /// `base_priority` is added to each request's own priority, letting a
    /// front-end rank whole clients. Returns requests processed.
    int serve_session(std::istream& in, SyncLineWriter& out,
                      int base_priority = 0);

    /// Convenience for a session with an unshared sink.
    int serve_session(std::istream& in, std::ostream& out,
                      int base_priority = 0);

private:
    ServerOptions options_;
    std::unique_ptr<AnalysisService> owned_service_;
    AnalysisService* service_;
};

}  // namespace phpsafe::service
