#include "service/watch.h"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/counters.h"
#include "report/export.h"
#include "util/diagnostics.h"

namespace phpsafe::service {

namespace {

/// Parses one file outside any project — the fallback when the service's
/// file pool evicted a parse between the scan and the state refresh.
std::shared_ptr<const php::ParsedFile> parse_standalone(
    const std::string& name, const std::string& text) {
    php::Project project("watch-refresh");
    project.add_file(name, text);
    DiagnosticSink sink;
    project.parse_all(sink);
    return project.files().empty() ? nullptr : project.files().front();
}

}  // namespace

ScanRequest WatchSession::assemble_request() const {
    ScanRequest request = base_;
    request.files.reserve(files_.size());
    for (const auto& [name, state] : files_) {
        SourceFileSpec spec;
        spec.name = name;
        if (state.parsed) {
            spec.parsed = state.parsed;
        } else {
            spec.text = state.text;
            spec.known_hash = state.hash;
        }
        request.files.push_back(std::move(spec));
    }
    return request;
}

void WatchSession::refresh_state() {
    bool relink = !graph_ || graph_stale_;
    for (auto& [name, state] : files_) {
        if (!state.parsed) {
            state.parsed = service_.cache().find_file(name, state.hash);
            if (!state.parsed && !state.text.empty())
                state.parsed = parse_standalone(name, state.text);
            state.dirty = true;
        }
        if (state.dirty && state.parsed) {
            graph::FileFacts fresh = graph::extract_file_facts(*state.parsed);
            if (!relink && !graph::structure_equals(fresh, state.facts))
                relink = true;
            state.facts = std::move(fresh);
            state.dirty = false;
            state.text.clear();  // the pinned AST retains the source
        }
    }
    if (relink) {
        std::vector<graph::FileFacts> facts;
        facts.reserve(files_.size());
        for (const auto& [name, state] : files_) facts.push_back(state.facts);
        graph_ = std::make_unique<graph::ProjectGraph>(
            graph::ProjectGraph::build(std::move(facts)));
        ++obs::tls().graph_builds;
    } else {
        // Structure-preserving edit (comments, whitespace, bodies): every
        // node and edge stays valid, only content hashes moved.
        for (const auto& [name, state] : files_) {
            const auto id = graph_->file_id(name);
            if (id != graph::ProjectGraph::kNoFile)
                graph_->set_file_hash(id, state.facts.content_hash);
        }
    }
    graph_stale_ = false;
}

ScanResponse WatchSession::open(ScanRequest request) {
    files_.clear();
    graph_.reset();
    baseline_.clear();
    active_ = false;
    graph_stale_ = true;

    base_ = request;
    base_.files.clear();
    for (SourceFileSpec& spec : request.files) {
        FileState state;
        state.hash = AnalysisService::spec_content_hash(spec);
        state.parsed = std::move(spec.parsed);
        state.text = std::move(spec.text);
        state.dirty = true;
        files_.insert_or_assign(std::move(spec.name), std::move(state));
    }

    ScanResponse response = service_.scan(assemble_request());
    if (response.rejected || response.cancelled) {
        files_.clear();
        return response;
    }
    baseline_ = response.result.findings;
    refresh_state();
    active_ = true;
    return response;
}

WatchDelta WatchSession::edit(const WatchEditBatch& batch) {
    WatchDelta delta;
    if (!active_) {
        delta.error = "no watch session open (send {\"op\":\"watch\"} first)";
        return delta;
    }
    if (batch.upserts.empty() && batch.removals.empty()) {
        delta.error = "edit changes no files";
        return delta;
    }
    std::set<std::string> touched;
    for (const SourceFileSpec& spec : batch.upserts) {
        if (spec.name.empty()) {
            delta.error = "edit file needs a non-empty name";
            return delta;
        }
        if (!touched.insert(spec.name).second) {
            delta.error = "edit touches \"" + spec.name + "\" twice";
            return delta;
        }
    }
    for (const std::string& name : batch.removals) {
        if (!touched.insert(name).second) {
            delta.error = "edit touches \"" + name + "\" twice";
            return delta;
        }
        if (!files_.count(name)) {
            delta.error = "cannot remove unknown file \"" + name + "\"";
            return delta;
        }
    }

    // The invalidated cone, on the pre-edit graph: everything that could
    // observe the changed files. Advisory — see the header.
    std::vector<graph::ProjectGraph::FileId> changed_ids;
    int new_files = 0;
    for (const std::string& name : touched) {
        const auto id = graph_->file_id(name);
        if (id == graph::ProjectGraph::kNoFile)
            ++new_files;  // brand-new file: in the cone by itself
        else
            changed_ids.push_back(id);
    }
    const std::vector<graph::ProjectGraph::FileId> cone =
        graph_->dependency_cone(changed_ids);
    delta.changed_files = static_cast<int>(touched.size());
    delta.cone_files = static_cast<int>(cone.size()) + new_files;
    for (const auto id : cone)
        delta.cone_functions +=
            static_cast<int>(graph_->functions_of(id).size());
    obs::tls().watch_edits += static_cast<uint64_t>(touched.size());
    obs::tls().watch_cone_files += static_cast<uint64_t>(delta.cone_files);

    // Apply the batch.
    for (const SourceFileSpec& spec : batch.upserts) {
        FileState state;
        state.hash = AnalysisService::spec_content_hash(spec);
        state.parsed = spec.parsed;
        state.text = spec.text;
        state.dirty = true;
        files_.insert_or_assign(spec.name, std::move(state));
    }
    for (const std::string& name : batch.removals) files_.erase(name);
    if (new_files > 0 || !batch.removals.empty()) graph_stale_ = true;

    // Full re-scan: unchanged files ride as pinned ASTs, so the request
    // costs O(edit) to assemble and the engine reuses every out-of-cone
    // summary. Identical findings to a cold scan of the same content.
    delta.response = service_.scan(assemble_request());
    if (delta.response.rejected || delta.response.cancelled) {
        delta.error = delta.response.rejected
                          ? "re-scan rejected by admission control"
                          : "re-scan cancelled";
        // Without a fresh baseline later deltas would be wrong; force the
        // client to re-open.
        active_ = false;
        baseline_.clear();
        return delta;
    }

    // Delta findings: canonical-serialization multiset diff, both sides in
    // their result order. Byte-identical to diffing two full cold scans.
    const std::vector<Finding>& now = delta.response.result.findings;
    std::multiset<std::string> before_keys;
    for (const Finding& f : baseline_) before_keys.insert(finding_json(f));
    std::multiset<std::string> after_keys;
    for (const Finding& f : now) after_keys.insert(finding_json(f));
    for (const Finding& f : now) {
        const auto it = before_keys.find(finding_json(f));
        if (it != before_keys.end())
            before_keys.erase(it);
        else
            delta.added.push_back(f);
    }
    for (const Finding& f : baseline_) {
        const auto it = after_keys.find(finding_json(f));
        if (it != after_keys.end())
            after_keys.erase(it);
        else
            delta.removed.push_back(f);
    }

    baseline_ = now;
    refresh_state();
    delta.ok = true;
    return delta;
}

graph::ProjectGraph build_request_graph(AnalysisService& service,
                                        const ScanRequest& request) {
    php::Project project(request.plugin);
    for (const SourceFileSpec& spec : request.files) {
        if (spec.parsed) {
            project.add_parsed(spec.parsed);
            continue;
        }
        const uint64_t hash = AnalysisService::spec_content_hash(spec);
        if (auto cached = service.cache().find_file(spec.name, hash))
            project.add_parsed(std::move(cached));
        else
            project.add_file(spec.name, spec.text);
    }
    DiagnosticSink sink;
    project.parse_all(sink);
    for (const auto& parsed : project.files()) service.cache().insert_file(parsed);
    ++obs::tls().graph_builds;
    return graph::build_project_graph(project);
}

}  // namespace phpsafe::service
