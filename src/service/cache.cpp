#include "service/cache.h"

#include <cstdio>

#include "obs/counters.h"
#include "util/strings.h"

namespace phpsafe::service {

namespace {

/// Joins pool key components with a separator that cannot appear in file
/// names or fingerprints.
constexpr char kSep = '\x1f';

std::string hex64(uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

uint64_t approx_bytes(const php::ParsedFile& file) {
    // Exact, not an estimate: the model is arena-allocated, so the arena's
    // own ledger plus the retained source text IS the entry's footprint.
    return 64 + file.arena.bytes_allocated() + file.text_bytes;
}

uint64_t approx_bytes(const Finding& finding) {
    uint64_t bytes = 96 + finding.location.file.size() + finding.sink.size() +
                     finding.variable.size();
    for (const TaintStep& step : finding.trace)
        bytes += 48 + step.location.file.size() + step.description.size();
    return bytes;
}

uint64_t approx_bytes(const SummaryArtifact& artifact) {
    uint64_t bytes = 256;
    for (const Finding& finding : artifact.findings) bytes += approx_bytes(finding);
    for (const SummaryDep& dep : artifact.deps)
        bytes += 56 + dep.name.size() + dep.file.size();
    const FunctionSummary& s = artifact.summary;
    bytes += s.param_to_return.size() * 24 + s.param_outputs.size() * 160;
    for (const ParamSinkFlow& psf : s.param_sinks)
        bytes += 96 + psf.location.file.size() + psf.sink_name.size() +
                 psf.variable.size();
    return bytes;
}

uint64_t approx_bytes(const AnalysisResult& result) {
    uint64_t bytes = 256 + result.tool.size() + result.plugin.size();
    for (const Finding& finding : result.findings) bytes += approx_bytes(finding);
    for (const Diagnostic& d : result.diagnostics)
        bytes += 64 + d.location.file.size() + d.message.size();
    return bytes;
}

bool validate_deps(const SummaryArtifact& artifact, const php::Project& project) {
    for (const SummaryDep& dep : artifact.deps) {
        switch (dep.kind) {
            case SummaryDep::Kind::kFile: {
                const php::ParsedFile* file = project.file_named(dep.name);
                if (!file || file->content_hash != dep.hash) return false;
                break;
            }
            case SummaryDep::Kind::kFunction: {
                const php::FunctionRef* ref = project.find_function(dep.name);
                if ((ref ? ref->file : std::string_view()) != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kMethod: {
                const size_t sep = dep.name.find("::");
                if (sep == std::string::npos) return false;
                const php::FunctionRef* ref = project.find_method(
                    std::string_view(dep.name).substr(0, sep),
                    std::string_view(dep.name).substr(sep + 2));
                if ((ref ? ref->file : std::string_view()) != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kMethodAny: {
                const php::FunctionRef* ref = project.find_method_any(dep.name);
                if ((ref ? ref->file : std::string_view()) != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kClass: {
                const bool found = project.find_class(dep.name) != nullptr;
                const std::string resolved =
                    found ? project.file_of_class(dep.name) : std::string();
                if (resolved != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kInclude: {
                const php::ParsedFile* resolved = project.resolve_include(dep.name);
                if ((resolved ? resolved->source->name() : std::string()) !=
                    dep.file)
                    return false;
                break;
            }
        }
    }
    return true;
}

AnalysisCache::AnalysisCache(CacheBudgets budgets) {
    files_.budget = budgets.file_bytes;
    summaries_.budget = budgets.summary_bytes;
    results_.budget = budgets.result_bytes;
}

std::shared_ptr<const void> AnalysisCache::find(Pool& pool,
                                                const std::string& key) {
    const auto it = pool.entries.find(key);
    if (it == pool.entries.end()) return nullptr;
    pool.lru.splice(pool.lru.begin(), pool.lru, it->second.lru_pos);
    return it->second.payload;
}

void AnalysisCache::insert(Pool& pool, const std::string& key,
                           std::shared_ptr<const void> payload, uint64_t bytes) {
    if (bytes > pool.budget) return;  // would evict the whole pool for nothing
    const auto it = pool.entries.find(key);
    if (it != pool.entries.end()) {
        // Refresh in place (same content key, so the payload is equivalent).
        pool.lru.splice(pool.lru.begin(), pool.lru, it->second.lru_pos);
        return;
    }
    pool.lru.push_front(key);
    Entry entry;
    entry.payload = std::move(payload);
    entry.bytes = bytes;
    entry.lru_pos = pool.lru.begin();
    pool.entries.emplace(key, std::move(entry));
    pool.bytes += bytes;
    stats_.bytes_resident += bytes;
    obs::tls().cache_bytes_inserted += bytes;
    evict_over_budget(pool);
}

void AnalysisCache::evict_over_budget(Pool& pool) {
    while (pool.bytes > pool.budget && !pool.lru.empty()) {
        const std::string& victim = pool.lru.back();
        const auto it = pool.entries.find(victim);
        pool.bytes -= it->second.bytes;
        stats_.bytes_resident -= it->second.bytes;
        obs::tls().cache_bytes_evicted += it->second.bytes;
        ++obs::tls().cache_evictions;
        ++stats_.evictions;
        pool.entries.erase(it);
        pool.lru.pop_back();
    }
}

std::shared_ptr<const php::ParsedFile> AnalysisCache::find_file(
    std::string_view name, uint64_t content_hash) {
    // The key includes the NAME, not just the content: findings embed file
    // names, so the same bytes under a different name must parse separately
    // (the stored SourceFile carries its name).
    std::string key;
    key.reserve(name.size() + 17);
    key.assign(name);
    key += kSep;
    key += hex64(content_hash);
    std::lock_guard<std::mutex> lock(mutex_);
    auto payload = find(files_, key);
    if (payload) {
        ++obs::tls().cache_file_hits;
        ++stats_.file_hits;
    } else {
        ++obs::tls().cache_file_misses;
        ++stats_.file_misses;
    }
    return std::static_pointer_cast<const php::ParsedFile>(payload);
}

void AnalysisCache::insert_file(
    const std::shared_ptr<const php::ParsedFile>& file) {
    if (!file || !file->source) return;
    std::string key = file->source->name();
    key += kSep;
    key += hex64(file->content_hash);
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t bytes = approx_bytes(*file);
    obs::tls().cache_bytes_parsed += bytes;
    insert(files_, key, file, bytes);
    stats_.file_entries = files_.entries.size();
}

std::shared_ptr<const SummaryArtifact> AnalysisCache::find_summary(
    std::string_view preset, std::string_view qualified_lower,
    uint64_t declaring_hash) {
    std::string key;
    key.reserve(preset.size() + qualified_lower.size() + 18);
    key.assign(preset);
    key += kSep;
    key += qualified_lower;
    key += kSep;
    key += hex64(declaring_hash);
    std::lock_guard<std::mutex> lock(mutex_);
    auto payload = find(summaries_, key);
    if (payload) {
        ++stats_.summary_hits;
    } else {
        ++stats_.summary_misses;
    }
    return std::static_pointer_cast<const SummaryArtifact>(payload);
}

void AnalysisCache::insert_summary(std::string_view preset,
                                   std::string_view qualified_lower,
                                   uint64_t declaring_hash,
                                   SummaryArtifact artifact) {
    std::string key;
    key.assign(preset);
    key += kSep;
    key += qualified_lower;
    key += kSep;
    key += hex64(declaring_hash);
    auto shared = std::make_shared<const SummaryArtifact>(std::move(artifact));
    const uint64_t bytes = approx_bytes(*shared);
    std::lock_guard<std::mutex> lock(mutex_);
    insert(summaries_, key, std::move(shared), bytes);
    stats_.summary_entries = summaries_.entries.size();
}

std::shared_ptr<const AnalysisResult> AnalysisCache::find_result(
    std::string_view preset, uint64_t project_fingerprint) {
    std::string key;
    key.assign(preset);
    key += kSep;
    key += hex64(project_fingerprint);
    std::lock_guard<std::mutex> lock(mutex_);
    auto payload = find(results_, key);
    if (payload) {
        ++obs::tls().cache_result_hits;
        ++stats_.result_hits;
    }
    return std::static_pointer_cast<const AnalysisResult>(payload);
}

void AnalysisCache::insert_result(std::string_view preset,
                                  uint64_t project_fingerprint,
                                  const AnalysisResult& result) {
    std::string key;
    key.assign(preset);
    key += kSep;
    key += hex64(project_fingerprint);
    auto shared = std::make_shared<const AnalysisResult>(result);
    const uint64_t bytes = approx_bytes(*shared);
    std::lock_guard<std::mutex> lock(mutex_);
    insert(results_, key, std::move(shared), bytes);
    stats_.result_entries = results_.entries.size();
}

void AnalysisCache::note_invalidation() {
    ++obs::tls().cache_invalidations;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.invalidations;
}

CacheStats AnalysisCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats out = stats_;
    out.file_entries = files_.entries.size();
    out.summary_entries = summaries_.entries.size();
    out.result_entries = results_.entries.size();
    return out;
}

void AnalysisCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Pool* pool : {&files_, &summaries_, &results_}) {
        pool->entries.clear();
        pool->lru.clear();
        pool->bytes = 0;
    }
    stats_.bytes_resident = 0;
    stats_.file_entries = stats_.summary_entries = stats_.result_entries = 0;
}

}  // namespace phpsafe::service
