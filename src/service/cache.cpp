#include "service/cache.h"

#include <algorithm>
#include <cstdio>

#include "obs/counters.h"
#include "util/strings.h"

namespace phpsafe::service {

namespace {

/// Joins pool key components with a separator that cannot appear in file
/// names or fingerprints.
constexpr char kSep = '\x1f';

/// Minimum budget slice worth giving its own lock: below this a pool runs
/// fewer shards so per-shard LRU still behaves like the whole-pool LRU the
/// small-budget eviction tests rely on.
constexpr uint64_t kMinShardBudget = 64ull << 10;

std::string hex64(uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

constexpr auto relaxed = std::memory_order_relaxed;

}  // namespace

uint64_t approx_bytes(const php::ParsedFile& file) {
    // Exact, not an estimate: the model is arena-allocated, so the arena's
    // own ledger plus the retained source text IS the entry's footprint.
    return 64 + file.arena.bytes_allocated() + file.text_bytes;
}

uint64_t approx_bytes(const Finding& finding) {
    uint64_t bytes = 96 + finding.location.file.size() + finding.sink.size() +
                     finding.variable.size();
    for (const TaintStep& step : finding.trace)
        bytes += 48 + step.location.file.size() + step.description.size();
    return bytes;
}

uint64_t approx_bytes(const SummaryArtifact& artifact) {
    uint64_t bytes = 256;
    for (const Finding& finding : artifact.findings) bytes += approx_bytes(finding);
    for (const SummaryDep& dep : artifact.deps)
        bytes += 56 + dep.name.size() + dep.file.size();
    const FunctionSummary& s = artifact.summary;
    bytes += s.param_to_return.size() * 24 + s.param_outputs.size() * 160;
    for (const ParamSinkFlow& psf : s.param_sinks)
        bytes += 96 + psf.location.file.size() + psf.sink_name.size() +
                 psf.variable.size();
    return bytes;
}

uint64_t approx_bytes(const AnalysisResult& result) {
    uint64_t bytes = 256 + result.tool.size() + result.plugin.size();
    for (const Finding& finding : result.findings) bytes += approx_bytes(finding);
    for (const Diagnostic& d : result.diagnostics)
        bytes += 64 + d.location.file.size() + d.message.size();
    return bytes;
}

bool validate_deps(const SummaryArtifact& artifact, const php::Project& project) {
    for (const SummaryDep& dep : artifact.deps) {
        switch (dep.kind) {
            case SummaryDep::Kind::kFile: {
                const php::ParsedFile* file = project.file_named(dep.name);
                if (!file || file->content_hash != dep.hash) return false;
                break;
            }
            case SummaryDep::Kind::kFunction: {
                const php::FunctionRef* ref = project.find_function(dep.name);
                if ((ref ? ref->file : std::string_view()) != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kMethod: {
                const size_t sep = dep.name.find("::");
                if (sep == std::string::npos) return false;
                const php::FunctionRef* ref = project.find_method(
                    std::string_view(dep.name).substr(0, sep),
                    std::string_view(dep.name).substr(sep + 2));
                if ((ref ? ref->file : std::string_view()) != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kMethodAny: {
                const php::FunctionRef* ref = project.find_method_any(dep.name);
                if ((ref ? ref->file : std::string_view()) != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kClass: {
                const bool found = project.find_class(dep.name) != nullptr;
                const std::string resolved =
                    found ? project.file_of_class(dep.name) : std::string();
                if (resolved != dep.file) return false;
                break;
            }
            case SummaryDep::Kind::kInclude: {
                const php::ParsedFile* resolved = project.resolve_include(dep.name);
                if ((resolved ? resolved->source->name() : std::string()) !=
                    dep.file)
                    return false;
                break;
            }
        }
    }
    return true;
}

DepCheckMemo::DepCheckMemo(const php::Project& project) : project_(project) {
    // emplace keeps the first file of a duplicated name, matching the
    // first-match semantics of Project::file_named.
    for (const auto& parsed : project.files())
        if (parsed) file_hashes_.emplace(parsed->source->name(),
                                         parsed->content_hash);
}

bool DepCheckMemo::validate(const SummaryArtifact& artifact) {
    ++obs::tls().cache_dep_walks;
    for (const SummaryDep& dep : artifact.deps) {
        if (dep.kind == SummaryDep::Kind::kFile) {
            // The hash map built at construction is the memo for file deps.
            ++obs::tls().cache_dep_walk_memo_hits;
            const auto it = file_hashes_.find(dep.name);
            if (it == file_hashes_.end() || it->second != dep.hash)
                return false;
            continue;
        }
        auto key = std::make_pair(static_cast<int>(dep.kind), dep.name);
        auto memo = resolutions_.find(key);
        if (memo == resolutions_.end()) {
            ++obs::tls().cache_dep_walk_steps;
            std::string resolved;
            switch (dep.kind) {
                case SummaryDep::Kind::kFunction: {
                    const php::FunctionRef* ref =
                        project_.find_function(dep.name);
                    if (ref) resolved.assign(ref->file);
                    break;
                }
                case SummaryDep::Kind::kMethod: {
                    const size_t sep = dep.name.find("::");
                    if (sep == std::string::npos) {
                        // A malformed record never validates (same as the
                        // free function); the sentinel cannot be a file.
                        resolved = "\x1f<malformed>";
                        break;
                    }
                    const php::FunctionRef* ref = project_.find_method(
                        std::string_view(dep.name).substr(0, sep),
                        std::string_view(dep.name).substr(sep + 2));
                    if (ref) resolved.assign(ref->file);
                    break;
                }
                case SummaryDep::Kind::kMethodAny: {
                    const php::FunctionRef* ref =
                        project_.find_method_any(dep.name);
                    if (ref) resolved.assign(ref->file);
                    break;
                }
                case SummaryDep::Kind::kClass: {
                    if (project_.find_class(dep.name))
                        resolved = project_.file_of_class(dep.name);
                    break;
                }
                case SummaryDep::Kind::kInclude: {
                    const php::ParsedFile* file =
                        project_.resolve_include(dep.name);
                    if (file) resolved = file->source->name();
                    break;
                }
                case SummaryDep::Kind::kFile:
                    break;  // handled above
            }
            memo = resolutions_.emplace(std::move(key), std::move(resolved))
                       .first;
        } else {
            ++obs::tls().cache_dep_walk_memo_hits;
        }
        if (memo->second != dep.file) return false;
    }
    return true;
}

void AnalysisCache::init_pool(Pool& pool, uint64_t budget, int shards) {
    int count = std::max(1, shards);
    // Don't split a small budget into slices too tiny to hold an entry:
    // collapse to however many >= 64 KiB slices fit, floor one.
    if (budget / static_cast<uint64_t>(count) < kMinShardBudget)
        count = std::max<int>(
            1, static_cast<int>(budget / kMinShardBudget));
    pool.shards.reserve(count);
    for (int i = 0; i < count; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->budget = budget / static_cast<uint64_t>(count);
        pool.shards.push_back(std::move(shard));
    }
}

AnalysisCache::AnalysisCache(CacheBudgets budgets) {
    init_pool(files_, budgets.file_bytes, budgets.shards);
    init_pool(summaries_, budgets.summary_bytes, budgets.shards);
    init_pool(results_, budgets.result_bytes, budgets.shards);
}

AnalysisCache::Shard& AnalysisCache::shard_for(Pool& pool,
                                               std::string_view key) {
    const size_t index = pool.shards.size() == 1
                             ? 0
                             : fnv1a64(key) % pool.shards.size();
    return *pool.shards[index];
}

namespace {

/// Takes a shard lock, counting acquisitions and the ones that had to
/// wait — the contention signal bench_serve reports per worker count.
template <typename Mutex>
std::unique_lock<Mutex> lock_shard(Mutex& mutex) {
    ++obs::tls().cache_shard_probes;
    std::unique_lock<Mutex> lock(mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        ++obs::tls().cache_shard_contention;
        lock.lock();
    }
    return lock;
}

}  // namespace

std::shared_ptr<const void> AnalysisCache::find(Shard& shard,
                                                const std::string& key) {
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return nullptr;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return it->second.payload;
}

void AnalysisCache::insert(Shard& shard, const std::string& key,
                           std::shared_ptr<const void> payload, uint64_t bytes) {
    if (bytes > shard.budget) return;  // would evict the whole shard for nothing
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        // Refresh in place (same content key, so the payload is equivalent).
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
        return;
    }
    shard.lru.push_front(key);
    Entry entry;
    entry.payload = std::move(payload);
    entry.bytes = bytes;
    entry.lru_pos = shard.lru.begin();
    shard.entries.emplace(key, std::move(entry));
    shard.bytes += bytes;
    shard.entries_gauge.store(shard.entries.size(), relaxed);
    shard.bytes_gauge.store(shard.bytes, relaxed);
    bytes_resident_.fetch_add(bytes, relaxed);
    obs::tls().cache_bytes_inserted += bytes;
    evict_over_budget(shard);
}

void AnalysisCache::evict_over_budget(Shard& shard) {
    while (shard.bytes > shard.budget && !shard.lru.empty()) {
        const std::string& victim = shard.lru.back();
        const auto it = shard.entries.find(victim);
        shard.bytes -= it->second.bytes;
        bytes_resident_.fetch_sub(it->second.bytes, relaxed);
        obs::tls().cache_bytes_evicted += it->second.bytes;
        ++obs::tls().cache_evictions;
        evictions_.fetch_add(1, relaxed);
        shard.entries.erase(it);
        shard.lru.pop_back();
    }
    shard.entries_gauge.store(shard.entries.size(), relaxed);
    shard.bytes_gauge.store(shard.bytes, relaxed);
}

uint64_t AnalysisCache::shed_from(Shard& shard, uint64_t target) {
    auto lock = lock_shard(shard.mutex);
    uint64_t freed = 0;
    while (freed < target && !shard.lru.empty()) {
        const std::string& victim = shard.lru.back();
        const auto it = shard.entries.find(victim);
        freed += it->second.bytes;
        shard.bytes -= it->second.bytes;
        bytes_resident_.fetch_sub(it->second.bytes, relaxed);
        obs::tls().cache_bytes_evicted += it->second.bytes;
        ++obs::tls().cache_shed_entries;
        shed_entries_.fetch_add(1, relaxed);
        shard.entries.erase(it);
        shard.lru.pop_back();
    }
    shard.entries_gauge.store(shard.entries.size(), relaxed);
    shard.bytes_gauge.store(shard.bytes, relaxed);
    obs::tls().cache_shed_bytes += freed;
    return freed;
}

uint64_t AnalysisCache::shed(uint64_t target_bytes) {
    uint64_t freed = 0;
    // Results first (pure cost savers), summaries second, parsed files
    // last — the warm model pools are what keep a deep queue draining.
    for (Pool* pool : {&results_, &summaries_, &files_}) {
        for (const auto& shard : pool->shards) {
            if (freed >= target_bytes) return freed;
            freed += shed_from(*shard, target_bytes - freed);
        }
    }
    return freed;
}

std::shared_ptr<const php::ParsedFile> AnalysisCache::find_file(
    std::string_view name, uint64_t content_hash) {
    // The key includes the NAME, not just the content: findings embed file
    // names, so the same bytes under a different name must parse separately
    // (the stored SourceFile carries its name).
    std::string key;
    key.reserve(name.size() + 17);
    key.assign(name);
    key += kSep;
    key += hex64(content_hash);
    Shard& shard = shard_for(files_, key);
    std::shared_ptr<const void> payload;
    {
        auto lock = lock_shard(shard.mutex);
        payload = find(shard, key);
    }
    if (payload) {
        ++obs::tls().cache_file_hits;
        file_hits_.fetch_add(1, relaxed);
    } else {
        ++obs::tls().cache_file_misses;
        file_misses_.fetch_add(1, relaxed);
    }
    return std::static_pointer_cast<const php::ParsedFile>(payload);
}

void AnalysisCache::insert_file(
    const std::shared_ptr<const php::ParsedFile>& file) {
    if (!file || !file->source) return;
    std::string key = file->source->name();
    key += kSep;
    key += hex64(file->content_hash);
    const uint64_t bytes = approx_bytes(*file);
    obs::tls().cache_bytes_parsed += bytes;
    Shard& shard = shard_for(files_, key);
    auto lock = lock_shard(shard.mutex);
    insert(shard, key, file, bytes);
}

std::shared_ptr<const SummaryArtifact> AnalysisCache::find_summary(
    std::string_view preset, std::string_view qualified_lower,
    uint64_t declaring_hash) {
    std::string key;
    key.reserve(preset.size() + qualified_lower.size() + 18);
    key.assign(preset);
    key += kSep;
    key += qualified_lower;
    key += kSep;
    key += hex64(declaring_hash);
    Shard& shard = shard_for(summaries_, key);
    std::shared_ptr<const void> payload;
    {
        auto lock = lock_shard(shard.mutex);
        payload = find(shard, key);
    }
    if (payload) {
        summary_hits_.fetch_add(1, relaxed);
    } else {
        summary_misses_.fetch_add(1, relaxed);
    }
    return std::static_pointer_cast<const SummaryArtifact>(payload);
}

void AnalysisCache::insert_summary(std::string_view preset,
                                   std::string_view qualified_lower,
                                   uint64_t declaring_hash,
                                   SummaryArtifact artifact) {
    std::string key;
    key.assign(preset);
    key += kSep;
    key += qualified_lower;
    key += kSep;
    key += hex64(declaring_hash);
    auto shared = std::make_shared<const SummaryArtifact>(std::move(artifact));
    const uint64_t bytes = approx_bytes(*shared);
    Shard& shard = shard_for(summaries_, key);
    auto lock = lock_shard(shard.mutex);
    insert(shard, key, std::move(shared), bytes);
}

std::shared_ptr<const AnalysisResult> AnalysisCache::find_result(
    std::string_view preset, uint64_t project_fingerprint) {
    std::string key;
    key.assign(preset);
    key += kSep;
    key += hex64(project_fingerprint);
    Shard& shard = shard_for(results_, key);
    std::shared_ptr<const void> payload;
    {
        auto lock = lock_shard(shard.mutex);
        payload = find(shard, key);
    }
    if (payload) {
        ++obs::tls().cache_result_hits;
        result_hits_.fetch_add(1, relaxed);
    }
    return std::static_pointer_cast<const AnalysisResult>(payload);
}

void AnalysisCache::insert_result(std::string_view preset,
                                  uint64_t project_fingerprint,
                                  const AnalysisResult& result) {
    std::string key;
    key.assign(preset);
    key += kSep;
    key += hex64(project_fingerprint);
    auto shared = std::make_shared<const AnalysisResult>(result);
    const uint64_t bytes = approx_bytes(*shared);
    Shard& shard = shard_for(results_, key);
    auto lock = lock_shard(shard.mutex);
    insert(shard, key, std::move(shared), bytes);
}

void AnalysisCache::note_invalidation() {
    ++obs::tls().cache_invalidations;
    invalidations_.fetch_add(1, relaxed);
}

CacheStats AnalysisCache::stats() const {
    // Entirely lock-free: totals come from the cache-level atomics,
    // occupancy from the per-shard gauges. The snapshot is not a single
    // linearization point — gauges written under different shard locks may
    // be microseconds apart — which is exactly the usual contract for
    // monitoring counters.
    CacheStats out;
    out.file_hits = file_hits_.load(relaxed);
    out.file_misses = file_misses_.load(relaxed);
    out.summary_hits = summary_hits_.load(relaxed);
    out.summary_misses = summary_misses_.load(relaxed);
    out.result_hits = result_hits_.load(relaxed);
    out.evictions = evictions_.load(relaxed);
    out.invalidations = invalidations_.load(relaxed);
    out.shed_entries = shed_entries_.load(relaxed);
    out.bytes_resident = bytes_resident_.load(relaxed);
    const Pool* pools[] = {&files_, &summaries_, &results_};
    uint64_t* entry_totals[] = {&out.file_entries, &out.summary_entries,
                                &out.result_entries};
    size_t width = 0;
    for (const Pool* pool : pools) width = std::max(width, pool->shards.size());
    out.shards.resize(width);
    for (size_t p = 0; p < 3; ++p) {
        for (size_t i = 0; i < pools[p]->shards.size(); ++i) {
            const Shard& shard = *pools[p]->shards[i];
            const uint64_t entries = shard.entries_gauge.load(relaxed);
            *entry_totals[p] += entries;
            out.shards[i].entries += entries;
            out.shards[i].bytes += shard.bytes_gauge.load(relaxed);
        }
    }
    return out;
}

void AnalysisCache::clear() {
    for (Pool* pool : {&files_, &summaries_, &results_}) {
        for (const auto& shard : pool->shards) {
            auto lock = lock_shard(shard->mutex);
            bytes_resident_.fetch_sub(shard->bytes, relaxed);
            shard->entries.clear();
            shard->lru.clear();
            shard->bytes = 0;
            shard->entries_gauge.store(0, relaxed);
            shard->bytes_gauge.store(0, relaxed);
        }
    }
}

}  // namespace phpsafe::service
