#include "service/ndjson.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/export.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace phpsafe::service {

namespace fs = std::filesystem;

namespace {

/// Loads all *.php files under `root` (recursively, path-sorted so the
/// request fingerprint is stable across directory iteration order).
bool load_directory(const std::string& root,
                    std::vector<SourceFileSpec>& files, std::string& error) {
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        error = "not a directory: " + root;
        return false;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".php")
            paths.push_back(entry.path());
    }
    if (ec) {
        error = "cannot list " + root + ": " + ec.message();
        return false;
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            error = "cannot read " + path.string();
            return false;
        }
        std::ostringstream text;
        text << in.rdbuf();
        SourceFileSpec spec;
        spec.name = fs::relative(path, root, ec).generic_string();
        spec.text = std::move(text).str();
        files.push_back(std::move(spec));
    }
    if (files.empty()) {
        error = "no .php files under " + root;
        return false;
    }
    return true;
}

bool build_request(const JsonValue& request, ScanRequest& scan,
                   std::string& error) {
    scan.preset = request.string_or("preset", "phpsafe");
    scan.backend = request.string_or("backend", "");
    if (!scan.backend.empty()) {
        // Validate at the protocol boundary so a typo'd backend is one
        // structured error line, not a queued scan that fails later.
        EngineBackend backend = EngineBackend::kAst;
        if (!backend_from_string(scan.backend, backend)) {
            error = "unknown backend \"" + scan.backend +
                    "\" (expected ast, ir or differential)";
            return false;
        }
    }
    scan.priority = static_cast<int>(request.int_or("priority", 0));
    const std::string path = request.string_or("path", "");
    if (!path.empty()) {
        if (!load_directory(path, scan.files, error)) return false;
        scan.plugin =
            request.string_or("plugin", fs::path(path).filename().string());
        return true;
    }
    const JsonValue* files = request.get("files");
    if (!files || !files->is_array() || files->array.empty()) {
        error = "scan needs \"path\" or a non-empty \"files\" array";
        return false;
    }
    for (const JsonValue& file : files->array) {
        const JsonValue* name = file.get("name");
        const JsonValue* text = file.get("text");
        if (!name || !name->is_string() || !text || !text->is_string()) {
            error = "each file needs string \"name\" and \"text\"";
            return false;
        }
        SourceFileSpec spec;
        spec.name = name->string;
        spec.text = text->string;
        scan.files.push_back(std::move(spec));
    }
    scan.plugin = request.string_or("plugin", "stdin");
    return true;
}

/// Strict key validation: a request carrying a key its op does not define
/// is rejected with a structured error, not silently ignored. `allowed` is
/// a null-terminated array of accepted key names.
bool check_keys(const JsonValue& request, const char* op,
                const char* const* allowed, std::string& error) {
    for (const auto& [key, value] : request.object) {
        bool known = false;
        for (const char* const* a = allowed; *a; ++a) {
            if (key == *a) {
                known = true;
                break;
            }
        }
        if (!known) {
            error = "unknown key \"" + key + "\" for op \"" + op + "\"";
            return false;
        }
    }
    return true;
}

bool parse_edit_batch(const JsonValue& request, WatchEditBatch& batch,
                      std::string& error) {
    const JsonValue* files = request.get("files");
    if (files) {
        if (!files->is_array()) {
            error = "edit \"files\" must be an array";
            return false;
        }
        for (const JsonValue& file : files->array) {
            const JsonValue* name = file.get("name");
            const JsonValue* text = file.get("text");
            if (!name || !name->is_string() || !text || !text->is_string()) {
                error = "each file needs string \"name\" and \"text\"";
                return false;
            }
            SourceFileSpec spec;
            spec.name = name->string;
            spec.text = text->string;
            batch.upserts.push_back(std::move(spec));
        }
    }
    const JsonValue* remove = request.get("remove");
    if (remove) {
        if (!remove->is_array()) {
            error = "edit \"remove\" must be an array of file names";
            return false;
        }
        for (const JsonValue& name : remove->array) {
            if (!name.is_string()) {
                error = "edit \"remove\" must be an array of file names";
                return false;
            }
            batch.removals.push_back(name.string);
        }
    }
    if (batch.upserts.empty() && batch.removals.empty()) {
        error = "edit needs \"files\" and/or \"remove\"";
        return false;
    }
    return true;
}

}  // namespace

LineStatus read_ndjson_line(std::istream& in, std::string& line,
                            size_t max_bytes) {
    line.clear();
    if (max_bytes == 0) {
        if (!std::getline(in, line)) return LineStatus::kEof;
        return LineStatus::kOk;
    }
    bool read_any = false;
    bool oversized = false;
    char c;
    while (in.get(c)) {
        read_any = true;
        if (c == '\n')
            return oversized ? LineStatus::kOversized : LineStatus::kOk;
        if (line.size() < max_bytes)
            line.push_back(c);
        else
            oversized = true;  // keep consuming, stop buffering
    }
    if (!read_any) return LineStatus::kEof;
    return oversized ? LineStatus::kOversized : LineStatus::kOk;
}

NdjsonRequest parse_ndjson_request(const std::string& line) {
    NdjsonRequest request;
    JsonValue json;
    std::string error;
    if (!JsonReader::parse(line, json, &error) || !json.is_object()) {
        request.error =
            error.empty() ? "request must be a JSON object" : error;
        return request;
    }
    static const char* const kBareKeys[] = {"op", nullptr};
    static const char* const kScanKeys[] = {
        "op", "path", "files", "plugin", "preset",
        "backend", "priority", "slot", nullptr};
    static const char* const kWatchKeys[] = {
        "op", "path", "files", "plugin", "preset",
        "backend", "priority", nullptr};
    static const char* const kEditKeys[] = {"op", "files", "remove", nullptr};
    static const char* const kGraphKeys[] = {
        "op", "path", "files", "plugin", "detail", nullptr};
    static const char* const kValidateKeys[] = {
        "op", "path", "files", "plugin", "preset",
        "backend", "priority", nullptr};

    const std::string op = json.string_or("op", "");
    if (op == "quit" || op == "shutdown") {
        if (!check_keys(json, op.c_str(), kBareKeys, request.error))
            return request;
        request.op = NdjsonRequest::Op::kQuit;
        return request;
    }
    if (op == "stats") {
        if (!check_keys(json, "stats", kBareKeys, request.error))
            return request;
        request.op = NdjsonRequest::Op::kStats;
        return request;
    }
    if (op == "clear") {
        if (!check_keys(json, "clear", kBareKeys, request.error))
            return request;
        request.op = NdjsonRequest::Op::kClear;
        return request;
    }
    if (op == "scan") {
        if (!check_keys(json, "scan", kScanKeys, request.error))
            return request;
        if (!build_request(json, request.scan, request.error)) return request;
        request.slot = json.string_or("slot", "");
        request.op = NdjsonRequest::Op::kScan;
        return request;
    }
    if (op == "watch") {
        if (!check_keys(json, "watch", kWatchKeys, request.error))
            return request;
        if (!build_request(json, request.scan, request.error)) return request;
        request.op = NdjsonRequest::Op::kWatch;
        return request;
    }
    if (op == "edit") {
        if (!check_keys(json, "edit", kEditKeys, request.error))
            return request;
        if (!parse_edit_batch(json, request.edit, request.error))
            return request;
        request.op = NdjsonRequest::Op::kEdit;
        return request;
    }
    if (op == "validate") {
        if (!check_keys(json, "validate", kValidateKeys, request.error))
            return request;
        if (json.get("path") || json.get("files")) {
            if (!build_request(json, request.scan, request.error))
                return request;
            request.validate_has_payload = true;
        } else if (!json.object.empty() && json.object.size() > 1) {
            // Payload-less validate targets the watch session; stray
            // request keys there would be silently meaningless.
            request.error =
                "validate without \"path\"/\"files\" takes no other keys";
            return request;
        }
        request.op = NdjsonRequest::Op::kValidate;
        return request;
    }
    if (op == "graph") {
        if (!check_keys(json, "graph", kGraphKeys, request.error))
            return request;
        const JsonValue* detail = json.get("detail");
        if (detail) {
            if (!detail->is_bool()) {
                request.error = "graph \"detail\" must be a boolean";
                return request;
            }
            request.graph_detail = detail->boolean;
        }
        if (json.get("path") || json.get("files")) {
            if (!build_request(json, request.scan, request.error))
                return request;
            request.graph_has_payload = true;
        }
        request.op = NdjsonRequest::Op::kGraph;
        return request;
    }
    request.error = "unknown op: \"" + op + "\"";
    return request;
}

std::string render_error_line(const std::string& message) {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object().kv("ok", false).kv("error", message).end_object();
    return line.str();
}

std::string render_ok_line() {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object().kv("ok", true).end_object();
    return line.str();
}

std::string render_bye_line() {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object().kv("ok", true).kv("bye", true).end_object();
    return line.str();
}

std::string render_scan_line(const ScanResponse& response,
                             bool deterministic) {
    if (response.cancelled) {
        std::ostringstream line;
        JsonWriter w(line);
        w.begin_object().kv("ok", false).kv("cancelled", true).end_object();
        return line.str();
    }
    if (response.rejected) {
        std::ostringstream line;
        JsonWriter w(line);
        w.begin_object().kv("ok", false).kv("rejected", true).end_object();
        return line.str();
    }
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("from_result_cache", response.from_result_cache);
    w.kv("deduplicated", response.deduplicated);
    w.kv("files_reused", response.files_reused);
    w.kv("summaries_seeded", response.summaries_seeded);
    w.kv("summaries_invalidated", response.summaries_invalidated);
    w.kv("wall_seconds", deterministic ? 0.0 : response.wall_seconds, 4);
    w.key("report");
    // render_json_report emits a complete compact object; splice it in as
    // the final member rather than re-serializing every finding here.
    line << render_json_report(response.result) << "}";
    return line.str();
}

std::string render_stats_line(const CacheStats& stats, bool deterministic) {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("file_entries", stats.file_entries);
    w.kv("summary_entries", stats.summary_entries);
    w.kv("result_entries", stats.result_entries);
    w.kv("bytes_resident", deterministic ? uint64_t{0} : stats.bytes_resident);
    w.kv("file_hits", stats.file_hits);
    w.kv("file_misses", stats.file_misses);
    w.kv("summary_hits", stats.summary_hits);
    w.kv("summary_misses", stats.summary_misses);
    w.kv("result_hits", stats.result_hits);
    w.kv("evictions", stats.evictions);
    w.kv("invalidations", stats.invalidations);
    w.kv("shed_entries", stats.shed_entries);
    w.kv("shards", static_cast<uint64_t>(stats.shards.size()));
    w.end_object();
    return line.str();
}

std::string render_watch_line(const ScanResponse& response, int files,
                              bool deterministic) {
    if (response.cancelled || response.rejected)
        return render_scan_line(response, deterministic);
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("watch", true);
    w.kv("files", files);
    w.kv("from_result_cache", response.from_result_cache);
    w.kv("deduplicated", response.deduplicated);
    w.kv("files_reused", response.files_reused);
    w.kv("summaries_seeded", response.summaries_seeded);
    w.kv("summaries_invalidated", response.summaries_invalidated);
    w.kv("wall_seconds", deterministic ? 0.0 : response.wall_seconds, 4);
    w.key("report");
    line << render_json_report(response.result) << "}";
    return line.str();
}

std::string render_edit_line(const WatchDelta& delta, bool deterministic) {
    // A failed edit — bad batch, no session, or a rejected/cancelled
    // re-scan — is the one structured error shape like every other error.
    if (!delta.ok) return render_error_line(delta.error);
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("changed_files", delta.changed_files);
    w.kv("cone_files", delta.cone_files);
    w.kv("cone_functions", delta.cone_functions);
    w.kv("files_reused", delta.response.files_reused);
    w.kv("summaries_seeded", delta.response.summaries_seeded);
    w.kv("summaries_invalidated", delta.response.summaries_invalidated);
    w.kv("wall_seconds",
         deterministic ? 0.0 : delta.response.wall_seconds, 4);
    w.key("added").begin_array();
    for (const Finding& f : delta.added) render_finding_json(w, f);
    w.end_array();
    w.key("removed").begin_array();
    for (const Finding& f : delta.removed) render_finding_json(w, f);
    w.end_array();
    w.end_object();
    return line.str();
}

std::string render_validate_line(const ValidateResponse& response,
                                 bool deterministic) {
    if (response.scan.cancelled || response.scan.rejected)
        return render_scan_line(response.scan, deterministic);
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("validate", true);
    w.kv("from_result_cache", response.scan.from_result_cache);
    w.kv("from_validate_cache", response.from_validate_cache);
    w.kv("executions", response.report.executions);
    w.kv("validated", response.report.validated);
    w.kv("unvalidated", response.report.unvalidated);
    w.kv("inconclusive", response.report.inconclusive);
    w.kv("fixes_proposed", response.report.fixes_proposed);
    w.kv("fixes_verified", response.report.fixes_verified);
    w.kv("wall_seconds", deterministic ? 0.0 : response.wall_seconds, 4);
    w.key("quickfixes").begin_array();
    for (const validate::CaseOutcome& outcome : response.report.cases) {
        if (!outcome.fix) continue;
        const validate::Quickfix& fix = *outcome.fix;
        w.begin_object();
        w.kv("kind", to_string(fix.kind));
        w.kv("file", fix.file);
        w.kv("line", fix.line);
        w.kv("before", fix.before);
        w.kv("after", fix.after);
        w.kv("note", fix.note);
        w.kv("verified", fix.verified);
        w.end_object();
    }
    w.end_array();
    w.key("report");
    // The tiered result: every finding carries its "confidence" member.
    line << render_json_report(response.tiered) << "}";
    return line.str();
}

std::string render_graph_line(const graph::ProjectGraph& g, bool detail) {
    const graph::ProjectGraph::Analytics analytics = g.analyze();
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("files", g.file_count());
    w.kv("functions", g.function_count());
    w.kv("include_edges", g.include_edge_count());
    w.kv("use_edges", g.use_edge_count());
    w.key("analytics");
    // Both payloads arrive pre-serialized; splice them in like the scan
    // renderer splices its report.
    line << graph::render_graph_analytics(g, analytics);
    if (detail) line << ",\"detail\":" << g.to_json();
    line << "}";
    return line.str();
}

int serve_ndjson(std::istream& in, std::ostream& out,
                 const ServeOptions& options) {
    AnalysisService own_service;
    AnalysisService& service =
        options.service ? *options.service : own_service;
    WatchSession watch(service);  // per-call, like a server session's
    int served = 0;

    std::string line;
    for (;;) {
        const LineStatus status =
            read_ndjson_line(in, line, options.max_line_bytes);
        if (status == LineStatus::kEof) break;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        ++served;
        if (status == LineStatus::kOversized) {
            out << render_error_line("request line exceeds " +
                                     std::to_string(options.max_line_bytes) +
                                     " bytes")
                << "\n"
                << std::flush;
            continue;
        }

        const NdjsonRequest request = parse_ndjson_request(line);
        switch (request.op) {
        case NdjsonRequest::Op::kQuit:
            out << render_bye_line() << "\n" << std::flush;
            return served;
        case NdjsonRequest::Op::kStats:
            out << render_stats_line(service.cache_stats(),
                                     options.deterministic)
                << "\n"
                << std::flush;
            continue;
        case NdjsonRequest::Op::kClear:
            service.clear_cache();
            out << render_ok_line() << "\n" << std::flush;
            continue;
        case NdjsonRequest::Op::kInvalid:
            out << render_error_line(request.error) << "\n" << std::flush;
            continue;
        case NdjsonRequest::Op::kWatch: {
            // Sequence open() before file_count() — as arguments the calls
            // would be unsequenced relative to each other.
            const ScanResponse response = watch.open(request.scan);
            out << render_watch_line(response, watch.file_count(),
                                     options.deterministic)
                << "\n"
                << std::flush;
            continue;
        }
        case NdjsonRequest::Op::kEdit:
            out << render_edit_line(watch.edit(request.edit),
                                    options.deterministic)
                << "\n"
                << std::flush;
            continue;
        case NdjsonRequest::Op::kGraph: {
            if (request.graph_has_payload) {
                out << render_graph_line(
                           build_request_graph(service, request.scan),
                           request.graph_detail)
                    << "\n"
                    << std::flush;
            } else if (watch.graph()) {
                out << render_graph_line(*watch.graph(), request.graph_detail)
                    << "\n"
                    << std::flush;
            } else {
                out << render_error_line(
                           "graph needs an open watch session or a "
                           "\"path\"/\"files\" payload")
                    << "\n"
                    << std::flush;
            }
            continue;
        }
        case NdjsonRequest::Op::kValidate: {
            if (request.validate_has_payload) {
                out << render_validate_line(service.validate(request.scan),
                                            options.deterministic)
                    << "\n"
                    << std::flush;
            } else if (watch.active()) {
                out << render_validate_line(
                           service.validate(watch.request()),
                           options.deterministic)
                    << "\n"
                    << std::flush;
            } else {
                out << render_error_line(
                           "validate needs an open watch session or a "
                           "\"path\"/\"files\" payload")
                    << "\n"
                    << std::flush;
            }
            continue;
        }
        case NdjsonRequest::Op::kScan:
            break;
        }
        // The synchronous loop runs one scan at a time, so a slot's
        // previous request is always already answered — supersede slots
        // only matter to the pipelined sessions in service/server.h.
        out << render_scan_line(service.scan(request.scan),
                                options.deterministic)
            << "\n"
            << std::flush;
    }
    return served;
}

}  // namespace phpsafe::service
