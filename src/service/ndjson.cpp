#include "service/ndjson.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/export.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace phpsafe::service {

namespace fs = std::filesystem;

namespace {

/// Loads all *.php files under `root` (recursively, path-sorted so the
/// request fingerprint is stable across directory iteration order).
bool load_directory(const std::string& root,
                    std::vector<SourceFileSpec>& files, std::string& error) {
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        error = "not a directory: " + root;
        return false;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".php")
            paths.push_back(entry.path());
    }
    if (ec) {
        error = "cannot list " + root + ": " + ec.message();
        return false;
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            error = "cannot read " + path.string();
            return false;
        }
        std::ostringstream text;
        text << in.rdbuf();
        files.push_back({fs::relative(path, root, ec).generic_string(),
                         std::move(text).str()});
    }
    if (files.empty()) {
        error = "no .php files under " + root;
        return false;
    }
    return true;
}

bool build_request(const JsonValue& request, ScanRequest& scan,
                   std::string& error) {
    scan.preset = request.string_or("preset", "phpsafe");
    scan.backend = request.string_or("backend", "");
    if (!scan.backend.empty()) {
        // Validate at the protocol boundary so a typo'd backend is one
        // structured error line, not a queued scan that fails later.
        EngineBackend backend = EngineBackend::kAst;
        if (!backend_from_string(scan.backend, backend)) {
            error = "unknown backend \"" + scan.backend +
                    "\" (expected ast, ir or differential)";
            return false;
        }
    }
    scan.priority = static_cast<int>(request.int_or("priority", 0));
    const std::string path = request.string_or("path", "");
    if (!path.empty()) {
        if (!load_directory(path, scan.files, error)) return false;
        scan.plugin =
            request.string_or("plugin", fs::path(path).filename().string());
        return true;
    }
    const JsonValue* files = request.get("files");
    if (!files || !files->is_array() || files->array.empty()) {
        error = "scan needs \"path\" or a non-empty \"files\" array";
        return false;
    }
    for (const JsonValue& file : files->array) {
        const JsonValue* name = file.get("name");
        const JsonValue* text = file.get("text");
        if (!name || !name->is_string() || !text || !text->is_string()) {
            error = "each file needs string \"name\" and \"text\"";
            return false;
        }
        scan.files.push_back({name->string, text->string});
    }
    scan.plugin = request.string_or("plugin", "stdin");
    return true;
}

}  // namespace

LineStatus read_ndjson_line(std::istream& in, std::string& line,
                            size_t max_bytes) {
    line.clear();
    if (max_bytes == 0) {
        if (!std::getline(in, line)) return LineStatus::kEof;
        return LineStatus::kOk;
    }
    bool read_any = false;
    bool oversized = false;
    char c;
    while (in.get(c)) {
        read_any = true;
        if (c == '\n')
            return oversized ? LineStatus::kOversized : LineStatus::kOk;
        if (line.size() < max_bytes)
            line.push_back(c);
        else
            oversized = true;  // keep consuming, stop buffering
    }
    if (!read_any) return LineStatus::kEof;
    return oversized ? LineStatus::kOversized : LineStatus::kOk;
}

NdjsonRequest parse_ndjson_request(const std::string& line) {
    NdjsonRequest request;
    JsonValue json;
    std::string error;
    if (!JsonReader::parse(line, json, &error) || !json.is_object()) {
        request.error =
            error.empty() ? "request must be a JSON object" : error;
        return request;
    }
    const std::string op = json.string_or("op", "");
    if (op == "quit" || op == "shutdown") {
        request.op = NdjsonRequest::Op::kQuit;
        return request;
    }
    if (op == "stats") {
        request.op = NdjsonRequest::Op::kStats;
        return request;
    }
    if (op == "clear") {
        request.op = NdjsonRequest::Op::kClear;
        return request;
    }
    if (op != "scan") {
        request.error = "unknown op: \"" + op + "\"";
        return request;
    }
    if (!build_request(json, request.scan, request.error)) return request;
    request.slot = json.string_or("slot", "");
    request.op = NdjsonRequest::Op::kScan;
    return request;
}

std::string render_error_line(const std::string& message) {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object().kv("ok", false).kv("error", message).end_object();
    return line.str();
}

std::string render_ok_line() {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object().kv("ok", true).end_object();
    return line.str();
}

std::string render_bye_line() {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object().kv("ok", true).kv("bye", true).end_object();
    return line.str();
}

std::string render_scan_line(const ScanResponse& response,
                             bool deterministic) {
    if (response.cancelled) {
        std::ostringstream line;
        JsonWriter w(line);
        w.begin_object().kv("ok", false).kv("cancelled", true).end_object();
        return line.str();
    }
    if (response.rejected) {
        std::ostringstream line;
        JsonWriter w(line);
        w.begin_object().kv("ok", false).kv("rejected", true).end_object();
        return line.str();
    }
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("from_result_cache", response.from_result_cache);
    w.kv("deduplicated", response.deduplicated);
    w.kv("files_reused", response.files_reused);
    w.kv("summaries_seeded", response.summaries_seeded);
    w.kv("summaries_invalidated", response.summaries_invalidated);
    w.kv("wall_seconds", deterministic ? 0.0 : response.wall_seconds, 4);
    w.key("report");
    // render_json_report emits a complete compact object; splice it in as
    // the final member rather than re-serializing every finding here.
    line << render_json_report(response.result) << "}";
    return line.str();
}

std::string render_stats_line(const CacheStats& stats, bool deterministic) {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("file_entries", stats.file_entries);
    w.kv("summary_entries", stats.summary_entries);
    w.kv("result_entries", stats.result_entries);
    w.kv("bytes_resident", deterministic ? uint64_t{0} : stats.bytes_resident);
    w.kv("file_hits", stats.file_hits);
    w.kv("file_misses", stats.file_misses);
    w.kv("summary_hits", stats.summary_hits);
    w.kv("summary_misses", stats.summary_misses);
    w.kv("result_hits", stats.result_hits);
    w.kv("evictions", stats.evictions);
    w.kv("invalidations", stats.invalidations);
    w.kv("shed_entries", stats.shed_entries);
    w.kv("shards", static_cast<uint64_t>(stats.shards.size()));
    w.end_object();
    return line.str();
}

int serve_ndjson(std::istream& in, std::ostream& out,
                 const ServeOptions& options) {
    AnalysisService own_service;
    AnalysisService& service =
        options.service ? *options.service : own_service;
    int served = 0;

    std::string line;
    for (;;) {
        const LineStatus status =
            read_ndjson_line(in, line, options.max_line_bytes);
        if (status == LineStatus::kEof) break;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        ++served;
        if (status == LineStatus::kOversized) {
            out << render_error_line("request line exceeds " +
                                     std::to_string(options.max_line_bytes) +
                                     " bytes")
                << "\n"
                << std::flush;
            continue;
        }

        const NdjsonRequest request = parse_ndjson_request(line);
        switch (request.op) {
        case NdjsonRequest::Op::kQuit:
            out << render_bye_line() << "\n" << std::flush;
            return served;
        case NdjsonRequest::Op::kStats:
            out << render_stats_line(service.cache_stats(),
                                     options.deterministic)
                << "\n"
                << std::flush;
            continue;
        case NdjsonRequest::Op::kClear:
            service.clear_cache();
            out << render_ok_line() << "\n" << std::flush;
            continue;
        case NdjsonRequest::Op::kInvalid:
            out << render_error_line(request.error) << "\n" << std::flush;
            continue;
        case NdjsonRequest::Op::kScan:
            break;
        }
        // The synchronous loop runs one scan at a time, so a slot's
        // previous request is always already answered — supersede slots
        // only matter to the pipelined sessions in service/server.h.
        out << render_scan_line(service.scan(request.scan),
                                options.deterministic)
            << "\n"
            << std::flush;
    }
    return served;
}

}  // namespace phpsafe::service
