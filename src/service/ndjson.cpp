#include "service/ndjson.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/export.h"
#include "service/service.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace phpsafe::service {

namespace fs = std::filesystem;

namespace {

void reply_error(std::ostream& out, const std::string& message) {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object().kv("ok", false).kv("error", message).end_object();
    out << line.str() << "\n" << std::flush;
}

/// Loads all *.php files under `root` (recursively, path-sorted so the
/// request fingerprint is stable across directory iteration order).
bool load_directory(const std::string& root,
                    std::vector<SourceFileSpec>& files, std::string& error) {
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        error = "not a directory: " + root;
        return false;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".php")
            paths.push_back(entry.path());
    }
    if (ec) {
        error = "cannot list " + root + ": " + ec.message();
        return false;
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            error = "cannot read " + path.string();
            return false;
        }
        std::ostringstream text;
        text << in.rdbuf();
        files.push_back({fs::relative(path, root, ec).generic_string(),
                         std::move(text).str()});
    }
    if (files.empty()) {
        error = "no .php files under " + root;
        return false;
    }
    return true;
}

bool build_request(const JsonValue& request, ScanRequest& scan,
                   std::string& error) {
    scan.preset = request.string_or("preset", "phpsafe");
    const std::string path = request.string_or("path", "");
    if (!path.empty()) {
        if (!load_directory(path, scan.files, error)) return false;
        scan.plugin =
            request.string_or("plugin", fs::path(path).filename().string());
        return true;
    }
    const JsonValue* files = request.get("files");
    if (!files || !files->is_array() || files->array.empty()) {
        error = "scan needs \"path\" or a non-empty \"files\" array";
        return false;
    }
    for (const JsonValue& file : files->array) {
        const JsonValue* name = file.get("name");
        const JsonValue* text = file.get("text");
        if (!name || !name->is_string() || !text || !text->is_string()) {
            error = "each file needs string \"name\" and \"text\"";
            return false;
        }
        scan.files.push_back({name->string, text->string});
    }
    scan.plugin = request.string_or("plugin", "stdin");
    return true;
}

void reply_scan(std::ostream& out, const ScanResponse& response,
                bool deterministic) {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("from_result_cache", response.from_result_cache);
    w.kv("deduplicated", response.deduplicated);
    w.kv("files_reused", response.files_reused);
    w.kv("summaries_seeded", response.summaries_seeded);
    w.kv("summaries_invalidated", response.summaries_invalidated);
    w.kv("wall_seconds", deterministic ? 0.0 : response.wall_seconds, 4);
    w.key("report");
    // render_json_report emits a complete compact object; splice it in as
    // the final member rather than re-serializing every finding here.
    line << render_json_report(response.result) << "}";
    out << line.str() << "\n" << std::flush;
}

void reply_stats(std::ostream& out, const CacheStats& stats,
                 bool deterministic) {
    std::ostringstream line;
    JsonWriter w(line);
    w.begin_object();
    w.kv("ok", true);
    w.kv("file_entries", stats.file_entries);
    w.kv("summary_entries", stats.summary_entries);
    w.kv("result_entries", stats.result_entries);
    w.kv("bytes_resident", deterministic ? uint64_t{0} : stats.bytes_resident);
    w.kv("file_hits", stats.file_hits);
    w.kv("file_misses", stats.file_misses);
    w.kv("summary_hits", stats.summary_hits);
    w.kv("summary_misses", stats.summary_misses);
    w.kv("result_hits", stats.result_hits);
    w.kv("evictions", stats.evictions);
    w.kv("invalidations", stats.invalidations);
    w.end_object();
    out << line.str() << "\n" << std::flush;
}

}  // namespace

int serve_ndjson(std::istream& in, std::ostream& out,
                 const ServeOptions& options) {
    AnalysisService own_service;
    AnalysisService& service =
        options.service ? *options.service : own_service;
    int served = 0;

    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        ++served;

        JsonValue request;
        std::string error;
        if (!JsonReader::parse(line, request, &error) || !request.is_object()) {
            reply_error(out,
                        error.empty() ? "request must be a JSON object" : error);
            continue;
        }

        const std::string op = request.string_or("op", "");
        if (op == "quit" || op == "shutdown") {
            std::ostringstream bye;
            JsonWriter w(bye);
            w.begin_object().kv("ok", true).kv("bye", true).end_object();
            out << bye.str() << "\n" << std::flush;
            break;
        }
        if (op == "stats") {
            reply_stats(out, service.cache_stats(), options.deterministic);
            continue;
        }
        if (op == "clear") {
            service.clear_cache();
            std::ostringstream ok;
            JsonWriter w(ok);
            w.begin_object().kv("ok", true).end_object();
            out << ok.str() << "\n" << std::flush;
            continue;
        }
        if (op != "scan") {
            reply_error(out, "unknown op: \"" + op + "\"");
            continue;
        }

        ScanRequest scan;
        if (!build_request(request, scan, error)) {
            reply_error(out, error);
            continue;
        }
        reply_scan(out, service.scan(std::move(scan)), options.deterministic);
    }
    return served;
}

}  // namespace phpsafe::service
