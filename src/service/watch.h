// WatchSession: the reverse-graph incremental scheduler behind the NDJSON
// "watch"/"edit" ops. A client opens a session with a full scan request,
// then streams file-change events; each edit batch answers with *delta
// findings* — what the change added and removed relative to the previous
// scan — instead of the whole report.
//
// State kept per session (this is what the whole-request warm path pays
// for on every scan and a watch session pays for once):
//   - every file's content hash and a pinned shared_ptr to its immutable
//     parsed AST (re-pinned from the service's file pool after each scan,
//     or re-parsed locally when the pool evicted it),
//   - per-file graph facts and the linked ProjectGraph
//     (graph/project_graph.h), rebuilt after each edit by re-extracting
//     facts for the changed files only,
//   - the previous scan's findings, diffed against each new scan.
//
// An edit therefore submits a request whose unchanged files are pinned
// ASTs: the service skips re-hashing, re-parsing and the per-file cache
// probes for everything outside the edit, and the request fingerprint is
// computed from content hashes alone. The invalidated cone — every file
// that transitively includes or uses a changed file, via
// ProjectGraph::dependency_cone — is computed per batch and reported in
// the delta (cone_files/cone_functions, plus the watch_* obs counters).
//
// Soundness: the cone is *advisory*. The re-scan always covers the full
// updated file set through the same AnalysisService::perform_scan path as
// a cold scan, so delta findings are byte-identical to the diff of two
// full cold re-scans by the service's standing warm==cold invariant — at
// any PHPSAFE_JOBS, any cache state, any backend. What the cone bounds is
// *cost*, not correctness: out-of-cone files ride through as pinned ASTs
// with cached summaries whose dependency validation is memoized
// (DepCheckMemo), so re-analysis work scales with the cone, not the tree
// (BENCH_graph.json). A cone-gated scan that skipped out-of-cone files
// outright would be unsound: a changed file can shadow a declaration an
// out-of-cone summary resolved, which only dependency validation against
// the full project catches.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/finding.h"
#include "graph/project_graph.h"
#include "service/service.h"

namespace phpsafe::service {

/// One batch of file-change events (the "edit" op). Upserts create or
/// replace files; removals delete them. A name in both lists is an error.
struct WatchEditBatch {
    std::vector<SourceFileSpec> upserts;  ///< name + text
    std::vector<std::string> removals;
};

/// Answer to one edit batch.
struct WatchDelta {
    bool ok = false;
    std::string error;          ///< set when !ok (nothing was applied)
    int changed_files = 0;      ///< upserts + removals applied
    int cone_files = 0;         ///< invalidated cone size (incl. the edits)
    int cone_functions = 0;     ///< function nodes declared by cone files
    /// Findings present after the edit but not before / before but not
    /// after, diffed by canonical serialization (report/export.h
    /// finding_json) honoring multiplicity, in result order.
    std::vector<Finding> added;
    std::vector<Finding> removed;
    ScanResponse response;      ///< the underlying full re-scan
};

class WatchSession {
public:
    /// The service is shared (it outlives the session); scans submitted by
    /// the session go through its normal queue and caches.
    explicit WatchSession(AnalysisService& service) : service_(service) {}

    bool active() const noexcept { return active_; }
    int file_count() const noexcept { return static_cast<int>(files_.size()); }

    /// Opens (or re-opens, replacing all state) the session: runs a full
    /// scan of `request` and captures the baseline. The response is the
    /// ordinary scan response for the request.
    ScanResponse open(ScanRequest request);

    /// Applies one edit batch and re-scans. The batch must change at least
    /// one file; removals must name files the session holds.
    WatchDelta edit(const WatchEditBatch& batch);

    /// The current project graph (null before open()).
    const graph::ProjectGraph* graph() const noexcept { return graph_.get(); }

    /// Findings of the most recent scan.
    const std::vector<Finding>& baseline_findings() const noexcept {
        return baseline_;
    }

    /// Snapshot of the session's current full request — plugin, preset,
    /// backend and the complete file set with pinned ASTs. The session-
    /// aware "validate" op replays this through AnalysisService::validate,
    /// fingerprint-compatible with the session's own scans. Empty (no
    /// files) before open().
    ScanRequest request() const {
        return active_ ? assemble_request() : ScanRequest{};
    }

private:
    struct FileState {
        uint64_t hash = 0;
        std::shared_ptr<const php::ParsedFile> parsed;  ///< pinned AST
        std::string text;  ///< kept only while `parsed` is null
        graph::FileFacts facts;
        bool dirty = true;  ///< facts/pin stale (new or edited)
    };

    /// The session's full file set as a scan request (files in name
    /// order — deterministic like load_directory's path sort).
    ScanRequest assemble_request() const;
    /// Pins ASTs and re-extracts facts for dirty files, then relinks the
    /// graph — unless every edited file kept its graph structure
    /// (structure_equals), in which case the linked graph is reused and
    /// only node hashes refresh. Runs after every scan.
    void refresh_state();

    AnalysisService& service_;
    ScanRequest base_;  ///< plugin/preset/backend/priority (files unused)
    std::map<std::string, FileState> files_;
    std::vector<Finding> baseline_;
    std::unique_ptr<graph::ProjectGraph> graph_;
    bool active_ = false;
    /// Files were added or removed since the last relink — the graph must
    /// rebuild even if every surviving file kept its structure.
    bool graph_stale_ = true;
};

/// Builds the project graph of a standalone request (no session), reusing
/// the service's file pool for parsed files — the "graph" op with an
/// explicit "path"/"files" payload.
graph::ProjectGraph build_request_graph(AnalysisService& service,
                                        const ScanRequest& request);

}  // namespace phpsafe::service
