// Newline-delimited JSON protocol for the AnalysisService — the transport
// behind tools/phpsafe_serve. One JSON request object per input line, one
// JSON response object per output line:
//
//   {"op":"scan","path":"/plugin/dir"}            scan *.php under a directory
//   {"op":"scan","plugin":"p","files":[{"name":"a.php","text":"<?php ..."}]}
//   {"op":"scan",...,"preset":"rips"}             preset: phpsafe|rips|pixy
//   {"op":"stats"}                                cache statistics
//   {"op":"clear"}                                drop all cache pools
//   {"op":"quit"}                                 exit cleanly
//
// Scan responses carry the same report object render_json_report() emits
// for the batch tools, plus cache effectiveness fields; errors are
// {"ok":false,"error":"..."}. Living in the library (not the tool's main)
// makes the protocol drivable from tests over string streams.
#pragma once

#include <iosfwd>

namespace phpsafe::service {

class AnalysisService;

struct ServeOptions {
    /// Service to drive (caller keeps ownership, caches persist across
    /// calls); null = serve() runs a private service for the session.
    AnalysisService* service = nullptr;

    /// Zero the fields that vary run-to-run (wall_seconds, bytes_resident)
    /// so a scripted session produces a byte-identical transcript — the
    /// golden protocol test depends on this.
    bool deterministic = false;
};

/// Serves requests from `in` until EOF or a quit op; responses go to
/// `out`, one per line, flushed. Returns the number of lines processed
/// (blank lines excluded).
int serve_ndjson(std::istream& in, std::ostream& out,
                 const ServeOptions& options = {});

}  // namespace phpsafe::service
