// Newline-delimited JSON protocol for the AnalysisService — the transport
// behind tools/phpsafe_serve. One JSON request object per input line, one
// JSON response object per output line:
//
//   {"op":"scan","path":"/plugin/dir"}            scan *.php under a directory
//   {"op":"scan","plugin":"p","files":[{"name":"a.php","text":"<?php ..."}]}
//   {"op":"scan",...,"preset":"rips"}             preset: phpsafe|rips|pixy
//   {"op":"scan",...,"backend":"ir"}              taint backend: ast|ir|
//                                                 differential (default:
//                                                 the preset's backend)
//   {"op":"scan",...,"priority":5}                higher dispatches sooner
//   {"op":"scan",...,"slot":"editor"}             supersedes the slot's
//                                                 previous still-queued scan
//   {"op":"stats"}                                cache statistics
//   {"op":"clear"}                                drop all cache pools
//   {"op":"quit"}                                 end the session cleanly
//
// Watch mode (docs/graph.md) — per-session incremental state:
//   {"op":"watch",...}                            scan + open a watch
//                                                 session (same keys as
//                                                 scan, minus "slot")
//   {"op":"edit","files":[...],"remove":[...]}    apply a change batch;
//                                                 answers delta findings
//                                                 ("added"/"removed") plus
//                                                 the invalidated cone size
//   {"op":"graph"}                                analytics of the watch
//                                                 session's project graph
//   {"op":"graph","path":...} / "files":[...]     ... of a standalone tree
//   {"op":"graph",...,"detail":true}              + full nodes and edges
//
// Validation (docs/validation.md) — batch exploit confirmation + fixes:
//   {"op":"validate",...}                         scan + tier every finding
//                                                 (same payload keys as
//                                                 watch); cached by request
//                                                 fingerprint
//   {"op":"validate"}                             ... of the open watch
//                                                 session's file set
//
// Scan responses carry the same report object render_json_report() emits
// for the batch tools, plus cache effectiveness fields. Every error —
// malformed JSON, unknown op, unknown key, bad payload, oversized line —
// is the ONE structured shape {"ok":false,"error":"..."} regardless of
// which loop (serve_ndjson or the multi-session server) parsed the
// request; requests carrying keys their op does not define are rejected,
// not silently ignored. Living in the library (not the tool's main) makes
// the protocol drivable from tests over string streams.
//
// The file splits into three layers so the single-client loop and the
// multi-session server (service/server.h) share one wire format:
//   - read_ndjson_line: a byte-capped line reader (bounded request memory),
//   - parse_ndjson_request / render_*_line: framing in both directions,
//   - serve_ndjson: the synchronous read-execute-reply loop over one stream
//     pair, which the golden protocol test drives.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/project_graph.h"
#include "service/service.h"
#include "service/watch.h"

namespace phpsafe::service {

struct ServeOptions {
    /// Service to drive (caller keeps ownership, caches persist across
    /// calls); null = serve() runs a private service for the session.
    AnalysisService* service = nullptr;

    /// Zero the fields that vary run-to-run (wall_seconds, bytes_resident)
    /// so a scripted session produces a byte-identical transcript — the
    /// golden protocol test depends on this.
    bool deterministic = false;

    /// Longest accepted request line in bytes; longer lines are answered
    /// with an error and skipped without being buffered whole. 0 means
    /// unbounded (stdin tools); the multi-session server sets a bound.
    size_t max_line_bytes = 0;
};

/// Outcome of one capped line read.
enum class LineStatus {
    kOk,        ///< a complete line (or a truncated final line at EOF)
    kEof,       ///< end of input, nothing read
    kOversized  ///< line exceeded the cap; its remainder was discarded
};

/// Reads one newline-terminated line into `line`, buffering at most
/// `max_bytes` of it (0 = unbounded). An oversized line is consumed to its
/// terminator but only the first `max_bytes` are kept. A final line without
/// a trailing newline is returned as kOk — partial trailing requests are
/// the sender's problem, not a reason to drop them silently.
LineStatus read_ndjson_line(std::istream& in, std::string& line,
                            size_t max_bytes);

/// One decoded request line.
struct NdjsonRequest {
    enum class Op {
        kScan, kWatch, kEdit, kGraph, kValidate, kStats, kClear, kQuit,
        kInvalid
    };
    Op op = Op::kInvalid;
    ScanRequest scan;    ///< populated for kScan/kWatch/kGraph/kValidate
                         ///< when the request carries a payload
    std::string slot;    ///< optional supersede key for kScan ("" = none)
    WatchEditBatch edit; ///< populated for kEdit
    bool graph_detail = false;     ///< kGraph: include full nodes + edges
    bool graph_has_payload = false;  ///< kGraph: "path"/"files" present
    bool validate_has_payload = false;  ///< kValidate: "path"/"files" present
    std::string error;   ///< populated for kInvalid
};

/// Parses one request line (JSON object with an "op"). Never throws; bad
/// input yields Op::kInvalid with `error` set.
NdjsonRequest parse_ndjson_request(const std::string& line);

/// Response renderers. Each returns one complete JSON line WITHOUT the
/// trailing newline, so callers control write atomicity (the multi-session
/// server appends the newline inside its synchronized line writer).
std::string render_error_line(const std::string& message);
std::string render_ok_line();
std::string render_bye_line();
std::string render_scan_line(const ScanResponse& response, bool deterministic);
std::string render_stats_line(const CacheStats& stats, bool deterministic);
/// The scan response of a watch open, tagged "watch":true with the
/// session's tracked file count.
std::string render_watch_line(const ScanResponse& response, int files,
                              bool deterministic);
/// One edit batch's answer: cone size + delta findings (or the structured
/// error when the delta is not ok).
std::string render_edit_line(const WatchDelta& delta, bool deterministic);
/// Graph analytics, optionally with the full serialized graph.
std::string render_graph_line(const graph::ProjectGraph& g, bool detail);
/// One validate response: tier counts, verified quickfixes and the tiered
/// report (each finding carrying its "confidence").
std::string render_validate_line(const ValidateResponse& response,
                                 bool deterministic);

/// Serves requests from `in` until EOF or a quit op; responses go to
/// `out`, one per line, flushed. Returns the number of lines processed
/// (blank lines excluded).
int serve_ndjson(std::istream& in, std::ostream& out,
                 const ServeOptions& options = {});

}  // namespace phpsafe::service
