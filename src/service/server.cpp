#include "service/server.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <istream>
#include <map>
#include <ostream>
#include <thread>
#include <utility>

namespace phpsafe::service {

void SyncLineWriter::write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << "\n" << std::flush;
}

AnalysisServer::AnalysisServer(ServerOptions options)
    : options_(std::move(options)),
      owned_service_(std::make_unique<AnalysisService>(options_.service)),
      service_(owned_service_.get()) {}

AnalysisServer::AnalysisServer(AnalysisService& service, ServerOptions options)
    : options_(std::move(options)), service_(&service) {}

AnalysisServer::~AnalysisServer() = default;

namespace {

/// One response the session owes its client, in request order. Scan items
/// carry the ticket the writer must await; everything else carries a
/// deferred renderer, evaluated only when the writer reaches it — so a
/// `stats` request observes every scan the session submitted before it,
/// and `clear` cannot race past an in-flight earlier scan of its own
/// session. stats/clear are additionally *barriers*: the reader stops
/// submitting until their renderer has run, so the snapshot they take is
/// exactly what the serial serve_ndjson loop would see (no later scan of
/// this session has been admitted yet).
struct SessionItem {
    AnalysisService::Ticket ticket;
    std::function<std::string()> render;
};

/// The in-order response pump of one session. The reader thread pushes,
/// the writer thread pops; close() marks the end of the request stream.
class SessionQueue {
public:
    void push(SessionItem item) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
    }

    void close() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_one();
    }

    /// Pops the next item; false once the queue is closed and drained.
    bool pop(SessionItem& out) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty()) return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<SessionItem> items_;
    bool closed_ = false;
};

}  // namespace

int AnalysisServer::serve_session(std::istream& in, SyncLineWriter& out,
                                  int base_priority) {
    AnalysisService& service = *service_;
    const bool deterministic = options_.deterministic;

    // Per-session watch state. Touched only from the writer thread (watch
    // ops are barrier items), so no lock of its own is needed.
    WatchSession watch(service);

    SessionQueue queue;
    std::thread writer([&] {
        SessionItem item;
        while (queue.pop(item)) {
            if (item.ticket.valid())
                out.write_line(render_scan_line(service.await(item.ticket),
                                                deterministic));
            else
                out.write_line(item.render());
        }
    });

    // Last still-relevant scan per supersede slot: a new request in the
    // slot cancels its predecessor if that one has not started yet.
    std::map<std::string, AnalysisService::Ticket> slots;

    int served = 0;
    std::string line;
    bool quit = false;
    while (!quit) {
        const LineStatus status =
            read_ndjson_line(in, line, options_.max_line_bytes);
        if (status == LineStatus::kEof) break;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        ++served;
        if (status == LineStatus::kOversized) {
            const std::string message =
                render_error_line("request line exceeds " +
                                  std::to_string(options_.max_line_bytes) +
                                  " bytes");
            queue.push({{}, [message] { return message; }});
            continue;
        }

        NdjsonRequest request = parse_ndjson_request(line);
        switch (request.op) {
        case NdjsonRequest::Op::kQuit:
            queue.push({{}, [] { return render_bye_line(); }});
            quit = true;
            break;
        case NdjsonRequest::Op::kStats: {
            auto rendered = std::make_shared<std::promise<void>>();
            std::future<void> barrier = rendered->get_future();
            queue.push({{}, [&service, deterministic, rendered] {
                            std::string reply = render_stats_line(
                                service.cache_stats(), deterministic);
                            rendered->set_value();
                            return reply;
                        }});
            barrier.wait();
            break;
        }
        case NdjsonRequest::Op::kClear: {
            auto rendered = std::make_shared<std::promise<void>>();
            std::future<void> barrier = rendered->get_future();
            queue.push({{}, [&service, rendered] {
                            service.clear_cache();
                            rendered->set_value();
                            return render_ok_line();
                        }});
            barrier.wait();
            break;
        }
        case NdjsonRequest::Op::kInvalid: {
            const std::string message = render_error_line(request.error);
            queue.push({{}, [message] { return message; }});
            break;
        }
        // Watch ops are barriers like stats/clear: their renderer runs the
        // scan and mutates the session state on the writer thread, after
        // every earlier response and before any later request is admitted —
        // exactly the serial serve_ndjson order, so watch transcripts are
        // byte-identical between the two loops.
        case NdjsonRequest::Op::kWatch: {
            auto rendered = std::make_shared<std::promise<void>>();
            std::future<void> barrier = rendered->get_future();
            queue.push({{}, [&watch, deterministic, rendered,
                             scan = std::move(request.scan)]() mutable {
                            // Sequence open() before file_count().
                            const ScanResponse response =
                                watch.open(std::move(scan));
                            std::string reply = render_watch_line(
                                response, watch.file_count(), deterministic);
                            rendered->set_value();
                            return reply;
                        }});
            barrier.wait();
            break;
        }
        case NdjsonRequest::Op::kEdit: {
            auto rendered = std::make_shared<std::promise<void>>();
            std::future<void> barrier = rendered->get_future();
            queue.push({{}, [&watch, deterministic, rendered,
                             edit = std::move(request.edit)] {
                            std::string reply = render_edit_line(
                                watch.edit(edit), deterministic);
                            rendered->set_value();
                            return reply;
                        }});
            barrier.wait();
            break;
        }
        case NdjsonRequest::Op::kGraph: {
            auto rendered = std::make_shared<std::promise<void>>();
            std::future<void> barrier = rendered->get_future();
            queue.push(
                {{}, [&watch, &service, rendered,
                      has_payload = request.graph_has_payload,
                      detail = request.graph_detail,
                      scan = std::move(request.scan)] {
                     std::string reply;
                     if (has_payload)
                         reply = render_graph_line(
                             build_request_graph(service, scan), detail);
                     else if (watch.graph())
                         reply = render_graph_line(*watch.graph(), detail);
                     else
                         reply = render_error_line(
                             "graph needs an open watch session or a "
                             "\"path\"/\"files\" payload");
                     rendered->set_value();
                     return reply;
                 }});
            barrier.wait();
            break;
        }
        case NdjsonRequest::Op::kValidate: {
            auto rendered = std::make_shared<std::promise<void>>();
            std::future<void> barrier = rendered->get_future();
            queue.push(
                {{}, [&watch, &service, deterministic, rendered,
                      has_payload = request.validate_has_payload,
                      scan = std::move(request.scan)] {
                     std::string reply;
                     if (has_payload)
                         reply = render_validate_line(service.validate(scan),
                                                      deterministic);
                     else if (watch.active())
                         reply = render_validate_line(
                             service.validate(watch.request()),
                             deterministic);
                     else
                         reply = render_error_line(
                             "validate needs an open watch session or a "
                             "\"path\"/\"files\" payload");
                     rendered->set_value();
                     return reply;
                 }});
            barrier.wait();
            break;
        }
        case NdjsonRequest::Op::kScan: {
            request.scan.priority += base_priority;
            AnalysisService::Ticket ticket =
                service.submit(std::move(request.scan));
            if (!request.slot.empty()) {
                const auto previous = slots.find(request.slot);
                if (previous != slots.end())
                    service.cancel(previous->second);
                slots[request.slot] = ticket;
            }
            queue.push({std::move(ticket), {}});
            break;
        }
        }
    }

    queue.close();
    writer.join();
    return served;
}

int AnalysisServer::serve_session(std::istream& in, std::ostream& out,
                                  int base_priority) {
    SyncLineWriter writer(out);
    return serve_session(in, writer, base_priority);
}

}  // namespace phpsafe::service
