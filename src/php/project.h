// Project model: a plugin is a set of PHP files analyzed together. The
// model-construction stage (paper §III.B) parses every file, collects all
// user-defined functions/classes — wherever they are declared, including
// inside conditional blocks (`if (!function_exists(...))` guards are common
// in WordPress plugins) — and records which functions are called from
// plugin code so the engine can analyze the never-called ones too.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "php/ast.h"
#include "util/diagnostics.h"
#include "util/source.h"

namespace phpsafe::php {

struct ParsedFile {
    std::unique_ptr<SourceFile> source;
    FileUnit unit;
    bool parse_failed = false;  ///< a kFatal diagnostic was recorded
};

/// Where a function/method declaration lives.
struct FunctionRef {
    const FunctionDecl* decl = nullptr;
    const ClassDecl* owner = nullptr;  ///< null for free functions
    std::string file;

    /// "name" for free functions, "Class::name" for methods.
    std::string qualified_name() const;
};

class Project {
public:
    /// CPU cost of model construction, split by stage. parse_all() adds to
    /// these; lex covers tokenization, parse covers tree building plus
    /// declaration indexing.
    struct BuildStats {
        double lex_cpu_seconds = 0;
        double parse_cpu_seconds = 0;
    };

    explicit Project(std::string name) : name_(std::move(name)) {}

    Project(Project&&) = default;
    Project& operator=(Project&&) = default;

    const std::string& name() const noexcept { return name_; }

    /// Registers a file; call parse_all() afterwards.
    void add_file(std::string file_name, std::string text);

    /// Parses every registered file and builds the declaration tables.
    void parse_all(DiagnosticSink& sink);

    const BuildStats& build_stats() const noexcept { return build_stats_; }

    const std::vector<ParsedFile>& files() const noexcept { return files_; }

    /// Total lines across all files (the paper reports corpus KLOC).
    int total_lines() const noexcept;

    /// Free function lookup (case-insensitive, as in PHP).
    const FunctionRef* find_function(std::string_view name) const;

    /// Class lookup (case-insensitive).
    const ClassDecl* find_class(std::string_view name) const;

    /// Method lookup honoring single inheritance.
    const FunctionRef* find_method(std::string_view class_name,
                                   std::string_view method_name) const;

    /// Resolves a method by name alone when exactly one class declares it
    /// (used when the receiver's class cannot be inferred; mirrors the
    /// paper's backward name search over the token stream).
    const FunctionRef* find_method_any(std::string_view method_name) const;

    /// All declared functions and methods, in declaration order.
    const std::vector<FunctionRef>& all_functions() const noexcept {
        return function_list_;
    }

    /// Names of free functions called anywhere in plugin code (lowercased).
    const std::set<std::string>& called_function_names() const noexcept {
        return called_functions_;
    }

    /// "class::method" pairs called anywhere in plugin code (lowercased).
    const std::set<std::string>& called_method_names() const noexcept {
        return called_methods_;
    }

    /// Functions and methods never called from plugin code (paper §III.C:
    /// these must still be analyzed — the CMS may call them directly).
    std::vector<FunctionRef> uncalled_functions() const;

    /// Resolves an include path literal to a parsed file of this project,
    /// matching by exact name, then suffix, then basename. Returns null for
    /// external (CMS / PHP library) includes.
    const ParsedFile* resolve_include(std::string_view path) const;

private:
    void index_statements(const std::vector<StmtPtr>& stmts, const std::string& file);
    void record_calls_expr(const Expr& e);
    void record_calls_stmt(const Stmt& s);

    std::string name_;
    std::vector<ParsedFile> files_;
    std::vector<std::pair<std::string, std::string>> pending_;  ///< (name, text)
    std::map<std::string, FunctionRef> functions_;  ///< key: lowercase name
    std::map<std::string, const ClassDecl*> classes_;
    std::map<std::string, FunctionRef> methods_;  ///< key: "class::method" lc
    std::vector<FunctionRef> function_list_;
    std::set<std::string> called_functions_;
    std::set<std::string> called_methods_;  ///< "class::method" or "::method"
    BuildStats build_stats_;
};

}  // namespace phpsafe::php
