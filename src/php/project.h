// Project model: a plugin is a set of PHP files analyzed together. The
// model-construction stage (paper §III.B) parses every file, collects all
// user-defined functions/classes — wherever they are declared, including
// inside conditional blocks (`if (!function_exists(...))` guards are common
// in WordPress plugins) — and records which functions are called from
// plugin code so the engine can analyze the never-called ones too.
//
// Incremental-analysis hooks (service/): every file carries a stable
// content hash (fnv1a64 of its text), parsed files are held by shared
// pointer so an immutable AST can be shared between the project that parsed
// it, the service's content-addressed cache, and any later project built
// for a new version of the plugin, and `add_parsed()` lets a builder inject
// an already-parsed file instead of re-lexing identical content.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "php/ast.h"
#include "util/arena.h"
#include "util/diagnostics.h"
#include "util/source.h"
#include "util/strings.h"

namespace phpsafe::php {

/// One immutable parsed file. The AST's nodes and every string_view hanging
/// off them point into `arena` or `source`; member order matters — `unit` is
/// destroyed first, then the arena, then the source text, so nothing dangles
/// during teardown. Holders of node pointers (engine scopes, summaries,
/// findings) must either keep the owning shared_ptr alive or copy/intern the
/// strings they retain (see docs/performance.md).
struct ParsedFile {
    std::unique_ptr<SourceFile> source;
    Arena arena;  ///< backs all AST nodes + decoded/synthesized strings
    FileUnit unit;
    bool parse_failed = false;  ///< a kFatal diagnostic was recorded
    uint64_t content_hash = 0;  ///< fnv1a64 of the source text
    uint64_t text_bytes = 0;    ///< source text size
    uint64_t ast_nodes = 0;     ///< AST nodes built for this file
};

/// Stable content hash of one file's text; the key of every file-level
/// entry in the incremental service's cache.
uint64_t content_hash(std::string_view text) noexcept;

/// Where a function/method declaration lives. `file` is a view of the
/// declaring ParsedFile's unit.file_name — valid as long as the Project
/// (which pins every ParsedFile by shared_ptr) is alive, and copying a
/// FunctionRef never touches the heap.
struct FunctionRef {
    const FunctionDecl* decl = nullptr;
    const ClassDecl* owner = nullptr;  ///< null for free functions
    std::string_view file;

    /// "name" for free functions, "Class::name" for methods.
    std::string qualified_name() const;
};

class Project {
public:
    /// CPU cost of model construction, split by stage. parse_all() adds to
    /// these; lex covers tokenization, parse covers tree building plus
    /// declaration indexing. Files injected via add_parsed() cost neither.
    struct BuildStats {
        double lex_cpu_seconds = 0;
        double parse_cpu_seconds = 0;
        int files_reused = 0;  ///< files injected pre-parsed (cache hits)
    };

    explicit Project(std::string name) : name_(std::move(name)) {}

    Project(Project&&) = default;
    Project& operator=(Project&&) = default;

    const std::string& name() const noexcept { return name_; }

    /// Registers a file; call parse_all() afterwards.
    void add_file(std::string file_name, std::string text);

    /// Injects an already-parsed, immutable file (shared with whoever parsed
    /// it — typically the service's AST cache). Keeps registration order
    /// relative to add_file() calls; call parse_all() afterwards to index it.
    void add_parsed(std::shared_ptr<const ParsedFile> file);

    /// Parses every registered file and builds the declaration tables.
    void parse_all(DiagnosticSink& sink);

    /// Parses `text` as a replacement for the existing file `file_name` and
    /// returns a project equal to the one add_file()+parse_all() would build
    /// over the patched file set — same files, same declaration tables in
    /// the same declaration order, same called-name sets — without re-lexing
    /// or re-walking any unchanged file. Every other ParsedFile is shared
    /// with this project (both pin them by shared_ptr, so neither project's
    /// lifetime depends on the other's). This is the model-construction fast
    /// path of batch quickfix verification (validate/): a single-file patch
    /// re-parses one file instead of re-indexing the whole plugin. Returns
    /// nullopt when `file_name` names no file of this project.
    std::optional<Project> fork_with_replacement(std::string_view file_name,
                                                 std::string text,
                                                 DiagnosticSink& sink) const;

    const BuildStats& build_stats() const noexcept { return build_stats_; }

    const std::vector<std::shared_ptr<const ParsedFile>>& files() const noexcept {
        return files_;
    }

    /// Total lines across all files (the paper reports corpus KLOC).
    int total_lines() const noexcept;

    /// Exact-name file lookup (used by the service's dependency validation).
    const ParsedFile* file_named(std::string_view name) const;

    /// Free function lookup (case-insensitive, as in PHP).
    const FunctionRef* find_function(std::string_view name) const;

    /// Class lookup (case-insensitive).
    const ClassDecl* find_class(std::string_view name) const;

    /// File declaring `class_name` (case-insensitive); empty when unknown.
    const std::string& file_of_class(std::string_view class_name) const;

    /// Method lookup honoring single inheritance.
    const FunctionRef* find_method(std::string_view class_name,
                                   std::string_view method_name) const;

    /// Resolves a method by name alone when exactly one class declares it
    /// (used when the receiver's class cannot be inferred; mirrors the
    /// paper's backward name search over the token stream).
    const FunctionRef* find_method_any(std::string_view method_name) const;

    /// All declared functions and methods, in declaration order.
    const std::vector<FunctionRef>& all_functions() const noexcept {
        return function_list_;
    }

    /// Rendering of every declaration the named file contributes (classes,
    /// then functions/methods), in declaration order. Two projects agreeing
    /// on a file's declaration fingerprint resolve every name outside that
    /// file identically — the soundness gate for reusing function summaries
    /// across a single-file patch (validate/).
    std::string declaration_fingerprint(std::string_view file) const;

    /// Names of free functions called anywhere in plugin code (lowercased).
    const std::set<std::string>& called_function_names() const noexcept {
        return called_functions_;
    }

    /// "class::method" pairs called anywhere in plugin code (lowercased).
    const std::set<std::string>& called_method_names() const noexcept {
        return called_methods_;
    }

    /// Functions and methods never called from plugin code (paper §III.C:
    /// these must still be analyzed — the CMS may call them directly).
    std::vector<FunctionRef> uncalled_functions() const;

    /// Resolves an include path literal to a parsed file of this project,
    /// matching by exact name, then suffix, then basename. Returns null for
    /// external (CMS / PHP library) includes.
    const ParsedFile* resolve_include(std::string_view path) const;

private:
    void index_statements(const ArenaVector<StmtPtr>& stmts, const std::string& file);
    void record_calls_expr(const Expr& e);
    void record_calls_stmt(const Stmt& s);
    /// Lexes + parses one file into an immutable ParsedFile (the body of the
    /// parse_all() pending loop, shared with fork_with_replacement()).
    static std::shared_ptr<const ParsedFile> parse_file(std::string name,
                                                        std::string text,
                                                        DiagnosticSink& sink,
                                                        double& lex_seconds);
    /// Rebuilds the merged called-name sets from the per-file sets.
    void merge_calls();
    /// Folds `name` into the reused scratch key and records it; allocates
    /// only the first time a given name is seen (call sites vastly outnumber
    /// unique callees, so the hot path stays allocation-free).
    void note_called_function(std::string_view name);
    /// Records "class::method" (or "::method" when the class is unknown).
    void note_called_method(std::string_view class_name, std::string_view method);

    std::string name_;
    /// Files in registration order. Slots for add_file() entries stay null
    /// until parse_all() fills them; add_parsed() entries are set eagerly.
    std::vector<std::shared_ptr<const ParsedFile>> files_;
    struct PendingFile {
        size_t slot = 0;  ///< index into files_
        std::string name;
        std::string text;
    };
    std::vector<PendingFile> pending_;
    /// Declaration tables. Keys are views of the declaration names, which
    /// live in the owning file's arena (pinned by files_), under the
    /// transparent FoldedLess comparator — so indexing a declaration costs
    /// one tree-node allocation and lookups pass mixed-case string_views
    /// straight from AST nodes without allocating a folded temporary.
    std::map<std::string_view, FunctionRef, FoldedLess> functions_;
    std::map<std::string_view, const ClassDecl*, FoldedLess> classes_;
    /// Values point at the declaring file's unit.file_name (stable).
    std::map<std::string_view, const std::string*, FoldedLess> class_files_;
    /// Methods are keyed (class, method) — both views — folded per part.
    struct MethodKey {
        std::string_view class_name;
        std::string_view method;
    };
    struct MethodKeyLess {
        using is_transparent = void;
        constexpr bool operator()(const MethodKey& a,
                                  const MethodKey& b) const noexcept {
            const int c = folded_compare(a.class_name, b.class_name);
            if (c != 0) return c < 0;
            return folded_compare(a.method, b.method) < 0;
        }
    };
    std::map<MethodKey, FunctionRef, MethodKeyLess> methods_;
    std::vector<FunctionRef> function_list_;
    /// Every class declaration in declaration order with its declaring
    /// file's stable unit.file_name. Like function_list_, this keeps full
    /// provenance (the maps above drop duplicate declarations), so
    /// fork_with_replacement() can rebuild the class tables exactly.
    std::vector<std::pair<const ClassDecl*, const std::string*>> class_list_;
    std::set<std::string> called_functions_;
    std::set<std::string> called_methods_;  ///< "class::method" or "::method"
    /// Per-file contribution to the called-name sets, parallel to files_.
    /// parse_all() fills it and merges into the global sets; recording
    /// provenance is what lets fork_with_replacement() subtract exactly the
    /// replaced file's calls without re-walking every other file's AST.
    struct FileCalls {
        std::set<std::string> functions;
        std::set<std::string> methods;
    };
    std::vector<FileCalls> file_calls_;
    FileCalls* current_calls_ = nullptr;  ///< target of note_called_* during indexing
    std::string call_key_;  ///< scratch buffer for note_called_* key folding
    BuildStats build_stats_;
};

}  // namespace phpsafe::php
