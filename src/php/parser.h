// Recursive-descent parser producing the AST in php/ast.h from the lexer's
// token stream. Covers the PHP 5/7 subset found in CMS plugin code:
// procedural statements, alternative syntax (if: ... endif;), classes /
// interfaces / traits, closures, heredocs, string interpolation, includes
// and inline HTML. Errors are recovered (token skipped, diagnostic logged)
// so one bad construct never aborts a whole-plugin analysis — matching the
// robustness behaviour the paper measures in Section V.E.
#pragma once

#include <string_view>
#include <vector>

#include "php/ast.h"
#include "php/token.h"
#include "util/arena.h"
#include "util/diagnostics.h"
#include "util/source.h"

namespace phpsafe::php {

struct ParserOptions {
    /// Abort with a kFatal diagnostic after this many recovered parse
    /// errors in one file (robustness modelling; 0 = never abort).
    int max_errors = 200;
    /// Combined statement/expression nesting limit. Exceeding it aborts the
    /// file with an explicit kFatal diagnostic instead of letting recursive
    /// descent overflow the stack on adversarial input like 100k nested
    /// parentheses (0 = unlimited; the byte fuzzer runs with the default).
    /// A block statement costs two levels (statement + enclosing block), so
    /// 1000 admits ~500 nested blocks — far beyond real plugin code while
    /// keeping worst-case stack use a few hundred KiB.
    int max_depth = 1000;
};

class Parser {
public:
    using Options = ParserOptions;

    /// All AST nodes, decoded strings and synthesized names are allocated
    /// from `arena`, which must outlive the returned FileUnit.
    Parser(const SourceFile& file, Arena& arena, DiagnosticSink& sink,
           Options options = {});

    /// Lexes and parses the whole file.
    FileUnit parse();

    /// CPU seconds the constructor spent lexing (the parser lexes eagerly);
    /// lets Project::parse_all split its build time into lex vs parse.
    double lex_cpu_seconds() const noexcept { return lex_cpu_seconds_; }

    /// Parses a standalone PHP expression (used for string-interpolation
    /// parts). Returns null on failure. The expression's nodes AND its
    /// backing snippet text live in `arena`.
    static ExprPtr parse_expression_text(std::string_view php_expr,
                                         std::string_view file_name, int line,
                                         DiagnosticSink& sink, Arena& arena);

private:
    // -- token cursor ------------------------------------------------------
    const Token& peek(size_t ahead = 0) const noexcept;
    const Token& current() const noexcept { return peek(0); }
    const Token& consume();
    bool check(TokenKind kind) const noexcept { return current().kind == kind; }
    bool check_keyword(std::string_view kw) const noexcept {
        return current().is_keyword(kw);
    }
    bool accept(TokenKind kind);
    bool accept_keyword(std::string_view kw);
    bool expect(TokenKind kind, std::string_view what);
    void error_here(const std::string& message);
    /// Depth accounting for every recursive production. enter_depth()
    /// returns false once the nesting limit tripped (or after any abort),
    /// so in-flight recursion unwinds by returning null upward.
    bool enter_depth();
    void leave_depth() noexcept { --depth_; }
    struct DepthGuard {
        explicit DepthGuard(Parser& parser)
            : parser_(parser), ok_(parser.enter_depth()) {}
        ~DepthGuard() { parser_.leave_depth(); }
        DepthGuard(const DepthGuard&) = delete;
        DepthGuard& operator=(const DepthGuard&) = delete;
        explicit operator bool() const noexcept { return ok_; }

    private:
        Parser& parser_;
        bool ok_;
    };
    bool at_eof() const noexcept { return current().kind == TokenKind::kEndOfFile; }
    SourceLocation loc_here() const;
    /// Skips open/close tags and inline HTML is NOT skipped (statement).
    void skip_tags();

    // -- statements --------------------------------------------------------
    StmtPtr parse_statement();
    StmtPtr parse_block_or_statement();
    ArenaVector<StmtPtr> parse_statement_list_until(
        const std::vector<std::string_view>& end_keywords);
    StmtPtr parse_if();
    StmtPtr parse_while();
    StmtPtr parse_do_while();
    StmtPtr parse_for();
    StmtPtr parse_foreach();
    StmtPtr parse_switch();
    StmtPtr parse_return();
    StmtPtr parse_echo(bool from_open_tag);
    StmtPtr parse_global();
    StmtPtr parse_static_var();
    StmtPtr parse_unset();
    StmtPtr parse_function_decl();
    StmtPtr parse_class_decl(ClassDecl::Kind kind, bool is_abstract, bool is_final);
    StmtPtr parse_try();
    StmtPtr parse_namespace();
    StmtPtr parse_use();
    StmtPtr parse_const();
    StmtPtr parse_expression_statement();
    void parse_class_member(ClassDecl& cls);

    // -- expressions -------------------------------------------------------
    ExprPtr parse_expression(int min_bp = 0);
    ExprPtr parse_unary();
    ExprPtr parse_primary();
    ExprPtr parse_postfix(ExprPtr base);
    ExprPtr parse_variable_expr();
    ExprPtr parse_identifier_expr();
    ExprPtr parse_array_literal(TokenKind closer);
    ExprPtr parse_list_expr();
    ExprPtr parse_closure(bool is_static);
    ExprPtr parse_arrow_fn(bool is_static);
    ExprPtr parse_new();
    ExprPtr parse_string_token(const Token& tok);
    ArenaVector<Argument> parse_call_args();
    ArenaVector<Param> parse_params();
    std::string_view parse_type_hint();
    std::string_view parse_qualified_name();
    ExprPtr make_string_literal(std::string_view value, int line);

    const SourceFile& file_;
    Arena& arena_;
    /// Declared right after arena_: binds the thread's current arena for
    /// the parser's whole lifetime, so every ArenaVector child list any
    /// parse method constructs lands in the file's arena.
    Arena::Bind arena_bind_{arena_};
    DiagnosticSink& sink_;
    Options options_;
    std::vector<Token> tokens_;
    size_t pos_ = 0;
    int error_count_ = 0;
    int depth_ = 0;
    bool aborted_ = false;
    double lex_cpu_seconds_ = 0;
};

}  // namespace phpsafe::php
