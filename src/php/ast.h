// Abstract syntax tree for PHP 5/7 plugin code, covering procedural and
// object-oriented constructs (classes, properties, methods, static calls,
// `new`, `$this`). The taint engine consumes this model; the paper builds
// the same model on top of token_get_all (model-construction stage).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "util/source.h"

namespace phpsafe::php {

enum class NodeKind {
    // Expressions
    kLiteral, kInterpString, kVariable, kArrayAccess, kPropertyAccess,
    kStaticPropertyAccess, kClassConstAccess, kFunctionCall, kMethodCall,
    kStaticCall, kNew, kAssign, kBinary, kUnary, kCast, kTernary,
    kArrayLiteral, kIssetExpr, kEmptyExpr, kIncDec, kClosure, kIncludeExpr,
    kListExpr, kInstanceOf, kPrintExpr, kExitExpr,

    // Statements
    kExprStmt, kEchoStmt, kBlock, kIfStmt, kWhileStmt, kDoWhileStmt,
    kForStmt, kForeachStmt, kSwitchStmt, kBreakStmt, kContinueStmt,
    kReturnStmt, kGlobalStmt, kStaticVarStmt, kUnsetStmt, kFunctionDecl,
    kClassDecl, kInlineHtmlStmt, kTryStmt, kThrowStmt, kNamespaceStmt,
    kUseStmt, kConstStmt,
};

const char* to_string(NodeKind kind);

struct Node {
    explicit Node(NodeKind k) : kind(k) { ++obs::tls().ast_nodes; }
    virtual ~Node() = default;
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    NodeKind kind;
    int line = 0;
};

struct Expr : Node {
    using Node::Node;
};
struct Stmt : Node {
    using Node::Node;
};

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Literal final : Expr {
    enum class Type { kString, kInt, kFloat, kBool, kNull };
    Literal() : Expr(NodeKind::kLiteral) {}
    Type type = Type::kString;
    std::string value;  ///< decoded string / number text / "true"/"false"
};

/// "text $a more {$b->c}" — concatenation of literal and expression parts.
struct InterpString final : Expr {
    InterpString() : Expr(NodeKind::kInterpString) {}
    std::vector<ExprPtr> parts;  ///< Literal or arbitrary expression nodes
};

struct Variable final : Expr {
    Variable() : Expr(NodeKind::kVariable) {}
    std::string name;  ///< includes the '$', e.g. "$_GET", "$this"
};

struct ArrayAccess final : Expr {
    ArrayAccess() : Expr(NodeKind::kArrayAccess) {}
    ExprPtr base;
    ExprPtr index;  ///< null for "$a[] = ..." push syntax
};

struct PropertyAccess final : Expr {
    PropertyAccess() : Expr(NodeKind::kPropertyAccess) {}
    ExprPtr object;
    std::string property;  ///< empty if dynamic ({$expr} / $$var)
    ExprPtr property_expr; ///< set when dynamic
};

struct StaticPropertyAccess final : Expr {
    StaticPropertyAccess() : Expr(NodeKind::kStaticPropertyAccess) {}
    std::string class_name;  ///< "self"/"static"/"parent" preserved verbatim
    std::string property;    ///< without '$'
};

struct ClassConstAccess final : Expr {
    ClassConstAccess() : Expr(NodeKind::kClassConstAccess) {}
    std::string class_name;
    std::string constant;
};

struct Argument {
    ExprPtr value;
    bool by_ref = false;
    bool spread = false;
};

struct FunctionCall final : Expr {
    FunctionCall() : Expr(NodeKind::kFunctionCall) {}
    std::string name;   ///< empty when called through an expression
    ExprPtr callee;     ///< e.g. $fn(...) — set when name is empty
    std::vector<Argument> args;
};

struct MethodCall final : Expr {
    MethodCall() : Expr(NodeKind::kMethodCall) {}
    ExprPtr object;
    std::string method;     ///< empty if dynamic
    ExprPtr method_expr;    ///< set when dynamic
    std::vector<Argument> args;
};

struct StaticCall final : Expr {
    StaticCall() : Expr(NodeKind::kStaticCall) {}
    std::string class_name;  ///< "self"/"static"/"parent" preserved verbatim
    std::string method;
    std::vector<Argument> args;
};

struct New final : Expr {
    New() : Expr(NodeKind::kNew) {}
    std::string class_name;  ///< empty when dynamic (new $cls)
    ExprPtr class_expr;
    std::vector<Argument> args;
};

enum class AssignOp {
    kAssign, kConcat, kPlus, kMinus, kMul, kDiv, kMod, kPow,
    kBitAnd, kBitOr, kBitXor, kShl, kShr, kCoalesce,
};
const char* to_string(AssignOp op);

struct Assign final : Expr {
    Assign() : Expr(NodeKind::kAssign) {}
    ExprPtr target;
    ExprPtr value;
    AssignOp op = AssignOp::kAssign;
    bool by_ref = false;  ///< $a =& $b
};

enum class BinaryOp {
    kConcat, kAdd, kSub, kMul, kDiv, kMod, kPow,
    kEq, kNotEq, kIdentical, kNotIdentical, kLt, kGt, kLtEq, kGtEq, kSpaceship,
    kAnd, kOr, kXor, kBitAnd, kBitOr, kBitXor, kShl, kShr, kCoalesce,
};
const char* to_string(BinaryOp op);

struct Binary final : Expr {
    Binary() : Expr(NodeKind::kBinary) {}
    BinaryOp op = BinaryOp::kConcat;
    ExprPtr lhs;
    ExprPtr rhs;
};

enum class UnaryOp { kNot, kMinus, kPlus, kBitNot, kSuppress /* @ */ };
const char* to_string(UnaryOp op);

struct Unary final : Expr {
    Unary() : Expr(NodeKind::kUnary) {}
    UnaryOp op = UnaryOp::kNot;
    ExprPtr operand;
};

struct Cast final : Expr {
    Cast() : Expr(NodeKind::kCast) {}
    std::string type;  ///< lowercase: "int", "string", ...
    ExprPtr operand;
};

struct Ternary final : Expr {
    Ternary() : Expr(NodeKind::kTernary) {}
    ExprPtr cond;
    ExprPtr then_expr;  ///< null for the short form `?:`
    ExprPtr else_expr;
};

struct ArrayItem {
    ExprPtr key;    ///< may be null
    ExprPtr value;
    bool by_ref = false;
    bool spread = false;
};

struct ArrayLiteral final : Expr {
    ArrayLiteral() : Expr(NodeKind::kArrayLiteral) {}
    std::vector<ArrayItem> items;
};

struct IssetExpr final : Expr {
    IssetExpr() : Expr(NodeKind::kIssetExpr) {}
    std::vector<ExprPtr> vars;
};

struct EmptyExpr final : Expr {
    EmptyExpr() : Expr(NodeKind::kEmptyExpr) {}
    ExprPtr operand;
};

struct IncDec final : Expr {
    IncDec() : Expr(NodeKind::kIncDec) {}
    bool increment = true;
    bool prefix = false;
    ExprPtr operand;
};

struct Param {
    std::string name;      ///< with '$'
    std::string type_hint; ///< "" if none; class name or scalar hint
    ExprPtr default_value; ///< may be null
    bool by_ref = false;
    bool variadic = false;
};

struct Closure final : Expr {
    Closure() : Expr(NodeKind::kClosure) {}
    std::vector<Param> params;
    std::vector<std::pair<std::string, bool>> uses;  ///< (name, by_ref)
    std::vector<StmtPtr> body;
    bool is_arrow = false;  ///< fn() => expr (body holds a single return)
};

enum class IncludeKind { kInclude, kIncludeOnce, kRequire, kRequireOnce };
const char* to_string(IncludeKind kind);

struct IncludeExpr final : Expr {
    IncludeExpr() : Expr(NodeKind::kIncludeExpr) {}
    IncludeKind include_kind = IncludeKind::kInclude;
    ExprPtr path;
};

struct ListExpr final : Expr {
    ListExpr() : Expr(NodeKind::kListExpr) {}
    std::vector<ExprPtr> elements;  ///< entries may be null (skipped slots)
};

struct InstanceOf final : Expr {
    InstanceOf() : Expr(NodeKind::kInstanceOf) {}
    ExprPtr object;
    std::string class_name;
};

struct PrintExpr final : Expr {
    PrintExpr() : Expr(NodeKind::kPrintExpr) {}
    ExprPtr operand;
};

struct ExitExpr final : Expr {
    ExitExpr() : Expr(NodeKind::kExitExpr) {}
    ExprPtr operand;  ///< may be null; `die($msg)` outputs $msg (XSS sink)
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct ExprStmt final : Stmt {
    ExprStmt() : Stmt(NodeKind::kExprStmt) {}
    ExprPtr expr;
};

struct EchoStmt final : Stmt {
    EchoStmt() : Stmt(NodeKind::kEchoStmt) {}
    std::vector<ExprPtr> args;
    bool from_open_tag = false;  ///< came from `<?= ... ?>`
};

struct Block final : Stmt {
    Block() : Stmt(NodeKind::kBlock) {}
    std::vector<StmtPtr> statements;
};

struct IfStmt final : Stmt {
    IfStmt() : Stmt(NodeKind::kIfStmt) {}
    ExprPtr cond;
    StmtPtr then_branch;
    StmtPtr else_branch;  ///< may be another IfStmt (elseif) or null
};

struct WhileStmt final : Stmt {
    WhileStmt() : Stmt(NodeKind::kWhileStmt) {}
    ExprPtr cond;
    StmtPtr body;
};

struct DoWhileStmt final : Stmt {
    DoWhileStmt() : Stmt(NodeKind::kDoWhileStmt) {}
    StmtPtr body;
    ExprPtr cond;
};

struct ForStmt final : Stmt {
    ForStmt() : Stmt(NodeKind::kForStmt) {}
    std::vector<ExprPtr> init;
    std::vector<ExprPtr> cond;
    std::vector<ExprPtr> update;
    StmtPtr body;
};

struct ForeachStmt final : Stmt {
    ForeachStmt() : Stmt(NodeKind::kForeachStmt) {}
    ExprPtr iterable;
    ExprPtr key_var;    ///< may be null
    ExprPtr value_var;  ///< Variable / PropertyAccess / ListExpr
    bool by_ref = false;
    StmtPtr body;
};

struct SwitchCase {
    ExprPtr match;  ///< null for `default:`
    std::vector<StmtPtr> body;
};

struct SwitchStmt final : Stmt {
    SwitchStmt() : Stmt(NodeKind::kSwitchStmt) {}
    ExprPtr subject;
    std::vector<SwitchCase> cases;
};

struct BreakStmt final : Stmt {
    BreakStmt() : Stmt(NodeKind::kBreakStmt) {}
};
struct ContinueStmt final : Stmt {
    ContinueStmt() : Stmt(NodeKind::kContinueStmt) {}
};

struct ReturnStmt final : Stmt {
    ReturnStmt() : Stmt(NodeKind::kReturnStmt) {}
    ExprPtr value;  ///< may be null
};

struct GlobalStmt final : Stmt {
    GlobalStmt() : Stmt(NodeKind::kGlobalStmt) {}
    std::vector<std::string> names;  ///< with '$'
};

struct StaticVarStmt final : Stmt {
    StaticVarStmt() : Stmt(NodeKind::kStaticVarStmt) {}
    std::vector<std::pair<std::string, ExprPtr>> vars;  ///< (name, init-or-null)
};

struct UnsetStmt final : Stmt {
    UnsetStmt() : Stmt(NodeKind::kUnsetStmt) {}
    std::vector<ExprPtr> vars;
};

struct FunctionDecl final : Stmt {
    FunctionDecl() : Stmt(NodeKind::kFunctionDecl) {}
    std::string name;
    std::vector<Param> params;
    std::vector<StmtPtr> body;
    bool by_ref_return = false;
    // Method-only attributes (unused for free functions).
    bool is_static = false;
    bool is_abstract = false;
    std::string visibility;  ///< "public"/"protected"/"private"/"" (free fn)
};

struct PropertyDecl {
    std::string name;  ///< without '$'
    ExprPtr default_value;
    bool is_static = false;
    std::string visibility;
    int line = 0;
};

struct ClassConstDecl {
    std::string name;
    ExprPtr value;
    int line = 0;
};

struct ClassDecl final : Stmt {
    enum class Kind { kClass, kInterface, kTrait };
    ClassDecl() : Stmt(NodeKind::kClassDecl) {}
    Kind class_kind = Kind::kClass;
    std::string name;
    std::string parent;                   ///< "" if none
    std::vector<std::string> interfaces;  ///< also trait `use`s
    std::vector<PropertyDecl> properties;
    std::vector<ClassConstDecl> constants;
    std::vector<std::unique_ptr<FunctionDecl>> methods;
    bool is_abstract = false;
    bool is_final = false;
};

struct InlineHtmlStmt final : Stmt {
    InlineHtmlStmt() : Stmt(NodeKind::kInlineHtmlStmt) {}
    std::string html;
};

struct CatchClause {
    std::vector<std::string> types;
    std::string var;  ///< with '$'; may be empty (PHP 8 catch without var)
    std::vector<StmtPtr> body;
};

struct TryStmt final : Stmt {
    TryStmt() : Stmt(NodeKind::kTryStmt) {}
    std::vector<StmtPtr> body;
    std::vector<CatchClause> catches;
    std::vector<StmtPtr> finally_body;
    bool has_finally = false;
};

struct ThrowStmt final : Stmt {
    ThrowStmt() : Stmt(NodeKind::kThrowStmt) {}
    ExprPtr value;
};

struct NamespaceStmt final : Stmt {
    NamespaceStmt() : Stmt(NodeKind::kNamespaceStmt) {}
    std::string name;
    std::vector<StmtPtr> body;  ///< empty for the `namespace X;` form
};

struct UseStmt final : Stmt {
    UseStmt() : Stmt(NodeKind::kUseStmt) {}
    std::vector<std::pair<std::string, std::string>> imports;  ///< (fqn, alias)
};

struct ConstStmt final : Stmt {
    ConstStmt() : Stmt(NodeKind::kConstStmt) {}
    std::vector<std::pair<std::string, ExprPtr>> constants;
};

// ---------------------------------------------------------------------------
// File unit
// ---------------------------------------------------------------------------

/// Parse result of one PHP file: top-level statements (the "main function"
/// in the paper's terminology) plus the flat lists of declarations the
/// model-construction stage collects for the whole-plugin analysis.
struct FileUnit {
    std::string file_name;
    std::vector<StmtPtr> statements;
};

/// Downcast helper: `as<Variable>(expr)` → typed pointer or nullptr.
template <typename T>
const T* as(const Node* n) noexcept {
    return dynamic_cast<const T*>(n);
}
template <typename T>
T* as(Node* n) noexcept {
    return dynamic_cast<T*>(n);
}

/// Renders a compact single-line s-expression of a node (for tests/debug).
std::string dump(const Node& node);

/// Reconstructs approximate PHP source for an expression (used in taint
/// traces and reports, mirroring phpSAFE's variable-flow display).
std::string to_php_source(const Expr& expr);

}  // namespace phpsafe::php
