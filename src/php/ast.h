// Abstract syntax tree for PHP 5/7 plugin code, covering procedural and
// object-oriented constructs (classes, properties, methods, static calls,
// `new`, `$this`). The taint engine consumes this model; the paper builds
// the same model on top of token_get_all (model-construction stage).
//
// Allocation model: every node lives in the per-file Arena owned by its
// ParsedFile (util/arena.h). Child links (`ExprPtr`/`StmtPtr`) are raw
// non-owning pointers into the same arena, all identifier-like fields are
// string_views into either the retained source text or the arena, and the
// child lists themselves are ArenaVectors whose buffers live in the same
// arena — nothing in the tree owns heap memory. Consumers may hold node
// pointers and string_views only while the owning ParsedFile is alive;
// anything that outlives the file (findings, summaries, cache keys) must
// copy.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "util/arena.h"
#include "util/source.h"

namespace phpsafe::php {

enum class NodeKind {
    // Expressions
    kLiteral, kInterpString, kVariable, kArrayAccess, kPropertyAccess,
    kStaticPropertyAccess, kClassConstAccess, kFunctionCall, kMethodCall,
    kStaticCall, kNew, kAssign, kBinary, kUnary, kCast, kTernary,
    kArrayLiteral, kIssetExpr, kEmptyExpr, kIncDec, kClosure, kIncludeExpr,
    kListExpr, kInstanceOf, kPrintExpr, kExitExpr,

    // Statements
    kExprStmt, kEchoStmt, kBlock, kIfStmt, kWhileStmt, kDoWhileStmt,
    kForStmt, kForeachStmt, kSwitchStmt, kBreakStmt, kContinueStmt,
    kReturnStmt, kGlobalStmt, kStaticVarStmt, kUnsetStmt, kFunctionDecl,
    kClassDecl, kInlineHtmlStmt, kTryStmt, kThrowStmt, kNamespaceStmt,
    kUseStmt, kConstStmt,
};

const char* to_string(NodeKind kind);

/// Base of every AST node. Not polymorphic: dispatch is by `kind`, and the
/// owning Arena destroys each node through its exact type, so no vtable is
/// needed — which keeps most leaf nodes trivially destructible.
struct Node {
    explicit Node(NodeKind k) : kind(k) { ++obs::tls().ast_nodes; }
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    NodeKind kind;
    int line = 0;
};

struct Expr : Node {
    using Node::Node;
};
struct Stmt : Node {
    using Node::Node;
};

/// Raw non-owning pointers into the ParsedFile's arena.
using ExprPtr = Expr*;
using StmtPtr = Stmt*;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Literal final : Expr {
    enum class Type { kString, kInt, kFloat, kBool, kNull };
    Literal() : Expr(NodeKind::kLiteral) {}
    Type type = Type::kString;
    std::string_view value;  ///< decoded string / number text / "true"/"false"
};

/// "text $a more {$b->c}" — concatenation of literal and expression parts.
struct InterpString final : Expr {
    InterpString() : Expr(NodeKind::kInterpString) {}
    ArenaVector<ExprPtr> parts;  ///< Literal or arbitrary expression nodes
};

struct Variable final : Expr {
    Variable() : Expr(NodeKind::kVariable) {}
    std::string_view name;  ///< includes the '$', e.g. "$_GET", "$this"
};

struct ArrayAccess final : Expr {
    ArrayAccess() : Expr(NodeKind::kArrayAccess) {}
    ExprPtr base = nullptr;
    ExprPtr index = nullptr;  ///< null for "$a[] = ..." push syntax
};

struct PropertyAccess final : Expr {
    PropertyAccess() : Expr(NodeKind::kPropertyAccess) {}
    ExprPtr object = nullptr;
    std::string_view property;       ///< empty if dynamic ({$expr} / $$var)
    ExprPtr property_expr = nullptr; ///< set when dynamic
};

struct StaticPropertyAccess final : Expr {
    StaticPropertyAccess() : Expr(NodeKind::kStaticPropertyAccess) {}
    std::string_view class_name;  ///< "self"/"static"/"parent" verbatim
    std::string_view property;    ///< without '$'
};

struct ClassConstAccess final : Expr {
    ClassConstAccess() : Expr(NodeKind::kClassConstAccess) {}
    std::string_view class_name;
    std::string_view constant;
};

struct Argument {
    ExprPtr value = nullptr;
    bool by_ref = false;
    bool spread = false;
};

struct FunctionCall final : Expr {
    FunctionCall() : Expr(NodeKind::kFunctionCall) {}
    std::string_view name;    ///< empty when called through an expression
    ExprPtr callee = nullptr; ///< e.g. $fn(...) — set when name is empty
    ArenaVector<Argument> args;
};

struct MethodCall final : Expr {
    MethodCall() : Expr(NodeKind::kMethodCall) {}
    ExprPtr object = nullptr;
    std::string_view method;        ///< empty if dynamic
    ExprPtr method_expr = nullptr;  ///< set when dynamic
    ArenaVector<Argument> args;
};

struct StaticCall final : Expr {
    StaticCall() : Expr(NodeKind::kStaticCall) {}
    std::string_view class_name;  ///< "self"/"static"/"parent" verbatim
    std::string_view method;
    ArenaVector<Argument> args;
};

struct New final : Expr {
    New() : Expr(NodeKind::kNew) {}
    std::string_view class_name;  ///< empty when dynamic (new $cls)
    ExprPtr class_expr = nullptr;
    ArenaVector<Argument> args;
};

enum class AssignOp {
    kAssign, kConcat, kPlus, kMinus, kMul, kDiv, kMod, kPow,
    kBitAnd, kBitOr, kBitXor, kShl, kShr, kCoalesce,
};
const char* to_string(AssignOp op);

struct Assign final : Expr {
    Assign() : Expr(NodeKind::kAssign) {}
    ExprPtr target = nullptr;
    ExprPtr value = nullptr;
    AssignOp op = AssignOp::kAssign;
    bool by_ref = false;  ///< $a =& $b
};

enum class BinaryOp {
    kConcat, kAdd, kSub, kMul, kDiv, kMod, kPow,
    kEq, kNotEq, kIdentical, kNotIdentical, kLt, kGt, kLtEq, kGtEq, kSpaceship,
    kAnd, kOr, kXor, kBitAnd, kBitOr, kBitXor, kShl, kShr, kCoalesce,
};
const char* to_string(BinaryOp op);

struct Binary final : Expr {
    Binary() : Expr(NodeKind::kBinary) {}
    BinaryOp op = BinaryOp::kConcat;
    ExprPtr lhs = nullptr;
    ExprPtr rhs = nullptr;
};

enum class UnaryOp { kNot, kMinus, kPlus, kBitNot, kSuppress /* @ */ };
const char* to_string(UnaryOp op);

struct Unary final : Expr {
    Unary() : Expr(NodeKind::kUnary) {}
    UnaryOp op = UnaryOp::kNot;
    ExprPtr operand = nullptr;
};

struct Cast final : Expr {
    Cast() : Expr(NodeKind::kCast) {}
    std::string_view type;  ///< lowercase: "int", "string", ...
    ExprPtr operand = nullptr;
};

struct Ternary final : Expr {
    Ternary() : Expr(NodeKind::kTernary) {}
    ExprPtr cond = nullptr;
    ExprPtr then_expr = nullptr;  ///< null for the short form `?:`
    ExprPtr else_expr = nullptr;
};

struct ArrayItem {
    ExprPtr key = nullptr;    ///< may be null
    ExprPtr value = nullptr;
    bool by_ref = false;
    bool spread = false;
};

struct ArrayLiteral final : Expr {
    ArrayLiteral() : Expr(NodeKind::kArrayLiteral) {}
    ArenaVector<ArrayItem> items;
};

struct IssetExpr final : Expr {
    IssetExpr() : Expr(NodeKind::kIssetExpr) {}
    ArenaVector<ExprPtr> vars;
};

struct EmptyExpr final : Expr {
    EmptyExpr() : Expr(NodeKind::kEmptyExpr) {}
    ExprPtr operand = nullptr;
};

struct IncDec final : Expr {
    IncDec() : Expr(NodeKind::kIncDec) {}
    bool increment = true;
    bool prefix = false;
    ExprPtr operand = nullptr;
};

struct Param {
    std::string_view name;      ///< with '$'
    std::string_view type_hint; ///< "" if none; class name or scalar hint
    ExprPtr default_value = nullptr; ///< may be null
    bool by_ref = false;
    bool variadic = false;
};

struct Closure final : Expr {
    Closure() : Expr(NodeKind::kClosure) {}
    ArenaVector<Param> params;
    ArenaVector<std::pair<std::string_view, bool>> uses;  ///< (name, by_ref)
    ArenaVector<StmtPtr> body;
    bool is_arrow = false;  ///< fn() => expr (body holds a single return)
};

enum class IncludeKind { kInclude, kIncludeOnce, kRequire, kRequireOnce };
const char* to_string(IncludeKind kind);

struct IncludeExpr final : Expr {
    IncludeExpr() : Expr(NodeKind::kIncludeExpr) {}
    IncludeKind include_kind = IncludeKind::kInclude;
    ExprPtr path = nullptr;
};

struct ListExpr final : Expr {
    ListExpr() : Expr(NodeKind::kListExpr) {}
    ArenaVector<ExprPtr> elements;  ///< entries may be null (skipped slots)
};

struct InstanceOf final : Expr {
    InstanceOf() : Expr(NodeKind::kInstanceOf) {}
    ExprPtr object = nullptr;
    std::string_view class_name;
};

struct PrintExpr final : Expr {
    PrintExpr() : Expr(NodeKind::kPrintExpr) {}
    ExprPtr operand = nullptr;
};

struct ExitExpr final : Expr {
    ExitExpr() : Expr(NodeKind::kExitExpr) {}
    ExprPtr operand = nullptr;  ///< may be null; `die($msg)` outputs $msg
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct ExprStmt final : Stmt {
    ExprStmt() : Stmt(NodeKind::kExprStmt) {}
    ExprPtr expr = nullptr;
};

struct EchoStmt final : Stmt {
    EchoStmt() : Stmt(NodeKind::kEchoStmt) {}
    ArenaVector<ExprPtr> args;
    bool from_open_tag = false;  ///< came from `<?= ... ?>`
};

struct Block final : Stmt {
    Block() : Stmt(NodeKind::kBlock) {}
    ArenaVector<StmtPtr> statements;
};

struct IfStmt final : Stmt {
    IfStmt() : Stmt(NodeKind::kIfStmt) {}
    ExprPtr cond = nullptr;
    StmtPtr then_branch = nullptr;
    StmtPtr else_branch = nullptr;  ///< may be another IfStmt (elseif) or null
};

struct WhileStmt final : Stmt {
    WhileStmt() : Stmt(NodeKind::kWhileStmt) {}
    ExprPtr cond = nullptr;
    StmtPtr body = nullptr;
};

struct DoWhileStmt final : Stmt {
    DoWhileStmt() : Stmt(NodeKind::kDoWhileStmt) {}
    StmtPtr body = nullptr;
    ExprPtr cond = nullptr;
};

struct ForStmt final : Stmt {
    ForStmt() : Stmt(NodeKind::kForStmt) {}
    ArenaVector<ExprPtr> init;
    ArenaVector<ExprPtr> cond;
    ArenaVector<ExprPtr> update;
    StmtPtr body = nullptr;
};

struct ForeachStmt final : Stmt {
    ForeachStmt() : Stmt(NodeKind::kForeachStmt) {}
    ExprPtr iterable = nullptr;
    ExprPtr key_var = nullptr;    ///< may be null
    ExprPtr value_var = nullptr;  ///< Variable / PropertyAccess / ListExpr
    bool by_ref = false;
    StmtPtr body = nullptr;
};

struct SwitchCase {
    ExprPtr match = nullptr;  ///< null for `default:`
    ArenaVector<StmtPtr> body;
};

struct SwitchStmt final : Stmt {
    SwitchStmt() : Stmt(NodeKind::kSwitchStmt) {}
    ExprPtr subject = nullptr;
    ArenaVector<SwitchCase> cases;
};

struct BreakStmt final : Stmt {
    BreakStmt() : Stmt(NodeKind::kBreakStmt) {}
};
struct ContinueStmt final : Stmt {
    ContinueStmt() : Stmt(NodeKind::kContinueStmt) {}
};

struct ReturnStmt final : Stmt {
    ReturnStmt() : Stmt(NodeKind::kReturnStmt) {}
    ExprPtr value = nullptr;  ///< may be null
};

struct GlobalStmt final : Stmt {
    GlobalStmt() : Stmt(NodeKind::kGlobalStmt) {}
    ArenaVector<std::string_view> names;  ///< with '$'
};

struct StaticVarStmt final : Stmt {
    StaticVarStmt() : Stmt(NodeKind::kStaticVarStmt) {}
    ArenaVector<std::pair<std::string_view, ExprPtr>> vars;  ///< (name, init)
};

struct UnsetStmt final : Stmt {
    UnsetStmt() : Stmt(NodeKind::kUnsetStmt) {}
    ArenaVector<ExprPtr> vars;
};

struct FunctionDecl final : Stmt {
    FunctionDecl() : Stmt(NodeKind::kFunctionDecl) {}
    std::string_view name;
    ArenaVector<Param> params;
    ArenaVector<StmtPtr> body;
    bool by_ref_return = false;
    // Method-only attributes (unused for free functions).
    bool is_method = false;  ///< declared inside a class body
    bool is_static = false;
    bool is_abstract = false;
    std::string_view visibility;  ///< "public"/"protected"/"private"/"" (free)
};

struct PropertyDecl {
    std::string_view name;  ///< without '$'
    ExprPtr default_value = nullptr;
    bool is_static = false;
    std::string_view visibility;
    int line = 0;
};

struct ClassConstDecl {
    std::string_view name;
    ExprPtr value = nullptr;
    int line = 0;
};

struct ClassDecl final : Stmt {
    enum class Kind { kClass, kInterface, kTrait };
    ClassDecl() : Stmt(NodeKind::kClassDecl) {}
    Kind class_kind = Kind::kClass;
    std::string_view name;
    std::string_view parent;                   ///< "" if none
    ArenaVector<std::string_view> interfaces;  ///< also trait `use`s
    ArenaVector<PropertyDecl> properties;
    ArenaVector<ClassConstDecl> constants;
    ArenaVector<FunctionDecl*> methods;
    bool is_abstract = false;
    bool is_final = false;
};

struct InlineHtmlStmt final : Stmt {
    InlineHtmlStmt() : Stmt(NodeKind::kInlineHtmlStmt) {}
    std::string_view html;  ///< view into the source text
};

struct CatchClause {
    ArenaVector<std::string_view> types;
    std::string_view var;  ///< with '$'; may be empty (PHP 8 catch w/o var)
    ArenaVector<StmtPtr> body;
};

struct TryStmt final : Stmt {
    TryStmt() : Stmt(NodeKind::kTryStmt) {}
    ArenaVector<StmtPtr> body;
    ArenaVector<CatchClause> catches;
    ArenaVector<StmtPtr> finally_body;
    bool has_finally = false;
};

struct ThrowStmt final : Stmt {
    ThrowStmt() : Stmt(NodeKind::kThrowStmt) {}
    ExprPtr value = nullptr;
};

struct NamespaceStmt final : Stmt {
    NamespaceStmt() : Stmt(NodeKind::kNamespaceStmt) {}
    std::string_view name;
    ArenaVector<StmtPtr> body;  ///< empty for the `namespace X;` form
};

struct UseStmt final : Stmt {
    UseStmt() : Stmt(NodeKind::kUseStmt) {}
    /// (fqn, alias)
    ArenaVector<std::pair<std::string_view, std::string_view>> imports;
};

struct ConstStmt final : Stmt {
    ConstStmt() : Stmt(NodeKind::kConstStmt) {}
    ArenaVector<std::pair<std::string_view, ExprPtr>> constants;
};

// ---------------------------------------------------------------------------
// File unit
// ---------------------------------------------------------------------------

/// Parse result of one PHP file: top-level statements (the "main function"
/// in the paper's terminology). Statements are non-owning pointers into the
/// ParsedFile's arena.
struct FileUnit {
    std::string file_name;
    ArenaVector<StmtPtr> statements;
};

/// Renders a compact single-line s-expression of a node (for tests/debug).
std::string dump(const Node& node);

/// Reconstructs approximate PHP source for an expression (used in taint
/// traces and reports, mirroring phpSAFE's variable-flow display).
std::string to_php_source(const Expr& expr);

}  // namespace phpsafe::php
