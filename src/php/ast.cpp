#include "php/ast.h"

#include <sstream>

namespace phpsafe::php {

const char* to_string(NodeKind kind) {
    switch (kind) {
        case NodeKind::kLiteral: return "literal";
        case NodeKind::kInterpString: return "interp";
        case NodeKind::kVariable: return "var";
        case NodeKind::kArrayAccess: return "index";
        case NodeKind::kPropertyAccess: return "prop";
        case NodeKind::kStaticPropertyAccess: return "sprop";
        case NodeKind::kClassConstAccess: return "cconst";
        case NodeKind::kFunctionCall: return "call";
        case NodeKind::kMethodCall: return "mcall";
        case NodeKind::kStaticCall: return "scall";
        case NodeKind::kNew: return "new";
        case NodeKind::kAssign: return "assign";
        case NodeKind::kBinary: return "binary";
        case NodeKind::kUnary: return "unary";
        case NodeKind::kCast: return "cast";
        case NodeKind::kTernary: return "ternary";
        case NodeKind::kArrayLiteral: return "array";
        case NodeKind::kIssetExpr: return "isset";
        case NodeKind::kEmptyExpr: return "empty";
        case NodeKind::kIncDec: return "incdec";
        case NodeKind::kClosure: return "closure";
        case NodeKind::kIncludeExpr: return "include";
        case NodeKind::kListExpr: return "list";
        case NodeKind::kInstanceOf: return "instanceof";
        case NodeKind::kPrintExpr: return "print";
        case NodeKind::kExitExpr: return "exit";
        case NodeKind::kExprStmt: return "expr-stmt";
        case NodeKind::kEchoStmt: return "echo";
        case NodeKind::kBlock: return "block";
        case NodeKind::kIfStmt: return "if";
        case NodeKind::kWhileStmt: return "while";
        case NodeKind::kDoWhileStmt: return "do-while";
        case NodeKind::kForStmt: return "for";
        case NodeKind::kForeachStmt: return "foreach";
        case NodeKind::kSwitchStmt: return "switch";
        case NodeKind::kBreakStmt: return "break";
        case NodeKind::kContinueStmt: return "continue";
        case NodeKind::kReturnStmt: return "return";
        case NodeKind::kGlobalStmt: return "global";
        case NodeKind::kStaticVarStmt: return "static-var";
        case NodeKind::kUnsetStmt: return "unset";
        case NodeKind::kFunctionDecl: return "function";
        case NodeKind::kClassDecl: return "class";
        case NodeKind::kInlineHtmlStmt: return "html";
        case NodeKind::kTryStmt: return "try";
        case NodeKind::kThrowStmt: return "throw";
        case NodeKind::kNamespaceStmt: return "namespace";
        case NodeKind::kUseStmt: return "use";
        case NodeKind::kConstStmt: return "const";
    }
    return "?";
}

const char* to_string(AssignOp op) {
    switch (op) {
        case AssignOp::kAssign: return "=";
        case AssignOp::kConcat: return ".=";
        case AssignOp::kPlus: return "+=";
        case AssignOp::kMinus: return "-=";
        case AssignOp::kMul: return "*=";
        case AssignOp::kDiv: return "/=";
        case AssignOp::kMod: return "%=";
        case AssignOp::kPow: return "**=";
        case AssignOp::kBitAnd: return "&=";
        case AssignOp::kBitOr: return "|=";
        case AssignOp::kBitXor: return "^=";
        case AssignOp::kShl: return "<<=";
        case AssignOp::kShr: return ">>=";
        case AssignOp::kCoalesce: return "?\?=";
    }
    return "?";
}

const char* to_string(BinaryOp op) {
    switch (op) {
        case BinaryOp::kConcat: return ".";
        case BinaryOp::kAdd: return "+";
        case BinaryOp::kSub: return "-";
        case BinaryOp::kMul: return "*";
        case BinaryOp::kDiv: return "/";
        case BinaryOp::kMod: return "%";
        case BinaryOp::kPow: return "**";
        case BinaryOp::kEq: return "==";
        case BinaryOp::kNotEq: return "!=";
        case BinaryOp::kIdentical: return "===";
        case BinaryOp::kNotIdentical: return "!==";
        case BinaryOp::kLt: return "<";
        case BinaryOp::kGt: return ">";
        case BinaryOp::kLtEq: return "<=";
        case BinaryOp::kGtEq: return ">=";
        case BinaryOp::kSpaceship: return "<=>";
        case BinaryOp::kAnd: return "&&";
        case BinaryOp::kOr: return "||";
        case BinaryOp::kXor: return "xor";
        case BinaryOp::kBitAnd: return "&";
        case BinaryOp::kBitOr: return "|";
        case BinaryOp::kBitXor: return "^";
        case BinaryOp::kShl: return "<<";
        case BinaryOp::kShr: return ">>";
        case BinaryOp::kCoalesce: return "??";
    }
    return "?";
}

const char* to_string(UnaryOp op) {
    switch (op) {
        case UnaryOp::kNot: return "!";
        case UnaryOp::kMinus: return "-";
        case UnaryOp::kPlus: return "+";
        case UnaryOp::kBitNot: return "~";
        case UnaryOp::kSuppress: return "@";
    }
    return "?";
}

const char* to_string(IncludeKind kind) {
    switch (kind) {
        case IncludeKind::kInclude: return "include";
        case IncludeKind::kIncludeOnce: return "include_once";
        case IncludeKind::kRequire: return "require";
        case IncludeKind::kRequireOnce: return "require_once";
    }
    return "?";
}

namespace {

void dump_node(const Node& node, std::ostringstream& os);

/// Null-tolerant child dump: error-recovered ASTs can carry null slots.
void dump_child(const Node* node, std::ostringstream& os) {
    if (node) dump_node(*node, os);
    else os << "<null>";
}

void dump_args(const ArenaVector<Argument>& args, std::ostringstream& os) {
    for (const Argument& a : args) {
        os << ' ';
        if (a.by_ref) os << '&';
        if (a.spread) os << "...";
        dump_node(*a.value, os);
    }
}

void dump_stmts(const ArenaVector<StmtPtr>& stmts, std::ostringstream& os) {
    for (const StmtPtr& s : stmts) {
        os << ' ';
        dump_node(*s, os);
    }
}

void dump_node(const Node& node, std::ostringstream& os) {
    switch (node.kind) {
        case NodeKind::kLiteral: {
            const auto& n = static_cast<const Literal&>(node);
            if (n.type == Literal::Type::kString)
                os << '"' << n.value << '"';
            else
                os << n.value;
            return;
        }
        case NodeKind::kVariable:
            os << static_cast<const Variable&>(node).name;
            return;
        case NodeKind::kInterpString: {
            const auto& n = static_cast<const InterpString&>(node);
            os << "(interp";
            for (const ExprPtr& p : n.parts) {
                os << ' ';
                dump_node(*p, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kArrayAccess: {
            const auto& n = static_cast<const ArrayAccess&>(node);
            os << "(index ";
            dump_node(*n.base, os);
            if (n.index) {
                os << ' ';
                dump_node(*n.index, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kPropertyAccess: {
            const auto& n = static_cast<const PropertyAccess&>(node);
            os << "(prop ";
            dump_node(*n.object, os);
            os << ' ' << (n.property.empty() ? "<dyn>" : n.property) << ')';
            return;
        }
        case NodeKind::kStaticPropertyAccess: {
            const auto& n = static_cast<const StaticPropertyAccess&>(node);
            os << "(sprop " << n.class_name << " " << n.property << ')';
            return;
        }
        case NodeKind::kClassConstAccess: {
            const auto& n = static_cast<const ClassConstAccess&>(node);
            os << "(cconst " << n.class_name << " " << n.constant << ')';
            return;
        }
        case NodeKind::kFunctionCall: {
            const auto& n = static_cast<const FunctionCall&>(node);
            os << "(call " << (n.name.empty() ? "<expr>" : n.name);
            dump_args(n.args, os);
            os << ')';
            return;
        }
        case NodeKind::kMethodCall: {
            const auto& n = static_cast<const MethodCall&>(node);
            os << "(mcall ";
            dump_node(*n.object, os);
            os << ' ' << (n.method.empty() ? "<dyn>" : n.method);
            dump_args(n.args, os);
            os << ')';
            return;
        }
        case NodeKind::kStaticCall: {
            const auto& n = static_cast<const StaticCall&>(node);
            os << "(scall " << n.class_name << ' ' << n.method;
            dump_args(n.args, os);
            os << ')';
            return;
        }
        case NodeKind::kNew: {
            const auto& n = static_cast<const New&>(node);
            os << "(new " << (n.class_name.empty() ? "<expr>" : n.class_name);
            dump_args(n.args, os);
            os << ')';
            return;
        }
        case NodeKind::kAssign: {
            const auto& n = static_cast<const Assign&>(node);
            os << '(' << to_string(n.op) << (n.by_ref ? "& " : " ");
            dump_child(n.target, os);
            os << ' ';
            dump_child(n.value, os);
            os << ')';
            return;
        }
        case NodeKind::kBinary: {
            const auto& n = static_cast<const Binary&>(node);
            os << '(' << to_string(n.op) << ' ';
            dump_child(n.lhs, os);
            os << ' ';
            dump_child(n.rhs, os);
            os << ')';
            return;
        }
        case NodeKind::kUnary: {
            const auto& n = static_cast<const Unary&>(node);
            os << '(' << to_string(n.op) << ' ';
            dump_child(n.operand, os);
            os << ')';
            return;
        }
        case NodeKind::kCast: {
            const auto& n = static_cast<const Cast&>(node);
            os << "(cast " << n.type << ' ';
            dump_node(*n.operand, os);
            os << ')';
            return;
        }
        case NodeKind::kTernary: {
            const auto& n = static_cast<const Ternary&>(node);
            os << "(?: ";
            dump_child(n.cond, os);
            os << ' ';
            if (n.then_expr) dump_node(*n.then_expr, os);
            else os << "<elvis>";
            os << ' ';
            dump_child(n.else_expr, os);
            os << ')';
            return;
        }
        case NodeKind::kArrayLiteral: {
            const auto& n = static_cast<const ArrayLiteral&>(node);
            os << "(array";
            for (const ArrayItem& item : n.items) {
                os << ' ';
                if (item.key) {
                    os << '[';
                    dump_node(*item.key, os);
                    os << "]=";
                }
                dump_node(*item.value, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kIssetExpr: {
            const auto& n = static_cast<const IssetExpr&>(node);
            os << "(isset";
            for (const ExprPtr& v : n.vars) {
                os << ' ';
                dump_node(*v, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kEmptyExpr: {
            os << "(empty ";
            dump_node(*static_cast<const EmptyExpr&>(node).operand, os);
            os << ')';
            return;
        }
        case NodeKind::kIncDec: {
            const auto& n = static_cast<const IncDec&>(node);
            os << '(' << (n.prefix ? "pre" : "post") << (n.increment ? "++" : "--") << ' ';
            dump_node(*n.operand, os);
            os << ')';
            return;
        }
        case NodeKind::kClosure: {
            const auto& n = static_cast<const Closure&>(node);
            os << "(closure (";
            for (size_t i = 0; i < n.params.size(); ++i)
                os << (i ? " " : "") << n.params[i].name;
            os << ')';
            dump_stmts(n.body, os);
            os << ')';
            return;
        }
        case NodeKind::kIncludeExpr: {
            const auto& n = static_cast<const IncludeExpr&>(node);
            os << '(' << to_string(n.include_kind) << ' ';
            dump_node(*n.path, os);
            os << ')';
            return;
        }
        case NodeKind::kListExpr: {
            const auto& n = static_cast<const ListExpr&>(node);
            os << "(list";
            for (const ExprPtr& e : n.elements) {
                os << ' ';
                if (e) dump_node(*e, os);
                else os << "_";
            }
            os << ')';
            return;
        }
        case NodeKind::kInstanceOf: {
            const auto& n = static_cast<const InstanceOf&>(node);
            os << "(instanceof ";
            dump_node(*n.object, os);
            os << ' ' << n.class_name << ')';
            return;
        }
        case NodeKind::kPrintExpr: {
            os << "(print ";
            dump_node(*static_cast<const PrintExpr&>(node).operand, os);
            os << ')';
            return;
        }
        case NodeKind::kExitExpr: {
            const auto& n = static_cast<const ExitExpr&>(node);
            os << "(exit";
            if (n.operand) {
                os << ' ';
                dump_node(*n.operand, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kExprStmt: {
            dump_node(*static_cast<const ExprStmt&>(node).expr, os);
            return;
        }
        case NodeKind::kEchoStmt: {
            const auto& n = static_cast<const EchoStmt&>(node);
            os << "(echo";
            for (const ExprPtr& a : n.args) {
                os << ' ';
                dump_node(*a, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kBlock: {
            os << "(block";
            dump_stmts(static_cast<const Block&>(node).statements, os);
            os << ')';
            return;
        }
        case NodeKind::kIfStmt: {
            const auto& n = static_cast<const IfStmt&>(node);
            os << "(if ";
            dump_node(*n.cond, os);
            os << ' ';
            dump_node(*n.then_branch, os);
            if (n.else_branch) {
                os << ' ';
                dump_node(*n.else_branch, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kWhileStmt: {
            const auto& n = static_cast<const WhileStmt&>(node);
            os << "(while ";
            dump_node(*n.cond, os);
            os << ' ';
            dump_node(*n.body, os);
            os << ')';
            return;
        }
        case NodeKind::kDoWhileStmt: {
            const auto& n = static_cast<const DoWhileStmt&>(node);
            os << "(do ";
            dump_node(*n.body, os);
            os << ' ';
            dump_node(*n.cond, os);
            os << ')';
            return;
        }
        case NodeKind::kForStmt: {
            const auto& n = static_cast<const ForStmt&>(node);
            os << "(for";
            for (const ExprPtr& e : n.init) {
                os << ' ';
                dump_node(*e, os);
            }
            os << " ;";
            for (const ExprPtr& e : n.cond) {
                os << ' ';
                dump_node(*e, os);
            }
            os << " ;";
            for (const ExprPtr& e : n.update) {
                os << ' ';
                dump_node(*e, os);
            }
            os << ' ';
            dump_node(*n.body, os);
            os << ')';
            return;
        }
        case NodeKind::kForeachStmt: {
            const auto& n = static_cast<const ForeachStmt&>(node);
            os << "(foreach ";
            dump_node(*n.iterable, os);
            os << " as ";
            if (n.key_var) {
                dump_node(*n.key_var, os);
                os << " => ";
            }
            dump_node(*n.value_var, os);
            os << ' ';
            dump_node(*n.body, os);
            os << ')';
            return;
        }
        case NodeKind::kSwitchStmt: {
            const auto& n = static_cast<const SwitchStmt&>(node);
            os << "(switch ";
            dump_node(*n.subject, os);
            for (const SwitchCase& c : n.cases) {
                os << " (case ";
                if (c.match) dump_node(*c.match, os);
                else os << "default";
                dump_stmts(c.body, os);
                os << ')';
            }
            os << ')';
            return;
        }
        case NodeKind::kBreakStmt: os << "(break)"; return;
        case NodeKind::kContinueStmt: os << "(continue)"; return;
        case NodeKind::kReturnStmt: {
            const auto& n = static_cast<const ReturnStmt&>(node);
            os << "(return";
            if (n.value) {
                os << ' ';
                dump_node(*n.value, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kGlobalStmt: {
            const auto& n = static_cast<const GlobalStmt&>(node);
            os << "(global";
            for (const std::string_view name : n.names) os << ' ' << name;
            os << ')';
            return;
        }
        case NodeKind::kStaticVarStmt: {
            const auto& n = static_cast<const StaticVarStmt&>(node);
            os << "(static";
            for (const auto& [name, init] : n.vars) {
                os << ' ' << name;
                if (init) {
                    os << '=';
                    dump_node(*init, os);
                }
            }
            os << ')';
            return;
        }
        case NodeKind::kUnsetStmt: {
            const auto& n = static_cast<const UnsetStmt&>(node);
            os << "(unset";
            for (const ExprPtr& v : n.vars) {
                os << ' ';
                dump_node(*v, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kFunctionDecl: {
            const auto& n = static_cast<const FunctionDecl&>(node);
            os << "(function " << n.name << " (";
            for (size_t i = 0; i < n.params.size(); ++i)
                os << (i ? " " : "") << n.params[i].name;
            os << ')';
            dump_stmts(n.body, os);
            os << ')';
            return;
        }
        case NodeKind::kClassDecl: {
            const auto& n = static_cast<const ClassDecl&>(node);
            os << "(class " << n.name;
            if (!n.parent.empty()) os << " extends " << n.parent;
            for (const PropertyDecl& p : n.properties) os << " $" << p.name;
            for (const auto& m : n.methods) {
                os << ' ';
                dump_node(*m, os);
            }
            os << ')';
            return;
        }
        case NodeKind::kInlineHtmlStmt: os << "(html)"; return;
        case NodeKind::kTryStmt: {
            const auto& n = static_cast<const TryStmt&>(node);
            os << "(try";
            dump_stmts(n.body, os);
            for (const CatchClause& c : n.catches) {
                os << " (catch " << c.var;
                dump_stmts(c.body, os);
                os << ')';
            }
            if (n.has_finally) {
                os << " (finally";
                dump_stmts(n.finally_body, os);
                os << ')';
            }
            os << ')';
            return;
        }
        case NodeKind::kThrowStmt: {
            os << "(throw ";
            dump_node(*static_cast<const ThrowStmt&>(node).value, os);
            os << ')';
            return;
        }
        case NodeKind::kNamespaceStmt: {
            const auto& n = static_cast<const NamespaceStmt&>(node);
            os << "(namespace " << n.name;
            dump_stmts(n.body, os);
            os << ')';
            return;
        }
        case NodeKind::kUseStmt: {
            const auto& n = static_cast<const UseStmt&>(node);
            os << "(use";
            for (const auto& [fqn, alias] : n.imports) os << ' ' << fqn;
            os << ')';
            return;
        }
        case NodeKind::kConstStmt: {
            const auto& n = static_cast<const ConstStmt&>(node);
            os << "(const";
            for (const auto& [name, value] : n.constants) {
                os << ' ' << name << '=';
                dump_node(*value, os);
            }
            os << ')';
            return;
        }
    }
    os << "(?" << to_string(node.kind) << ')';
}

}  // namespace

std::string dump(const Node& node) {
    std::ostringstream os;
    dump_node(node, os);
    return os.str();
}

std::string to_php_source(const Expr& expr) {
    switch (expr.kind) {
        case NodeKind::kVariable:
            return std::string(static_cast<const Variable&>(expr).name);
        case NodeKind::kLiteral: {
            const auto& n = static_cast<const Literal&>(expr);
            if (n.type == Literal::Type::kString) {
                std::string s = "'";
                s += n.value;
                s += '\'';
                return s;
            }
            return std::string(n.value);
        }
        case NodeKind::kArrayAccess: {
            const auto& n = static_cast<const ArrayAccess&>(expr);
            std::string s = to_php_source(*n.base);
            s += '[';
            if (n.index) s += to_php_source(*n.index);
            s += ']';
            return s;
        }
        case NodeKind::kPropertyAccess: {
            const auto& n = static_cast<const PropertyAccess&>(expr);
            std::string s = to_php_source(*n.object);
            s += "->";
            s += n.property.empty() ? std::string_view("{...}") : n.property;
            return s;
        }
        case NodeKind::kStaticPropertyAccess: {
            const auto& n = static_cast<const StaticPropertyAccess&>(expr);
            std::string s(n.class_name);
            s += "::$";
            s += n.property;
            return s;
        }
        case NodeKind::kFunctionCall: {
            const auto& n = static_cast<const FunctionCall&>(expr);
            std::string s(n.name.empty() ? std::string_view("{expr}") : n.name);
            s += "(";
            for (size_t i = 0; i < n.args.size(); ++i) {
                if (i) s += ", ";
                s += to_php_source(*n.args[i].value);
            }
            s += ")";
            return s;
        }
        case NodeKind::kMethodCall: {
            const auto& n = static_cast<const MethodCall&>(expr);
            std::string s = to_php_source(*n.object);
            s += "->";
            s += n.method.empty() ? std::string_view("{...}") : n.method;
            s += "(";
            for (size_t i = 0; i < n.args.size(); ++i) {
                if (i) s += ", ";
                s += to_php_source(*n.args[i].value);
            }
            s += ")";
            return s;
        }
        case NodeKind::kStaticCall: {
            const auto& n = static_cast<const StaticCall&>(expr);
            std::string s(n.class_name);
            s += "::";
            s += n.method;
            s += "(";
            for (size_t i = 0; i < n.args.size(); ++i) {
                if (i) s += ", ";
                s += to_php_source(*n.args[i].value);
            }
            s += ")";
            return s;
        }
        case NodeKind::kBinary: {
            const auto& n = static_cast<const Binary&>(expr);
            return to_php_source(*n.lhs) + " " + to_string(n.op) + " " +
                   to_php_source(*n.rhs);
        }
        case NodeKind::kInterpString: {
            const auto& n = static_cast<const InterpString&>(expr);
            std::string s = "\"";
            for (const ExprPtr& p : n.parts) {
                if (p->kind == NodeKind::kLiteral)
                    s += static_cast<const Literal&>(*p).value;
                else
                    s += "{" + to_php_source(*p) + "}";
            }
            s += "\"";
            return s;
        }
        case NodeKind::kCast: {
            const auto& n = static_cast<const Cast&>(expr);
            std::string s = "(";
            s += n.type;
            s += ") ";
            s += to_php_source(*n.operand);
            return s;
        }
        case NodeKind::kNew: {
            const auto& n = static_cast<const New&>(expr);
            std::string s = "new ";
            s += n.class_name.empty() ? std::string_view("{expr}") : n.class_name;
            return s;
        }
        default:
            return dump(expr);
    }
}

}  // namespace phpsafe::php
