#include "php/lexer.h"

#include <array>
#include <cctype>
#include <unordered_set>

#include "obs/counters.h"
#include "util/strings.h"

namespace phpsafe::php {

namespace {

bool is_ident_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           static_cast<unsigned char>(c) >= 0x80;
}

bool is_ident_char(char c) noexcept {
    return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool has_upper(std::string_view s) noexcept {
    for (const char c : s)
        if (c >= 'A' && c <= 'Z') return true;
    return false;
}

const std::unordered_set<std::string_view>& keyword_set() {
    static const std::unordered_set<std::string_view> kKeywords = {
        "abstract", "and", "array", "as", "break", "callable", "case", "catch",
        "class", "clone", "const", "continue", "declare", "default", "die", "do",
        "echo", "else", "elseif", "empty", "enddeclare", "endfor", "endforeach",
        "eval", "exit",
        "endif", "endswitch", "endwhile", "extends", "final", "finally", "fn",
        "for", "foreach", "function", "global", "goto", "if", "implements",
        "include", "include_once", "instanceof", "insteadof", "interface",
        "isset", "list", "match", "namespace", "new", "or", "print", "private",
        "protected", "public", "readonly", "require", "require_once", "return",
        "static", "switch", "throw", "trait", "try", "unset", "use", "var",
        "while", "xor", "yield",
    };
    return kKeywords;
}

const std::unordered_set<std::string_view>& cast_name_set() {
    static const std::unordered_set<std::string_view> kCasts = {
        "int", "integer", "bool", "boolean", "float", "double", "real",
        "string", "array", "object", "unset", "binary",
    };
    return kCasts;
}

/// Decodes escape sequences of a single-quoted string body.
std::string decode_single_quoted(std::string_view body) {
    std::string out;
    out.reserve(body.size());
    for (size_t i = 0; i < body.size(); ++i) {
        if (body[i] == '\\' && i + 1 < body.size() &&
            (body[i + 1] == '\\' || body[i + 1] == '\'')) {
            out.push_back(body[++i]);
        } else {
            out.push_back(body[i]);
        }
    }
    return out;
}

/// Decodes escape sequences of a double-quoted string literal segment.
std::string decode_double_quoted(std::string_view body) {
    std::string out;
    out.reserve(body.size());
    for (size_t i = 0; i < body.size(); ++i) {
        if (body[i] != '\\' || i + 1 >= body.size()) {
            out.push_back(body[i]);
            continue;
        }
        const char c = body[++i];
        switch (c) {
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            case 'v': out.push_back('\v'); break;
            case 'f': out.push_back('\f'); break;
            case 'e': out.push_back('\x1b'); break;
            case '\\': out.push_back('\\'); break;
            case '$': out.push_back('$'); break;
            case '"': out.push_back('"'); break;
            case 'x': {
                std::string hex;
                while (hex.size() < 2 && i + 1 < body.size() &&
                       std::isxdigit(static_cast<unsigned char>(body[i + 1])))
                    hex.push_back(body[++i]);
                if (hex.empty()) {
                    out.push_back('\\');
                    out.push_back('x');
                } else {
                    out.push_back(static_cast<char>(std::stoi(hex, nullptr, 16)));
                }
                break;
            }
            default:
                if (c >= '0' && c <= '7') {
                    std::string oct(1, c);
                    while (oct.size() < 3 && i + 1 < body.size() && body[i + 1] >= '0' &&
                           body[i + 1] <= '7')
                        oct.push_back(body[++i]);
                    out.push_back(static_cast<char>(std::stoi(oct, nullptr, 8) & 0xFF));
                } else {
                    out.push_back('\\');
                    out.push_back(c);
                }
        }
    }
    return out;
}

}  // namespace

bool is_php_keyword(std::string_view word) noexcept {
    return keyword_set().count(word) > 0;
}

const char* to_string(TokenKind kind) {
    switch (kind) {
        case TokenKind::kEndOfFile: return "eof";
        case TokenKind::kInlineHtml: return "inline_html";
        case TokenKind::kOpenTag: return "open_tag";
        case TokenKind::kOpenTagWithEcho: return "open_tag_with_echo";
        case TokenKind::kCloseTag: return "close_tag";
        case TokenKind::kVariable: return "variable";
        case TokenKind::kIdentifier: return "identifier";
        case TokenKind::kKeyword: return "keyword";
        case TokenKind::kIntLiteral: return "int";
        case TokenKind::kFloatLiteral: return "float";
        case TokenKind::kSingleQuotedString: return "sq_string";
        case TokenKind::kDoubleQuotedString: return "dq_string";
        case TokenKind::kHeredoc: return "heredoc";
        case TokenKind::kNowdoc: return "nowdoc";
        case TokenKind::kComment: return "comment";
        case TokenKind::kCast: return "cast";
        case TokenKind::kArrow: return "->";
        case TokenKind::kNullsafeArrow: return "?->";
        case TokenKind::kDoubleColon: return "::";
        case TokenKind::kDoubleArrow: return "=>";
        case TokenKind::kInc: return "++";
        case TokenKind::kDec: return "--";
        case TokenKind::kPow: return "**";
        case TokenKind::kEq: return "==";
        case TokenKind::kNotEq: return "!=";
        case TokenKind::kIdentical: return "===";
        case TokenKind::kNotIdentical: return "!==";
        case TokenKind::kSpaceship: return "<=>";
        case TokenKind::kLtEq: return "<=";
        case TokenKind::kGtEq: return ">=";
        case TokenKind::kAndAnd: return "&&";
        case TokenKind::kOrOr: return "||";
        case TokenKind::kCoalesce: return "??";
        case TokenKind::kShiftLeft: return "<<";
        case TokenKind::kShiftRight: return ">>";
        case TokenKind::kPlusEq: return "+=";
        case TokenKind::kMinusEq: return "-=";
        case TokenKind::kMulEq: return "*=";
        case TokenKind::kDivEq: return "/=";
        case TokenKind::kConcatEq: return ".=";
        case TokenKind::kModEq: return "%=";
        case TokenKind::kPowEq: return "**=";
        case TokenKind::kAndEq: return "&=";
        case TokenKind::kOrEq: return "|=";
        case TokenKind::kXorEq: return "^=";
        case TokenKind::kShlEq: return "<<=";
        case TokenKind::kShrEq: return ">>=";
        case TokenKind::kCoalesceEq: return "?\?=";
        case TokenKind::kEllipsis: return "...";
        case TokenKind::kPlus: return "+";
        case TokenKind::kMinus: return "-";
        case TokenKind::kStar: return "*";
        case TokenKind::kSlash: return "/";
        case TokenKind::kPercent: return "%";
        case TokenKind::kDot: return ".";
        case TokenKind::kAssign: return "=";
        case TokenKind::kLt: return "<";
        case TokenKind::kGt: return ">";
        case TokenKind::kNot: return "!";
        case TokenKind::kQuestion: return "?";
        case TokenKind::kColon: return ":";
        case TokenKind::kSemicolon: return ";";
        case TokenKind::kComma: return ",";
        case TokenKind::kLParen: return "(";
        case TokenKind::kRParen: return ")";
        case TokenKind::kLBrace: return "{";
        case TokenKind::kRBrace: return "}";
        case TokenKind::kLBracket: return "[";
        case TokenKind::kRBracket: return "]";
        case TokenKind::kAmp: return "&";
        case TokenKind::kPipe: return "|";
        case TokenKind::kCaret: return "^";
        case TokenKind::kTilde: return "~";
        case TokenKind::kAt: return "@";
        case TokenKind::kDollar: return "$";
        case TokenKind::kBacktick: return "`";
        case TokenKind::kBackslash: return "\\";
    }
    return "?";
}

Lexer::Lexer(const SourceFile& file, Arena& arena, DiagnosticSink& sink,
             Options options)
    : file_(file),
      text_(file.text()),
      arena_(arena),
      sink_(sink),
      options_(options) {}

char Lexer::advance() noexcept {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
}

bool Lexer::looking_at(std::string_view s) const noexcept {
    return text_.substr(pos_, s.size()) == s;
}

bool Lexer::match(std::string_view s) noexcept {
    if (!looking_at(s)) return false;
    for (size_t i = 0; i < s.size(); ++i) advance();
    return true;
}

Token Lexer::make(TokenKind kind, std::string_view text) const {
    Token t;
    t.kind = kind;
    t.text = text;
    t.line = line_;
    return t;
}

std::vector<Token> Lexer::tokenize() {
    std::vector<Token> out;
    // Plugin code averages one token per ~6 source bytes; one up-front
    // reservation replaces the dozen-plus geometric growth reallocations a
    // multi-thousand-token file would otherwise pay.
    out.reserve(text_.size() / 6 + 16);
    while (!at_end()) {
        if (mode_ == Mode::kHtml) {
            lex_html(out);
        } else {
            lex_php_token(out);
        }
    }
    out.push_back(make(TokenKind::kEndOfFile, ""));
    obs::tls().tokens_lexed += out.size();
    return out;
}

void Lexer::lex_html(std::vector<Token>& out) {
    const int start_line = line_;
    const size_t start = pos_;
    while (!at_end()) {
        if (looking_at("<?")) break;
        advance();
    }
    const std::string_view html = slice(start);
    if (!html.empty()) {
        Token t = make(TokenKind::kInlineHtml, html);
        t.line = start_line;
        out.push_back(std::move(t));
        obs::tls().alloc_string_bytes_saved += html.size();
    }
    if (at_end()) return;
    const int tag_line = line_;
    if (match("<?php")) {
        Token t = make(TokenKind::kOpenTag, "<?php");
        t.line = tag_line;
        out.push_back(std::move(t));
        mode_ = Mode::kPhp;
    } else if (match("<?=")) {
        Token t = make(TokenKind::kOpenTagWithEcho, "<?=");
        t.line = tag_line;
        out.push_back(std::move(t));
        mode_ = Mode::kPhp;
    } else if (match("<?")) {  // short open tag
        Token t = make(TokenKind::kOpenTag, "<?");
        t.line = tag_line;
        out.push_back(std::move(t));
        mode_ = Mode::kPhp;
    }
}

void Lexer::lex_php_token(std::vector<Token>& out) {
    // Skip whitespace.
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
    if (at_end()) return;

    const char c = peek();

    if (looking_at("?>")) {
        const int tag_line = line_;
        match("?>");
        // PHP swallows a single newline immediately after the close tag.
        if (peek() == '\n') advance();
        Token t = make(TokenKind::kCloseTag, "?>");
        t.line = tag_line;
        out.push_back(std::move(t));
        mode_ = Mode::kHtml;
        return;
    }

    if (looking_at("//") || looking_at("/*") ||
        (c == '#' && !looking_at("#["))) {
        lex_comment(out);
        return;
    }
    if (looking_at("#[")) {  // PHP 8 attribute: skip to matching ']'.
        int depth = 0;
        while (!at_end()) {
            const char a = advance();
            if (a == '[') ++depth;
            else if (a == ']' && --depth == 0) break;
        }
        return;
    }

    if (c == '$' && is_ident_start(peek(1))) {
        out.push_back(lex_variable());
        return;
    }
    if (is_ident_start(c)) {
        // Heredoc/nowdoc start with <<< which is handled below; identifiers here.
        out.push_back(lex_identifier_or_keyword());
        return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        out.push_back(lex_number());
        return;
    }
    if (c == '\'') {
        out.push_back(lex_single_quoted());
        return;
    }
    if (c == '"') {
        out.push_back(lex_double_quoted('"', TokenKind::kDoubleQuotedString));
        return;
    }
    if (c == '`') {
        // Shell-exec operator: lex the body like a double-quoted string so
        // interpolation is visible to the analysis (a potential sink).
        out.push_back(lex_double_quoted('`', TokenKind::kDoubleQuotedString));
        return;
    }
    if (looking_at("<<<")) {
        out.push_back(lex_heredoc());
        return;
    }
    if (c == '(' && try_lex_cast(out)) return;

    out.push_back(lex_operator());
}

Token Lexer::lex_variable() {
    const int start_line = line_;
    const size_t start = pos_;
    advance();  // '$'
    while (!at_end() && is_ident_char(peek())) advance();
    Token t = make(TokenKind::kVariable, slice(start));
    t.line = start_line;
    obs::tls().alloc_string_bytes_saved += t.text.size();
    return t;
}

Token Lexer::lex_identifier_or_keyword() {
    const int start_line = line_;
    const size_t start = pos_;
    while (!at_end() && is_ident_char(peek())) advance();
    const std::string_view raw = slice(start);
    Token t;
    if (!has_upper(raw)) {
        // Already lowercase: keyword and identifier text are both zero-copy.
        t = make(is_php_keyword(raw) ? TokenKind::kKeyword
                                     : TokenKind::kIdentifier,
                 raw);
        obs::tls().alloc_string_bytes_saved += raw.size();
    } else {
        const std::string lower = ascii_lower(raw);
        if (is_php_keyword(lower)) {
            t = make(TokenKind::kKeyword, arena_.store(lower));
        } else {
            t = make(TokenKind::kIdentifier, raw);
            obs::tls().alloc_string_bytes_saved += raw.size();
        }
    }
    t.line = start_line;
    return t;
}

Token Lexer::lex_number() {
    const int start_line = line_;
    const size_t start = pos_;
    bool is_float = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        while (!at_end() && (std::isxdigit(static_cast<unsigned char>(peek())) || peek() == '_'))
            advance();
    } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
        advance();
        advance();
        while (!at_end() && (peek() == '0' || peek() == '1' || peek() == '_'))
            advance();
    } else {
        while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_'))
            advance();
        if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
            is_float = true;
            advance();
            while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
                advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            size_t look = 1;
            if (peek(1) == '+' || peek(1) == '-') look = 2;
            if (std::isdigit(static_cast<unsigned char>(peek(look)))) {
                is_float = true;
                advance();
                if (peek() == '+' || peek() == '-') advance();
                while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
                    advance();
            }
        }
    }
    Token t = make(is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral,
                   slice(start));
    t.line = start_line;
    return t;
}

Token Lexer::lex_single_quoted() {
    const int start_line = line_;
    const size_t tok_start = pos_;
    advance();  // opening quote
    const size_t body_start = pos_;
    bool terminated = false;
    while (!at_end()) {
        const char c = peek();
        if (c == '\\' && (peek(1) == '\\' || peek(1) == '\'')) {
            advance();
            advance();
            continue;
        }
        if (c == '\'') {
            terminated = true;
            break;
        }
        advance();
    }
    const std::string_view body = slice(body_start);
    if (terminated) {
        advance();  // closing quote
    } else {
        sink_.add(Severity::kError, {file_.name(), start_line},
                  "unterminated string literal");
    }
    Token t = make(TokenKind::kSingleQuotedString, slice(tok_start));
    if (body.find('\\') == std::string_view::npos) {
        t.value = body;  // nothing to decode: reuse the source bytes
        obs::tls().alloc_string_bytes_saved += body.size();
    } else {
        t.value = arena_.store(decode_single_quoted(body));
    }
    t.line = start_line;
    return t;
}

Token Lexer::lex_double_quoted(char quote, TokenKind kind) {
    const int start_line = line_;
    const size_t tok_start = pos_;
    advance();  // opening quote
    const size_t body_start = pos_;
    bool terminated = false;
    while (!at_end()) {
        const char c = peek();
        if (c == '\\' && pos_ + 1 < text_.size()) {
            advance();
            advance();
            continue;
        }
        if (c == quote) {
            terminated = true;
            break;
        }
        advance();
    }
    const std::string_view body = slice(body_start);
    if (terminated) {
        advance();  // closing quote
    } else {
        sink_.add(Severity::kError, {file_.name(), start_line},
                  "unterminated string literal");
    }
    Token t = make(kind, slice(tok_start));
    t.line = start_line;
    scan_interpolation(body, t);
    return t;
}

Token Lexer::lex_heredoc() {
    const int start_line = line_;
    match("<<<");
    while (!at_end() && (peek() == ' ' || peek() == '\t')) advance();
    bool nowdoc = false;
    bool quoted = false;
    if (peek() == '\'') {
        nowdoc = true;
        advance();
    } else if (peek() == '"') {
        quoted = true;
        advance();
    }
    const size_t label_start = pos_;
    while (!at_end() && is_ident_char(peek())) advance();
    const std::string_view label = slice(label_start);
    if ((nowdoc && peek() == '\'') || (quoted && peek() == '"')) advance();
    // Skip to end of line.
    while (!at_end() && peek() != '\n') advance();
    if (!at_end()) advance();

    const size_t body_start = pos_;
    size_t body_end = pos_;
    bool terminated = false;
    while (!at_end()) {
        // Check for terminator at line start (PHP 7.3 allows indentation).
        size_t probe = pos_;
        while (probe < text_.size() && (text_[probe] == ' ' || text_[probe] == '\t')) ++probe;
        if (text_.substr(probe, label.size()) == label) {
            const size_t after = probe + label.size();
            const char next = after < text_.size() ? text_[after] : '\n';
            if (!is_ident_char(next)) {
                body_end = pos_;
                // Consume up to and including the label.
                while (pos_ < after) advance();
                terminated = true;
                break;
            }
        }
        // Scan past one full line.
        while (!at_end()) {
            if (advance() == '\n') break;
        }
        body_end = pos_;
    }
    if (!terminated)
        sink_.add(Severity::kError, {file_.name(), start_line},
                  "unterminated heredoc '" + std::string(label) + "'");
    std::string_view body = text_.substr(body_start, body_end - body_start);
    if (!body.empty() && body.back() == '\n') body.remove_suffix(1);

    Token t = make(nowdoc ? TokenKind::kNowdoc : TokenKind::kHeredoc, body);
    t.line = start_line;
    if (nowdoc) {
        t.value = body;
        obs::tls().alloc_string_bytes_saved += body.size();
    } else {
        scan_interpolation(body, t);
    }
    return t;
}

void Lexer::scan_interpolation(std::string_view body, Token& token) {
    // `body` is a slice of the retained source buffer, so literal runs and
    // embedded-expression sources that need no transformation are kept as
    // subviews; only decoded escapes and synthesized expressions (${name},
    // re-quoted indexes) are copied into the arena.
    size_t seg_start = 0;
    auto flush_literal = [&](size_t end_pos) {
        if (end_pos <= seg_start) return;
        const std::string_view raw = body.substr(seg_start, end_pos - seg_start);
        StringPart part;
        part.kind = StringPart::Kind::kLiteral;
        if (raw.find('\\') == std::string_view::npos) {
            part.text = raw;
            obs::tls().alloc_string_bytes_saved += raw.size();
        } else {
            part.text = arena_.store(decode_double_quoted(raw));
        }
        token.parts.push_back(part);
    };
    auto add_expr = [&](size_t lit_end, std::string_view expr) {
        flush_literal(lit_end);
        StringPart part;
        part.kind = StringPart::Kind::kExpression;
        part.text = expr;
        token.parts.push_back(part);
    };

    size_t i = 0;
    while (i < body.size()) {
        const char c = body[i];
        if (c == '\\' && i + 1 < body.size()) {
            i += 2;
            continue;
        }
        // Complex syntax: {$expr}
        if (c == '{' && i + 1 < body.size() && body[i + 1] == '$') {
            size_t j = i + 1;
            int depth = 1;
            while (j < body.size() && depth > 0) {
                if (body[j] == '{') ++depth;
                if (body[j] == '}') {
                    --depth;
                    if (depth == 0) break;
                }
                ++j;
            }
            add_expr(i, body.substr(i + 1, j - (i + 1)));
            obs::tls().alloc_string_bytes_saved += j - (i + 1);
            seg_start = i = (j < body.size()) ? j + 1 : j;
            continue;
        }
        // ${name} syntax.
        if (c == '$' && i + 1 < body.size() && body[i + 1] == '{') {
            size_t j = i + 2;
            while (j < body.size() && body[j] != '}') ++j;
            std::string synth = "$";
            synth += body.substr(i + 2, j - (i + 2));
            add_expr(i, arena_.store(synth));
            seg_start = i = (j < body.size()) ? j + 1 : j;
            continue;
        }
        // Simple syntax: $name, $name->prop, $name[index]
        if (c == '$' && i + 1 < body.size() && is_ident_start(body[i + 1])) {
            size_t j = i + 1;
            while (j < body.size() && is_ident_char(body[j])) ++j;
            size_t expr_end = j;
            bool synthesized = false;
            std::string synth;
            if (j + 1 < body.size() && body[j] == '-' && body[j + 1] == '>' &&
                j + 2 < body.size() && is_ident_start(body[j + 2])) {
                j += 2;
                while (j < body.size() && is_ident_char(body[j])) ++j;
                expr_end = j;
            } else if (j < body.size() && body[j] == '[') {
                size_t k = j + 1;
                while (k < body.size() && body[k] != ']') ++k;
                if (k < body.size()) {
                    const std::string_view index = body.substr(j + 1, k - (j + 1));
                    const std::string_view idx = trim(index);
                    bool numeric = !idx.empty();
                    for (const char d : idx)
                        if (!std::isdigit(static_cast<unsigned char>(d))) numeric = false;
                    if (!idx.empty() && (idx.front() == '\'' || idx.front() == '"' ||
                                         idx.front() == '$' || numeric)) {
                        if (idx.size() == index.size()) {
                            // "$name[idx]" is already verbatim in the source.
                            expr_end = k + 1;
                        } else {
                            synth.assign(body.substr(i, j - i));
                            synth += '[';
                            synth += idx;
                            synth += ']';
                            synthesized = true;
                        }
                    } else {
                        // PHP's simple syntax allows unquoted string keys.
                        synth.assign(body.substr(i, j - i));
                        synth += "['";
                        synth += idx;
                        synth += "']";
                        synthesized = true;
                    }
                    j = k + 1;
                }
            }
            if (synthesized) {
                add_expr(i, arena_.store(synth));
            } else {
                add_expr(i, body.substr(i, expr_end - i));
                obs::tls().alloc_string_bytes_saved += expr_end - i;
            }
            seg_start = i = j;
            continue;
        }
        ++i;
    }
    flush_literal(body.size());

    // The decoded value is the concatenation of literal parts (expressions
    // contribute nothing to the static value). Single-literal tokens — the
    // overwhelmingly common case — reuse the part's view.
    size_t literal_count = 0;
    std::string_view single;
    for (const StringPart& p : token.parts) {
        if (p.kind != StringPart::Kind::kLiteral) continue;
        ++literal_count;
        single = p.text;
    }
    if (literal_count == 0) {
        token.value = {};
    } else if (literal_count == 1) {
        token.value = single;
    } else {
        std::string value;
        for (const StringPart& p : token.parts)
            if (p.kind == StringPart::Kind::kLiteral) value += p.text;
        token.value = arena_.store(value);
    }
}

void Lexer::lex_comment(std::vector<Token>& out) {
    const int start_line = line_;
    const size_t start = pos_;
    if (looking_at("/*")) {
        match("/*");
        while (!at_end() && !looking_at("*/")) advance();
        if (!match("*/"))
            sink_.add(Severity::kWarning, {file_.name(), start_line},
                      "unterminated block comment");
    } else {
        // Line comment: ends at newline or before '?>'.
        if (looking_at("//")) {
            match("//");
        } else {
            match("#");
        }
        while (!at_end() && peek() != '\n' && !looking_at("?>")) advance();
    }
    if (options_.keep_comments) {
        Token t = make(TokenKind::kComment, slice(start));
        t.line = start_line;
        obs::tls().alloc_string_bytes_saved += t.text.size();
        out.push_back(std::move(t));
    }
}

bool Lexer::try_lex_cast(std::vector<Token>& out) {
    // Lookahead: "(" ws* castname ws* ")".
    size_t probe = pos_ + 1;
    while (probe < text_.size() &&
           (text_[probe] == ' ' || text_[probe] == '\t'))
        ++probe;
    const size_t name_start = probe;
    while (probe < text_.size() && std::isalpha(static_cast<unsigned char>(text_[probe])))
        ++probe;
    const std::string_view name = text_.substr(name_start, probe - name_start);
    while (probe < text_.size() && (text_[probe] == ' ' || text_[probe] == '\t')) ++probe;
    if (probe >= text_.size() || text_[probe] != ')') return false;
    const std::string lower = ascii_lower(name);  // short: stays in SSO
    if (!cast_name_set().count(lower)) return false;

    const int start_line = line_;
    const size_t tok_start = pos_;
    while (pos_ <= probe) advance();
    Token t = make(TokenKind::kCast, slice(tok_start));
    t.value = has_upper(name) ? arena_.store(lower) : name;
    t.line = start_line;
    out.push_back(std::move(t));
    return true;
}

Token Lexer::lex_operator() {
    const int start_line = line_;
    struct OpEntry {
        std::string_view text;
        TokenKind kind;
    };
    // Longest-match table; ordered by length.
    static constexpr std::array<OpEntry, 28> kMulti = {{
        {"<<=", TokenKind::kShlEq}, {">>=", TokenKind::kShrEq},
        {"**=", TokenKind::kPowEq}, {"===", TokenKind::kIdentical},
        {"!==", TokenKind::kNotIdentical}, {"<=>", TokenKind::kSpaceship},
        {"?\?=", TokenKind::kCoalesceEq}, {"...", TokenKind::kEllipsis},
        {"?->", TokenKind::kNullsafeArrow},
        {"->", TokenKind::kArrow}, {"::", TokenKind::kDoubleColon},
        {"=>", TokenKind::kDoubleArrow}, {"++", TokenKind::kInc},
        {"--", TokenKind::kDec}, {"**", TokenKind::kPow},
        {"==", TokenKind::kEq}, {"!=", TokenKind::kNotEq},
        {"<>", TokenKind::kNotEq}, {"<=", TokenKind::kLtEq},
        {">=", TokenKind::kGtEq}, {"&&", TokenKind::kAndAnd},
        {"||", TokenKind::kOrOr}, {"??", TokenKind::kCoalesce},
        {"<<", TokenKind::kShiftLeft}, {">>", TokenKind::kShiftRight},
        {"+=", TokenKind::kPlusEq}, {"-=", TokenKind::kMinusEq},
        {".=", TokenKind::kConcatEq},
    }};
    static constexpr std::array<OpEntry, 5> kMulti2 = {{
        {"*=", TokenKind::kMulEq}, {"/=", TokenKind::kDivEq},
        {"%=", TokenKind::kModEq}, {"&=", TokenKind::kAndEq},
        {"|=", TokenKind::kOrEq},
    }};

    for (const OpEntry& e : kMulti) {
        if (match(e.text)) {
            Token t = make(e.kind, e.text);
            t.line = start_line;
            return t;
        }
    }
    for (const OpEntry& e : kMulti2) {
        if (match(e.text)) {
            Token t = make(e.kind, e.text);
            t.line = start_line;
            return t;
        }
    }
    if (match("^=")) {
        Token t = make(TokenKind::kXorEq, "^=");
        t.line = start_line;
        return t;
    }

    const size_t start = pos_;
    const char c = advance();
    TokenKind kind;
    switch (c) {
        case '+': kind = TokenKind::kPlus; break;
        case '-': kind = TokenKind::kMinus; break;
        case '*': kind = TokenKind::kStar; break;
        case '/': kind = TokenKind::kSlash; break;
        case '%': kind = TokenKind::kPercent; break;
        case '.': kind = TokenKind::kDot; break;
        case '=': kind = TokenKind::kAssign; break;
        case '<': kind = TokenKind::kLt; break;
        case '>': kind = TokenKind::kGt; break;
        case '!': kind = TokenKind::kNot; break;
        case '?': kind = TokenKind::kQuestion; break;
        case ':': kind = TokenKind::kColon; break;
        case ';': kind = TokenKind::kSemicolon; break;
        case ',': kind = TokenKind::kComma; break;
        case '(': kind = TokenKind::kLParen; break;
        case ')': kind = TokenKind::kRParen; break;
        case '{': kind = TokenKind::kLBrace; break;
        case '}': kind = TokenKind::kRBrace; break;
        case '[': kind = TokenKind::kLBracket; break;
        case ']': kind = TokenKind::kRBracket; break;
        case '&': kind = TokenKind::kAmp; break;
        case '|': kind = TokenKind::kPipe; break;
        case '^': kind = TokenKind::kCaret; break;
        case '~': kind = TokenKind::kTilde; break;
        case '@': kind = TokenKind::kAt; break;
        case '$': kind = TokenKind::kDollar; break;
        case '`': kind = TokenKind::kBacktick; break;
        case '\\': kind = TokenKind::kBackslash; break;
        default:
            sink_.add(Severity::kWarning, {file_.name(), start_line},
                      std::string("unexpected character '") + c + "'");
            kind = TokenKind::kAt;  // benign placeholder
    }
    Token t = make(kind, slice(start));
    t.line = start_line;
    return t;
}

}  // namespace phpsafe::php
