// Token taxonomy for the PHP lexer. Kinds mirror the PHP interpreter's
// token_get_all() taxonomy (T_VARIABLE, T_OBJECT_OPERATOR, ...) that the
// paper's model-construction stage is built on, with two simplifications:
//  * interpolated double-quoted strings / heredocs are one token carrying a
//    structured part list instead of an ENCAPSED token run;
//  * one-character punctuation is a kind per character family.
//
// Tokens are zero-copy: `text` and `value` are string_views into the
// SourceFile's retained text whenever the lexeme needs no transformation,
// and into the per-file Arena when it does (decoded escapes, case-folded
// keywords, synthesized interpolation expressions). Either way the bytes
// live exactly as long as the ParsedFile that owns source and arena.
#pragma once

#include <string_view>
#include <vector>

#include "util/source.h"

namespace phpsafe::php {

enum class TokenKind {
    kEndOfFile,
    kInlineHtml,        ///< text outside <?php ... ?>
    kOpenTag,           ///< "<?php"
    kOpenTagWithEcho,   ///< "<?="
    kCloseTag,          ///< "?>"

    kVariable,          ///< $name (text keeps the '$')
    kIdentifier,        ///< T_STRING: function/class/const names, true/false/null
    kKeyword,           ///< reserved word (text is the lowercase keyword)

    kIntLiteral,
    kFloatLiteral,
    kSingleQuotedString, ///< value() holds the decoded contents
    kDoubleQuotedString, ///< may carry interpolation parts
    kHeredoc,            ///< behaves like kDoubleQuotedString
    kNowdoc,             ///< behaves like kSingleQuotedString
    kComment,            ///< only emitted when Lexer::Options::keep_comments

    kCast,               ///< "(int)" etc.; value() holds the cast name

    // Multi-character operators.
    kArrow,              ///< ->
    kNullsafeArrow,      ///< ?->
    kDoubleColon,        ///< ::
    kDoubleArrow,        ///< =>
    kInc,                ///< ++
    kDec,                ///< --
    kPow,                ///< **
    kEq, kNotEq,         ///< == !=  (also <>)
    kIdentical, kNotIdentical, ///< === !==
    kSpaceship,          ///< <=>
    kLtEq, kGtEq,        ///< <= >=
    kAndAnd, kOrOr,      ///< && ||
    kCoalesce,           ///< ??
    kShiftLeft, kShiftRight, ///< << >>
    kPlusEq, kMinusEq, kMulEq, kDivEq, kConcatEq, kModEq, kPowEq,
    kAndEq, kOrEq, kXorEq, kShlEq, kShrEq, kCoalesceEq,
    kEllipsis,           ///< ...

    // Single-character punctuation.
    kPlus, kMinus, kStar, kSlash, kPercent, kDot,
    kAssign,             ///< =
    kLt, kGt,
    kNot,                ///< !
    kQuestion, kColon, kSemicolon, kComma,
    kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
    kAmp, kPipe, kCaret, kTilde, kAt, kDollar, kBacktick, kBackslash,
};

const char* to_string(TokenKind kind);

/// One piece of an interpolated string: either literal text or an embedded
/// expression kept as raw PHP source (re-parsed by the parser on demand).
struct StringPart {
    enum class Kind { kLiteral, kExpression } kind = Kind::kLiteral;
    std::string_view text;  ///< literal contents or raw expression source
};

struct Token {
    TokenKind kind = TokenKind::kEndOfFile;
    std::string_view text;          ///< raw lexeme (keyword text is lowercased)
    std::string_view value;         ///< decoded value for strings / cast name
    std::vector<StringPart> parts;  ///< interpolation parts (strings only)
    int line = 0;

    bool is(TokenKind k) const noexcept { return kind == k; }
    bool is_keyword(std::string_view kw) const noexcept {
        return kind == TokenKind::kKeyword && text == kw;
    }
    /// True for tokens that carry string contents.
    bool is_any_string() const noexcept {
        return kind == TokenKind::kSingleQuotedString ||
               kind == TokenKind::kDoubleQuotedString ||
               kind == TokenKind::kHeredoc || kind == TokenKind::kNowdoc;
    }
    /// True if the string token interpolates at least one expression.
    bool has_interpolation() const noexcept {
        for (const StringPart& p : parts)
            if (p.kind == StringPart::Kind::kExpression) return true;
        return false;
    }
};

}  // namespace phpsafe::php
