#include "php/parser.h"

#include <cassert>

#include "obs/counters.h"
#include "php/lexer.h"
#include "util/strings.h"
#include "util/timing.h"

namespace phpsafe::php {

namespace {

/// Binding powers for infix operators (higher binds tighter). Mirrors the
/// PHP operator-precedence table; assignment sits between the word logical
/// operators and everything else, so `$a = $b or die()` groups as
/// `($a = $b) or die()`.
constexpr int kBpOr = 1;
constexpr int kBpXor = 2;
constexpr int kBpAnd = 3;
constexpr int kBpAssign = 4;
constexpr int kBpTernary = 5;
constexpr int kBpCoalesce = 6;
constexpr int kBpOrOr = 7;
constexpr int kBpAndAnd = 8;
constexpr int kBpBitOr = 9;
constexpr int kBpBitXor = 10;
constexpr int kBpBitAnd = 11;
constexpr int kBpEquality = 12;
constexpr int kBpRelational = 13;
constexpr int kBpShift = 14;
constexpr int kBpAdditive = 15;
constexpr int kBpMultiplicative = 16;
constexpr int kBpInstanceof = 17;
constexpr int kBpPow = 18;

struct InfixOp {
    BinaryOp op;
    int bp;
    bool right_assoc = false;
};

/// Returns the infix entry for the current token, or nullopt.
std::optional<InfixOp> infix_for(const Token& tok) {
    switch (tok.kind) {
        case TokenKind::kDot: return InfixOp{BinaryOp::kConcat, kBpAdditive};
        case TokenKind::kPlus: return InfixOp{BinaryOp::kAdd, kBpAdditive};
        case TokenKind::kMinus: return InfixOp{BinaryOp::kSub, kBpAdditive};
        case TokenKind::kStar: return InfixOp{BinaryOp::kMul, kBpMultiplicative};
        case TokenKind::kSlash: return InfixOp{BinaryOp::kDiv, kBpMultiplicative};
        case TokenKind::kPercent: return InfixOp{BinaryOp::kMod, kBpMultiplicative};
        case TokenKind::kPow: return InfixOp{BinaryOp::kPow, kBpPow, true};
        case TokenKind::kEq: return InfixOp{BinaryOp::kEq, kBpEquality};
        case TokenKind::kNotEq: return InfixOp{BinaryOp::kNotEq, kBpEquality};
        case TokenKind::kIdentical: return InfixOp{BinaryOp::kIdentical, kBpEquality};
        case TokenKind::kNotIdentical:
            return InfixOp{BinaryOp::kNotIdentical, kBpEquality};
        case TokenKind::kLt: return InfixOp{BinaryOp::kLt, kBpRelational};
        case TokenKind::kGt: return InfixOp{BinaryOp::kGt, kBpRelational};
        case TokenKind::kLtEq: return InfixOp{BinaryOp::kLtEq, kBpRelational};
        case TokenKind::kGtEq: return InfixOp{BinaryOp::kGtEq, kBpRelational};
        case TokenKind::kSpaceship:
            return InfixOp{BinaryOp::kSpaceship, kBpRelational};
        case TokenKind::kAndAnd: return InfixOp{BinaryOp::kAnd, kBpAndAnd};
        case TokenKind::kOrOr: return InfixOp{BinaryOp::kOr, kBpOrOr};
        case TokenKind::kCoalesce:
            return InfixOp{BinaryOp::kCoalesce, kBpCoalesce, true};
        case TokenKind::kAmp: return InfixOp{BinaryOp::kBitAnd, kBpBitAnd};
        case TokenKind::kPipe: return InfixOp{BinaryOp::kBitOr, kBpBitOr};
        case TokenKind::kCaret: return InfixOp{BinaryOp::kBitXor, kBpBitXor};
        case TokenKind::kShiftLeft: return InfixOp{BinaryOp::kShl, kBpShift};
        case TokenKind::kShiftRight: return InfixOp{BinaryOp::kShr, kBpShift};
        case TokenKind::kKeyword:
            if (tok.text == "and") return InfixOp{BinaryOp::kAnd, kBpAnd};
            if (tok.text == "or") return InfixOp{BinaryOp::kOr, kBpOr};
            if (tok.text == "xor") return InfixOp{BinaryOp::kXor, kBpXor};
            return std::nullopt;
        default: return std::nullopt;
    }
}

std::optional<AssignOp> assign_op_for(TokenKind kind) {
    switch (kind) {
        case TokenKind::kAssign: return AssignOp::kAssign;
        case TokenKind::kConcatEq: return AssignOp::kConcat;
        case TokenKind::kPlusEq: return AssignOp::kPlus;
        case TokenKind::kMinusEq: return AssignOp::kMinus;
        case TokenKind::kMulEq: return AssignOp::kMul;
        case TokenKind::kDivEq: return AssignOp::kDiv;
        case TokenKind::kModEq: return AssignOp::kMod;
        case TokenKind::kPowEq: return AssignOp::kPow;
        case TokenKind::kAndEq: return AssignOp::kBitAnd;
        case TokenKind::kOrEq: return AssignOp::kBitOr;
        case TokenKind::kXorEq: return AssignOp::kBitXor;
        case TokenKind::kShlEq: return AssignOp::kShl;
        case TokenKind::kShrEq: return AssignOp::kShr;
        case TokenKind::kCoalesceEq: return AssignOp::kCoalesce;
        default: return std::nullopt;
    }
}

bool is_assignable(const Expr& e) noexcept {
    switch (e.kind) {
        case NodeKind::kVariable:
        case NodeKind::kArrayAccess:
        case NodeKind::kPropertyAccess:
        case NodeKind::kStaticPropertyAccess:
        case NodeKind::kListExpr:
            return true;
        default:
            return false;
    }
}

}  // namespace

Parser::Parser(const SourceFile& file, Arena& arena, DiagnosticSink& sink,
               Options options)
    : file_(file), arena_(arena), sink_(sink), options_(options) {
    const double lex_start = thread_cpu_seconds();
    Lexer lexer(file, arena, sink);
    tokens_ = lexer.tokenize();
    lex_cpu_seconds_ = thread_cpu_seconds() - lex_start;
}

const Token& Parser::peek(size_t ahead) const noexcept {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::consume() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
}

bool Parser::accept(TokenKind kind) {
    if (!check(kind)) return false;
    consume();
    return true;
}

bool Parser::accept_keyword(std::string_view kw) {
    if (!check_keyword(kw)) return false;
    consume();
    return true;
}

bool Parser::expect(TokenKind kind, std::string_view what) {
    if (accept(kind)) return true;
    error_here("expected " + std::string(what) + " before '" +
               std::string(current().text) + "'");
    return false;
}

bool Parser::enter_depth() {
    ++depth_;
    if (aborted_) return false;  // fast-fail so recursion unwinds quickly
    if (options_.max_depth > 0 && depth_ > options_.max_depth) {
        aborted_ = true;
        ++obs::tls().parse_errors;
        sink_.add(Severity::kFatal, loc_here(),
                  "nesting deeper than " + std::to_string(options_.max_depth) +
                      " levels; aborting analysis of this file");
        return false;
    }
    return true;
}

void Parser::error_here(const std::string& message) {
    ++error_count_;
    ++obs::tls().parse_errors;
    sink_.add(Severity::kError, loc_here(), message);
    if (options_.max_errors > 0 && error_count_ >= options_.max_errors && !aborted_) {
        aborted_ = true;
        sink_.add(Severity::kFatal, {file_.name(), current().line},
                  "too many parse errors; aborting analysis of this file");
    }
}

SourceLocation Parser::loc_here() const { return {file_.name(), current().line}; }

void Parser::skip_tags() {
    while (check(TokenKind::kOpenTag) || check(TokenKind::kCloseTag)) consume();
}

FileUnit Parser::parse() {
    FileUnit unit;
    unit.file_name = file_.name();
    while (!at_eof() && !aborted_) {
        const size_t before = pos_;
        StmtPtr stmt = parse_statement();
        if (stmt) unit.statements.push_back(std::move(stmt));
        if (pos_ == before && !at_eof()) consume();  // always make progress
    }
    return unit;
}

ExprPtr Parser::parse_expression_text(std::string_view php_expr,
                                      std::string_view file_name, int line,
                                      DiagnosticSink& sink, Arena& arena) {
    // The snippet's text backs string_views in the parsed expression, so it
    // must live as long as the arena: allocate the SourceFile from it (its
    // destructor is registered on the arena's teardown list).
    std::string text = "<?php ";
    text += php_expr;
    text += ';';
    auto* snippet =
        arena.create<SourceFile>(std::string(file_name), std::move(text));
    Parser parser(*snippet, arena, sink);
    parser.skip_tags();
    ExprPtr expr = parser.parse_expression();
    if (expr) expr->line = line;
    return expr;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parse_statement() {
    skip_tags();
    if (at_eof()) return nullptr;
    DepthGuard depth(*this);
    if (!depth) return nullptr;

    const Token& tok = current();
    switch (tok.kind) {
        case TokenKind::kInlineHtml: {
            auto* html = arena_.create<InlineHtmlStmt>();
            html->line = tok.line;
            html->html = consume().text;
            return html;
        }
        case TokenKind::kOpenTagWithEcho:
            consume();
            return parse_echo(/*from_open_tag=*/true);
        case TokenKind::kSemicolon:
            consume();
            return nullptr;
        case TokenKind::kLBrace: {
            consume();
            auto* block = arena_.create<Block>();
            block->line = tok.line;
            while (!at_eof() && !check(TokenKind::kRBrace) && !aborted_) {
                const size_t before = pos_;
                StmtPtr s = parse_statement();
                if (s) block->statements.push_back(std::move(s));
                if (pos_ == before && !at_eof() && !check(TokenKind::kRBrace)) consume();
            }
            expect(TokenKind::kRBrace, "'}'");
            return block;
        }
        case TokenKind::kKeyword:
            if (tok.text == "if") return parse_if();
            if (tok.text == "while") return parse_while();
            if (tok.text == "do") return parse_do_while();
            if (tok.text == "for") return parse_for();
            if (tok.text == "foreach") return parse_foreach();
            if (tok.text == "switch") return parse_switch();
            if (tok.text == "return") return parse_return();
            if (tok.text == "echo") {
                consume();
                return parse_echo(false);
            }
            if (tok.text == "global") return parse_global();
            if (tok.text == "static") {
                // `static $x` is a static-variable declaration; `static::`
                // and `static function` are expressions.
                if (peek(1).kind == TokenKind::kVariable &&
                    peek(2).kind != TokenKind::kDoubleColon)
                    return parse_static_var();
                return parse_expression_statement();
            }
            if (tok.text == "unset") return parse_unset();
            if (tok.text == "break") {
                consume();
                auto* s = arena_.create<BreakStmt>();
                s->line = tok.line;
                if (check(TokenKind::kIntLiteral)) consume();
                accept(TokenKind::kSemicolon);
                return s;
            }
            if (tok.text == "continue") {
                consume();
                auto* s = arena_.create<ContinueStmt>();
                s->line = tok.line;
                if (check(TokenKind::kIntLiteral)) consume();
                accept(TokenKind::kSemicolon);
                return s;
            }
            if (tok.text == "function") {
                // Distinguish a declaration from a closure expression.
                const Token& next = peek(1);
                if (next.kind == TokenKind::kIdentifier ||
                    (next.kind == TokenKind::kAmp &&
                     peek(2).kind == TokenKind::kIdentifier))
                    return parse_function_decl();
                return parse_expression_statement();
            }
            if (tok.text == "abstract" || tok.text == "final") {
                const bool is_abstract = tok.text == "abstract";
                const bool is_final = tok.text == "final";
                consume();
                if (check_keyword("class")) {
                    consume();
                    return parse_class_decl(ClassDecl::Kind::kClass, is_abstract, is_final);
                }
                error_here("expected 'class' after modifier");
                return nullptr;
            }
            if (tok.text == "class") {
                consume();
                return parse_class_decl(ClassDecl::Kind::kClass, false, false);
            }
            if (tok.text == "interface") {
                consume();
                return parse_class_decl(ClassDecl::Kind::kInterface, false, false);
            }
            if (tok.text == "trait") {
                consume();
                return parse_class_decl(ClassDecl::Kind::kTrait, false, false);
            }
            if (tok.text == "try") return parse_try();
            if (tok.text == "throw") {
                consume();
                auto* s = arena_.create<ThrowStmt>();
                s->line = tok.line;
                s->value = parse_expression();
                accept(TokenKind::kSemicolon);
                return s;
            }
            if (tok.text == "namespace") return parse_namespace();
            if (tok.text == "use") return parse_use();
            if (tok.text == "const") return parse_const();
            if (tok.text == "declare") {
                consume();
                if (accept(TokenKind::kLParen)) {
                    int depth = 1;
                    while (!at_eof() && depth > 0) {
                        if (check(TokenKind::kLParen)) ++depth;
                        if (check(TokenKind::kRParen)) --depth;
                        consume();
                    }
                }
                accept(TokenKind::kSemicolon);
                return nullptr;
            }
            if (tok.text == "goto") {  // rarely used; skip label
                consume();
                if (check(TokenKind::kIdentifier)) consume();
                accept(TokenKind::kSemicolon);
                return nullptr;
            }
            return parse_expression_statement();
        default:
            return parse_expression_statement();
    }
}

StmtPtr Parser::parse_block_or_statement() {
    skip_tags();
    if (check(TokenKind::kLBrace)) return parse_statement();
    StmtPtr s = parse_statement();
    if (s) return s;
    auto* empty = arena_.create<Block>();
    empty->line = current().line;
    return empty;
}

ArenaVector<StmtPtr> Parser::parse_statement_list_until(
    const std::vector<std::string_view>& end_keywords) {
    ArenaVector<StmtPtr> stmts;
    while (!at_eof() && !aborted_) {
        skip_tags();
        bool at_end = false;
        for (std::string_view kw : end_keywords)
            if (check_keyword(kw)) at_end = true;
        if (at_end || at_eof()) break;
        const size_t before = pos_;
        StmtPtr s = parse_statement();
        if (s) stmts.push_back(std::move(s));
        if (pos_ == before && !at_eof()) consume();
    }
    return stmts;
}

StmtPtr Parser::parse_if() {
    auto* stmt = arena_.create<IfStmt>();
    stmt->line = current().line;
    consume();  // if
    expect(TokenKind::kLParen, "'('");
    stmt->cond = parse_expression();
    expect(TokenKind::kRParen, "')'");

    if (accept(TokenKind::kColon)) {
        // Alternative syntax: if (...): ... [elseif/else] endif;
        auto* then_block = arena_.create<Block>();
        then_block->line = stmt->line;
        then_block->statements =
            parse_statement_list_until({"elseif", "else", "endif"});
        stmt->then_branch = std::move(then_block);
        if (check_keyword("elseif")) {
            // Re-enter as a nested if by rewriting elseif → if.
            stmt->else_branch = parse_if();
            return stmt;
        }
        if (accept_keyword("else")) {
            accept(TokenKind::kColon);
            auto* else_block = arena_.create<Block>();
            else_block->line = current().line;
            else_block->statements = parse_statement_list_until({"endif"});
            stmt->else_branch = std::move(else_block);
        }
        accept_keyword("endif");
        accept(TokenKind::kSemicolon);
        return stmt;
    }

    stmt->then_branch = parse_block_or_statement();
    skip_tags();
    if (check_keyword("elseif")) {
        stmt->else_branch = parse_if();
    } else if (accept_keyword("else")) {
        skip_tags();
        if (check_keyword("if")) {
            stmt->else_branch = parse_if();
        } else {
            stmt->else_branch = parse_block_or_statement();
        }
    }
    return stmt;
}

StmtPtr Parser::parse_while() {
    auto* stmt = arena_.create<WhileStmt>();
    stmt->line = current().line;
    consume();  // while
    expect(TokenKind::kLParen, "'('");
    stmt->cond = parse_expression();
    expect(TokenKind::kRParen, "')'");
    if (accept(TokenKind::kColon)) {
        auto* body = arena_.create<Block>();
        body->line = stmt->line;
        body->statements = parse_statement_list_until({"endwhile"});
        accept_keyword("endwhile");
        accept(TokenKind::kSemicolon);
        stmt->body = std::move(body);
        return stmt;
    }
    stmt->body = parse_block_or_statement();
    return stmt;
}

StmtPtr Parser::parse_do_while() {
    auto* stmt = arena_.create<DoWhileStmt>();
    stmt->line = current().line;
    consume();  // do
    stmt->body = parse_block_or_statement();
    if (accept_keyword("while")) {
        expect(TokenKind::kLParen, "'('");
        stmt->cond = parse_expression();
        expect(TokenKind::kRParen, "')'");
    } else {
        error_here("expected 'while' after do-block");
    }
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_for() {
    auto* stmt = arena_.create<ForStmt>();
    stmt->line = current().line;
    consume();  // for
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kSemicolon)) {
        do {
            stmt->init.push_back(parse_expression());
        } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kSemicolon, "';'");
    if (!check(TokenKind::kSemicolon)) {
        do {
            stmt->cond.push_back(parse_expression());
        } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kSemicolon, "';'");
    if (!check(TokenKind::kRParen)) {
        do {
            stmt->update.push_back(parse_expression());
        } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "')'");
    if (accept(TokenKind::kColon)) {
        auto* body = arena_.create<Block>();
        body->line = stmt->line;
        body->statements = parse_statement_list_until({"endfor"});
        accept_keyword("endfor");
        accept(TokenKind::kSemicolon);
        stmt->body = std::move(body);
        return stmt;
    }
    stmt->body = parse_block_or_statement();
    return stmt;
}

StmtPtr Parser::parse_foreach() {
    auto* stmt = arena_.create<ForeachStmt>();
    stmt->line = current().line;
    consume();  // foreach
    expect(TokenKind::kLParen, "'('");
    stmt->iterable = parse_expression();
    if (!accept_keyword("as")) error_here("expected 'as' in foreach");
    bool by_ref = accept(TokenKind::kAmp);
    ExprPtr first = parse_expression(kBpTernary + 1);
    if (accept(TokenKind::kDoubleArrow)) {
        stmt->key_var = std::move(first);
        stmt->by_ref = accept(TokenKind::kAmp);
        stmt->value_var = parse_expression(kBpTernary + 1);
    } else {
        stmt->by_ref = by_ref;
        stmt->value_var = std::move(first);
    }
    expect(TokenKind::kRParen, "')'");
    if (accept(TokenKind::kColon)) {
        auto* body = arena_.create<Block>();
        body->line = stmt->line;
        body->statements = parse_statement_list_until({"endforeach"});
        accept_keyword("endforeach");
        accept(TokenKind::kSemicolon);
        stmt->body = std::move(body);
        return stmt;
    }
    stmt->body = parse_block_or_statement();
    return stmt;
}

StmtPtr Parser::parse_switch() {
    auto* stmt = arena_.create<SwitchStmt>();
    stmt->line = current().line;
    consume();  // switch
    expect(TokenKind::kLParen, "'('");
    stmt->subject = parse_expression();
    expect(TokenKind::kRParen, "')'");
    const bool alt = accept(TokenKind::kColon);
    if (!alt) expect(TokenKind::kLBrace, "'{'");
    while (!at_eof() && !aborted_) {
        skip_tags();
        if ((alt && check_keyword("endswitch")) || (!alt && check(TokenKind::kRBrace)))
            break;
        if (accept_keyword("case")) {
            SwitchCase c;
            c.match = parse_expression();
            if (!accept(TokenKind::kColon)) accept(TokenKind::kSemicolon);
            c.body = parse_statement_list_until({"case", "default", "endswitch"});
            // '}' also ends the case body in brace syntax; the list helper
            // stops on keywords only, so double-check the brace here.
            stmt->cases.push_back(std::move(c));
            continue;
        }
        if (accept_keyword("default")) {
            SwitchCase c;
            if (!accept(TokenKind::kColon)) accept(TokenKind::kSemicolon);
            c.body = parse_statement_list_until({"case", "default", "endswitch"});
            stmt->cases.push_back(std::move(c));
            continue;
        }
        if (check(TokenKind::kRBrace)) break;
        consume();  // skip stray token
    }
    if (alt) {
        accept_keyword("endswitch");
        accept(TokenKind::kSemicolon);
    } else {
        expect(TokenKind::kRBrace, "'}'");
    }
    return stmt;
}

StmtPtr Parser::parse_return() {
    auto* stmt = arena_.create<ReturnStmt>();
    stmt->line = current().line;
    consume();  // return
    if (!check(TokenKind::kSemicolon) && !check(TokenKind::kCloseTag) && !at_eof())
        stmt->value = parse_expression();
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_echo(bool from_open_tag) {
    auto* stmt = arena_.create<EchoStmt>();
    stmt->line = current().line;
    stmt->from_open_tag = from_open_tag;
    do {
        stmt->args.push_back(parse_expression());
    } while (accept(TokenKind::kComma));
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_global() {
    auto* stmt = arena_.create<GlobalStmt>();
    stmt->line = current().line;
    consume();  // global
    do {
        if (check(TokenKind::kVariable)) {
            stmt->names.push_back(consume().text);
        } else {
            error_here("expected variable in global statement");
            break;
        }
    } while (accept(TokenKind::kComma));
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_static_var() {
    auto* stmt = arena_.create<StaticVarStmt>();
    stmt->line = current().line;
    consume();  // static
    do {
        if (!check(TokenKind::kVariable)) {
            error_here("expected variable in static declaration");
            break;
        }
        const std::string_view name = consume().text;
        ExprPtr init = nullptr;
        if (accept(TokenKind::kAssign)) init = parse_expression(kBpAssign + 1);
        stmt->vars.emplace_back(name, init);
    } while (accept(TokenKind::kComma));
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_unset() {
    auto* stmt = arena_.create<UnsetStmt>();
    stmt->line = current().line;
    consume();  // unset
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kRParen)) {
        do {
            stmt->vars.push_back(parse_expression());
        } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "')'");
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_function_decl() {
    auto* fn = arena_.create<FunctionDecl>();
    fn->line = current().line;
    consume();  // function
    fn->by_ref_return = accept(TokenKind::kAmp);
    if (check(TokenKind::kIdentifier) || check(TokenKind::kKeyword)) {
        fn->name = consume().text;
    } else {
        error_here("expected function name");
    }
    fn->params = parse_params();
    if (accept(TokenKind::kColon)) parse_type_hint();  // return type: ignored
    skip_tags();
    if (check(TokenKind::kLBrace)) {
        StmtPtr body = parse_statement();  // parses the block
        if (body && body->kind == NodeKind::kBlock)
            fn->body = std::move(static_cast<Block*>(body)->statements);
    } else {
        accept(TokenKind::kSemicolon);  // abstract/interface method
    }
    return fn;
}

void Parser::parse_class_member(ClassDecl& cls) {
    bool is_static = false, is_abstract = false;
    std::string_view visibility;
    // Modifier run.
    while (check(TokenKind::kKeyword)) {
        const std::string_view kw = current().text;
        if (kw == "public" || kw == "protected" || kw == "private") {
            visibility = kw;
            consume();
        } else if (kw == "static") {
            is_static = true;
            consume();
        } else if (kw == "abstract" || kw == "final" || kw == "readonly") {
            if (kw == "abstract") is_abstract = true;
            consume();
        } else if (kw == "var") {
            visibility = "public";
            consume();
        } else {
            break;
        }
    }

    if (check_keyword("function")) {
        StmtPtr decl = parse_function_decl();
        if (decl && decl->kind == NodeKind::kFunctionDecl) {
            auto* method = static_cast<FunctionDecl*>(decl);
            method->is_method = true;
            method->is_static = is_static;
            method->is_abstract = is_abstract;
            method->visibility = visibility.empty() ? "public" : visibility;
            cls.methods.push_back(method);
        }
        return;
    }
    if (check_keyword("const")) {
        consume();
        do {
            ClassConstDecl c;
            c.line = current().line;
            if (check(TokenKind::kIdentifier) || check(TokenKind::kKeyword))
                c.name = consume().text;
            if (accept(TokenKind::kAssign)) c.value = parse_expression(kBpAssign + 1);
            cls.constants.push_back(std::move(c));
        } while (accept(TokenKind::kComma));
        accept(TokenKind::kSemicolon);
        return;
    }
    if (check_keyword("use")) {  // trait use
        consume();
        do {
            cls.interfaces.push_back(parse_qualified_name());
        } while (accept(TokenKind::kComma));
        if (accept(TokenKind::kLBrace)) {  // conflict-resolution block: skip
            int depth = 1;
            while (!at_eof() && depth > 0) {
                if (check(TokenKind::kLBrace)) ++depth;
                if (check(TokenKind::kRBrace)) --depth;
                consume();
            }
        } else {
            accept(TokenKind::kSemicolon);
        }
        return;
    }
    // Typed property: optional type hint before the variable.
    if ((check(TokenKind::kIdentifier) || check(TokenKind::kQuestion) ||
         check_keyword("array")) &&
        peek(1).kind == TokenKind::kVariable) {
        parse_type_hint();
    }
    if (check(TokenKind::kVariable)) {
        do {
            PropertyDecl prop;
            prop.line = current().line;
            const std::string_view name = consume().text;
            prop.name = name.size() > 1 ? name.substr(1) : name;
            prop.is_static = is_static;
            prop.visibility = visibility.empty() ? "public" : visibility;
            if (accept(TokenKind::kAssign))
                prop.default_value = parse_expression(kBpAssign + 1);
            cls.properties.push_back(std::move(prop));
        } while (accept(TokenKind::kComma) && check(TokenKind::kVariable));
        accept(TokenKind::kSemicolon);
        return;
    }
    error_here("unexpected token in class body: '" +
               std::string(current().text) + "'");
    consume();
}

StmtPtr Parser::parse_class_decl(ClassDecl::Kind kind, bool is_abstract,
                                 bool is_final) {
    auto* cls = arena_.create<ClassDecl>();
    cls->class_kind = kind;
    cls->is_abstract = is_abstract;
    cls->is_final = is_final;
    cls->line = current().line;
    if (check(TokenKind::kIdentifier)) {
        cls->name = consume().text;
    } else {
        error_here("expected class name");
    }
    if (accept_keyword("extends")) {
        cls->parent = parse_qualified_name();
        // Interfaces may extend several bases; record the extras as interfaces.
        while (accept(TokenKind::kComma)) cls->interfaces.push_back(parse_qualified_name());
    }
    if (accept_keyword("implements")) {
        do {
            cls->interfaces.push_back(parse_qualified_name());
        } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kLBrace, "'{'");
    while (!at_eof() && !check(TokenKind::kRBrace) && !aborted_) {
        const size_t before = pos_;
        parse_class_member(*cls);
        if (pos_ == before && !at_eof() && !check(TokenKind::kRBrace)) consume();
    }
    expect(TokenKind::kRBrace, "'}'");
    return cls;
}

StmtPtr Parser::parse_try() {
    auto* stmt = arena_.create<TryStmt>();
    stmt->line = current().line;
    consume();  // try
    StmtPtr body = parse_statement();
    if (body && body->kind == NodeKind::kBlock)
        stmt->body = std::move(static_cast<Block*>(body)->statements);
    while (check_keyword("catch")) {
        consume();
        CatchClause clause;
        expect(TokenKind::kLParen, "'('");
        do {
            clause.types.push_back(parse_qualified_name());
        } while (accept(TokenKind::kPipe));
        if (check(TokenKind::kVariable)) clause.var = consume().text;
        expect(TokenKind::kRParen, "')'");
        StmtPtr cbody = parse_statement();
        if (cbody && cbody->kind == NodeKind::kBlock)
            clause.body = std::move(static_cast<Block*>(cbody)->statements);
        stmt->catches.push_back(std::move(clause));
    }
    if (accept_keyword("finally")) {
        stmt->has_finally = true;
        StmtPtr fbody = parse_statement();
        if (fbody && fbody->kind == NodeKind::kBlock)
            stmt->finally_body = std::move(static_cast<Block*>(fbody)->statements);
    }
    return stmt;
}

StmtPtr Parser::parse_namespace() {
    auto* stmt = arena_.create<NamespaceStmt>();
    stmt->line = current().line;
    consume();  // namespace
    if (check(TokenKind::kIdentifier) || check(TokenKind::kBackslash))
        stmt->name = parse_qualified_name();
    if (accept(TokenKind::kLBrace)) {
        while (!at_eof() && !check(TokenKind::kRBrace) && !aborted_) {
            const size_t before = pos_;
            StmtPtr s = parse_statement();
            if (s) stmt->body.push_back(std::move(s));
            if (pos_ == before && !at_eof() && !check(TokenKind::kRBrace)) consume();
        }
        expect(TokenKind::kRBrace, "'}'");
    } else {
        accept(TokenKind::kSemicolon);
    }
    return stmt;
}

StmtPtr Parser::parse_use() {
    auto* stmt = arena_.create<UseStmt>();
    stmt->line = current().line;
    consume();  // use
    // `use function`/`use const` prefixes.
    if (check_keyword("function") || check_keyword("const")) consume();
    do {
        const std::string_view fqn = parse_qualified_name();
        std::string_view alias;
        if (accept_keyword("as")) {
            if (check(TokenKind::kIdentifier)) alias = consume().text;
        }
        if (alias.empty()) {
            const size_t slash = fqn.rfind('\\');
            alias = slash == std::string_view::npos ? fqn : fqn.substr(slash + 1);
        }
        stmt->imports.emplace_back(fqn, alias);
    } while (accept(TokenKind::kComma));
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_const() {
    auto* stmt = arena_.create<ConstStmt>();
    stmt->line = current().line;
    consume();  // const
    do {
        std::string_view name;
        if (check(TokenKind::kIdentifier)) name = consume().text;
        ExprPtr value = nullptr;
        if (accept(TokenKind::kAssign)) value = parse_expression(kBpAssign + 1);
        if (!name.empty() && value)
            stmt->constants.emplace_back(name, value);
    } while (accept(TokenKind::kComma));
    accept(TokenKind::kSemicolon);
    return stmt;
}

StmtPtr Parser::parse_expression_statement() {
    auto* stmt = arena_.create<ExprStmt>();
    stmt->line = current().line;
    stmt->expr = parse_expression();
    accept(TokenKind::kSemicolon);
    if (!stmt->expr) return nullptr;
    return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expression(int min_bp) {
    DepthGuard depth(*this);
    if (!depth) return nullptr;
    ExprPtr lhs = parse_unary();
    if (!lhs) return nullptr;

    while (!at_eof()) {
        // Assignment (right-associative, only on assignable targets).
        if (const auto aop = assign_op_for(current().kind);
            aop && min_bp <= kBpAssign && is_assignable(*lhs)) {
            const int line = current().line;
            consume();
            auto* assign = arena_.create<Assign>();
            assign->line = line;
            assign->op = *aop;
            if (*aop == AssignOp::kAssign && accept(TokenKind::kAmp))
                assign->by_ref = true;
            assign->target = std::move(lhs);
            assign->value = parse_expression(kBpAssign);  // right-assoc
            lhs = std::move(assign);
            continue;
        }
        // Ternary.
        if (check(TokenKind::kQuestion) && min_bp <= kBpTernary) {
            const int line = current().line;
            consume();
            auto* ternary = arena_.create<Ternary>();
            ternary->line = line;
            ternary->cond = std::move(lhs);
            if (!check(TokenKind::kColon))
                ternary->then_expr = parse_expression();
            expect(TokenKind::kColon, "':'");
            ternary->else_expr = parse_expression(kBpTernary);
            lhs = std::move(ternary);
            continue;
        }
        // instanceof.
        if (check_keyword("instanceof") && min_bp <= kBpInstanceof) {
            const int line = current().line;
            consume();
            auto* inst = arena_.create<InstanceOf>();
            inst->line = line;
            inst->object = std::move(lhs);
            inst->class_name = parse_qualified_name();
            lhs = std::move(inst);
            continue;
        }
        const auto op = infix_for(current());
        if (!op || op->bp < min_bp) break;
        const int line = current().line;
        consume();
        auto* bin = arena_.create<Binary>();
        bin->line = line;
        bin->op = op->op;
        bin->lhs = std::move(lhs);
        bin->rhs = parse_expression(op->right_assoc ? op->bp : op->bp + 1);
        if (!bin->rhs) {
            error_here("expected expression after operator");
            auto* empty = arena_.create<Literal>();
            empty->type = Literal::Type::kNull;
            empty->value = "null";
            empty->line = line;
            bin->rhs = std::move(empty);
        }
        lhs = std::move(bin);
    }
    return lhs;
}

ExprPtr Parser::parse_unary() {
    DepthGuard depth(*this);
    if (!depth) return nullptr;
    const Token& tok = current();
    const int line = tok.line;

    auto make_unary = [&](UnaryOp op) -> ExprPtr {
        consume();
        auto* node = arena_.create<Unary>();
        node->line = line;
        node->op = op;
        node->operand = parse_unary();
        if (!node->operand) return nullptr;
        return node;
    };

    switch (tok.kind) {
        case TokenKind::kNot: return make_unary(UnaryOp::kNot);
        case TokenKind::kMinus: return make_unary(UnaryOp::kMinus);
        case TokenKind::kPlus: return make_unary(UnaryOp::kPlus);
        case TokenKind::kTilde: return make_unary(UnaryOp::kBitNot);
        case TokenKind::kAt: return make_unary(UnaryOp::kSuppress);
        case TokenKind::kCast: {
            consume();
            auto* node = arena_.create<Cast>();
            node->line = line;
            node->type = tok.value;
            node->operand = parse_unary();
            if (!node->operand) return nullptr;
            return node;
        }
        case TokenKind::kInc:
        case TokenKind::kDec: {
            consume();
            auto* node = arena_.create<IncDec>();
            node->line = line;
            node->increment = tok.kind == TokenKind::kInc;
            node->prefix = true;
            node->operand = parse_unary();
            if (!node->operand) return nullptr;
            return node;
        }
        case TokenKind::kAmp: {
            // Reference in expression position (e.g. array items): parse the
            // operand transparently; by-ref bookkeeping is done by callers.
            consume();
            return parse_unary();
        }
        case TokenKind::kKeyword: {
            const std::string_view kw = tok.text;
            if (kw == "print") {
                consume();
                auto* node = arena_.create<PrintExpr>();
                node->line = line;
                node->operand = parse_expression(kBpAssign);
                return node;
            }
            if (kw == "new") return parse_new();
            if (kw == "clone") {
                consume();
                auto* call = arena_.create<FunctionCall>();
                call->line = line;
                call->name = "clone";
                Argument arg;
                arg.value = parse_unary();
                if (!arg.value) return nullptr;
                call->args.push_back(std::move(arg));
                return call;
            }
            if (kw == "include" || kw == "include_once" || kw == "require" ||
                kw == "require_once") {
                consume();
                auto* node = arena_.create<IncludeExpr>();
                node->line = line;
                node->include_kind =
                    kw == "include" ? IncludeKind::kInclude
                    : kw == "include_once" ? IncludeKind::kIncludeOnce
                    : kw == "require" ? IncludeKind::kRequire
                                      : IncludeKind::kRequireOnce;
                node->path = parse_expression(kBpAssign);
                return node;
            }
            if (kw == "yield") {
                // Generators: `yield [key =>] value` — represented as a
                // __yield marker call; the engine folds the value into the
                // function's return flow (foreach over the generator sees it).
                consume();
                auto* call = arena_.create<FunctionCall>();
                call->line = line;
                call->name = "__yield";
                if (!check(TokenKind::kSemicolon) && !check(TokenKind::kRParen) &&
                    !check(TokenKind::kCloseTag)) {
                    Argument arg;
                    arg.value = parse_expression(kBpAssign);
                    if (arg.value && accept(TokenKind::kDoubleArrow)) {
                        Argument val;
                        val.value = parse_expression(kBpAssign);
                        call->args.push_back(std::move(arg));
                        if (val.value) call->args.push_back(std::move(val));
                    } else if (arg.value) {
                        call->args.push_back(std::move(arg));
                    }
                }
                return call;
            }
            if (kw == "exit" || kw == "die") {
                consume();
                auto* node = arena_.create<ExitExpr>();
                node->line = line;
                if (accept(TokenKind::kLParen)) {
                    if (!check(TokenKind::kRParen)) node->operand = parse_expression();
                    expect(TokenKind::kRParen, "')'");
                }
                return node;
            }
            break;
        }
        default:
            break;
    }
    return parse_primary();
}

ExprPtr Parser::parse_primary() {
    const Token& tok = current();
    const int line = tok.line;

    switch (tok.kind) {
        case TokenKind::kVariable:
            return parse_postfix(parse_variable_expr());
        case TokenKind::kDollar: {
            // $$var / ${expr}: dynamic variable name.
            consume();
            if (check(TokenKind::kVariable)) {
                auto* var = arena_.create<Variable>();
                var->line = line;
                var->name = arena_.store("$" + std::string(consume().text));  // "$$x"
                return parse_postfix(var);
            }
            if (accept(TokenKind::kLBrace)) {
                parse_expression();
                expect(TokenKind::kRBrace, "'}'");
            }
            auto* var = arena_.create<Variable>();
            var->line = line;
            var->name = "$<dynamic>";
            return parse_postfix(std::move(var));
        }
        case TokenKind::kIdentifier:
            return parse_identifier_expr();
        case TokenKind::kIntLiteral: {
            consume();
            auto* lit = arena_.create<Literal>();
            lit->line = line;
            lit->type = Literal::Type::kInt;
            lit->value = tok.text;
            return lit;
        }
        case TokenKind::kFloatLiteral: {
            consume();
            auto* lit = arena_.create<Literal>();
            lit->line = line;
            lit->type = Literal::Type::kFloat;
            lit->value = tok.text;
            return lit;
        }
        case TokenKind::kSingleQuotedString:
        case TokenKind::kNowdoc: {
            consume();
            return parse_postfix(make_string_literal(tok.value, line));
        }
        case TokenKind::kDoubleQuotedString:
        case TokenKind::kHeredoc: {
            consume();
            return parse_postfix(parse_string_token(tok));
        }
        case TokenKind::kLParen: {
            consume();
            ExprPtr inner = parse_expression();
            expect(TokenKind::kRParen, "')'");
            if (!inner) return nullptr;
            return parse_postfix(std::move(inner));
        }
        case TokenKind::kLBracket:
            return parse_postfix(parse_array_literal(TokenKind::kRBracket));
        case TokenKind::kKeyword: {
            const std::string_view kw = tok.text;
            if (kw == "array" && peek(1).kind == TokenKind::kLParen) {
                consume();
                consume();
                return parse_postfix(parse_array_literal(TokenKind::kRParen));
            }
            if (kw == "list" && peek(1).kind == TokenKind::kLParen)
                return parse_list_expr();
            if (kw == "isset") {
                consume();
                auto* node = arena_.create<IssetExpr>();
                node->line = line;
                expect(TokenKind::kLParen, "'('");
                if (!check(TokenKind::kRParen)) {
                    do {
                        node->vars.push_back(parse_expression());
                    } while (accept(TokenKind::kComma));
                }
                expect(TokenKind::kRParen, "')'");
                return node;
            }
            if (kw == "empty") {
                consume();
                auto* node = arena_.create<EmptyExpr>();
                node->line = line;
                expect(TokenKind::kLParen, "'('");
                node->operand = parse_expression();
                expect(TokenKind::kRParen, "')'");
                return node;
            }
            if (kw == "function") return parse_closure(false);
            if (kw == "fn") return parse_arrow_fn(false);
            if (kw == "static") {
                consume();
                if (check_keyword("function")) return parse_closure(true);
                if (check_keyword("fn")) return parse_arrow_fn(true);
                // static:: access
                if (check(TokenKind::kDoubleColon)) {
                    auto* fake = arena_.create<Variable>();
                    fake->line = line;
                    fake->name = "static";
                    // Reuse the identifier path by synthesizing a class name.
                    consume();  // ::
                    if (check(TokenKind::kVariable)) {
                        auto* sp = arena_.create<StaticPropertyAccess>();
                        sp->line = line;
                        sp->class_name = "static";
                        const std::string_view v = consume().text;
                        sp->property = v.size() > 1 ? v.substr(1) : v;
                        return parse_postfix(sp);
                    }
                    std::string_view member;
                    if (check(TokenKind::kIdentifier) || check(TokenKind::kKeyword))
                        member = consume().text;
                    if (check(TokenKind::kLParen)) {
                        auto* call = arena_.create<StaticCall>();
                        call->line = line;
                        call->class_name = "static";
                        call->method = member;
                        call->args = parse_call_args();
                        return parse_postfix(std::move(call));
                    }
                    auto* cc = arena_.create<ClassConstAccess>();
                    cc->line = line;
                    cc->class_name = "static";
                    cc->constant = member;
                    return cc;
                }
                error_here("unexpected 'static' in expression");
                return nullptr;
            }
            if (kw == "eval") {
                consume();
                auto* call = arena_.create<FunctionCall>();
                call->line = line;
                call->name = "eval";
                call->args = parse_call_args();
                return call;
            }
            if (kw == "match") {
                // PHP 8 match: parse as opaque; evaluate arms for side effects.
                consume();
                auto* call = arena_.create<FunctionCall>();
                call->line = line;
                call->name = "match";
                expect(TokenKind::kLParen, "'('");
                Argument subj;
                subj.value = parse_expression();
                if (subj.value) call->args.push_back(std::move(subj));
                expect(TokenKind::kRParen, "')'");
                if (accept(TokenKind::kLBrace)) {
                    int depth = 1;
                    while (!at_eof() && depth > 0) {
                        if (check(TokenKind::kLBrace)) ++depth;
                        if (check(TokenKind::kRBrace)) --depth;
                        consume();
                    }
                }
                return call;
            }
            break;
        }
        case TokenKind::kBackslash: {
            // Fully-qualified name: \foo\bar(...)
            return parse_identifier_expr();
        }
        default:
            break;
    }
    error_here("unexpected token '" + std::string(tok.text) + "' in expression");
    return nullptr;
}

ExprPtr Parser::parse_variable_expr() {
    auto* var = arena_.create<Variable>();
    var->line = current().line;
    var->name = consume().text;
    return var;
}

ExprPtr Parser::parse_identifier_expr() {
    const int line = current().line;
    const std::string_view name = parse_qualified_name();

    if (iequals(name, "true") || iequals(name, "false")) {
        auto* lit = arena_.create<Literal>();
        lit->line = line;
        lit->type = Literal::Type::kBool;
        lit->value = iequals(name, "true") ? "true" : "false";
        return lit;
    }
    if (iequals(name, "null")) {
        auto* lit = arena_.create<Literal>();
        lit->line = line;
        lit->type = Literal::Type::kNull;
        lit->value = "null";
        return lit;
    }

    if (check(TokenKind::kLParen)) {
        auto* call = arena_.create<FunctionCall>();
        call->line = line;
        call->name = name;
        call->args = parse_call_args();
        return parse_postfix(call);
    }

    if (check(TokenKind::kDoubleColon)) {
        consume();
        if (check(TokenKind::kVariable)) {
            auto* sp = arena_.create<StaticPropertyAccess>();
            sp->line = line;
            sp->class_name = name;
            const std::string_view v = consume().text;
            sp->property = v.size() > 1 ? v.substr(1) : v;
            return parse_postfix(sp);
        }
        std::string_view member;
        if (check(TokenKind::kIdentifier) || check(TokenKind::kKeyword))
            member = consume().text;
        if (check(TokenKind::kLParen)) {
            auto* call = arena_.create<StaticCall>();
            call->line = line;
            call->class_name = name;
            call->method = std::move(member);
            call->args = parse_call_args();
            return parse_postfix(std::move(call));
        }
        auto* cc = arena_.create<ClassConstAccess>();
        cc->line = line;
        cc->class_name = name;
        cc->constant = std::move(member);
        return cc;
    }

    // Bare constant: untainted literal from the analysis's point of view.
    auto* lit = arena_.create<Literal>();
    lit->line = line;
    lit->type = Literal::Type::kString;
    lit->value = "";
    return parse_postfix(std::move(lit));
}

ExprPtr Parser::parse_postfix(ExprPtr base) {
    if (!base) return nullptr;
    while (!at_eof()) {
        const int line = current().line;
        if (check(TokenKind::kArrow) || check(TokenKind::kNullsafeArrow)) {
            consume();
            std::string_view member;
            ExprPtr member_expr = nullptr;
            if (check(TokenKind::kIdentifier) || check(TokenKind::kKeyword)) {
                member = consume().text;
            } else if (check(TokenKind::kVariable)) {
                member_expr = parse_variable_expr();
            } else if (accept(TokenKind::kLBrace)) {
                member_expr = parse_expression();
                expect(TokenKind::kRBrace, "'}'");
            } else {
                error_here("expected member name after '->'");
                return base;
            }
            if (check(TokenKind::kLParen)) {
                auto* call = arena_.create<MethodCall>();
                call->line = line;
                call->object = std::move(base);
                call->method = std::move(member);
                call->method_expr = std::move(member_expr);
                call->args = parse_call_args();
                base = std::move(call);
            } else {
                auto* prop = arena_.create<PropertyAccess>();
                prop->line = line;
                prop->object = std::move(base);
                prop->property = std::move(member);
                prop->property_expr = std::move(member_expr);
                base = std::move(prop);
            }
            continue;
        }
        if (check(TokenKind::kLBracket)) {
            consume();
            auto* access = arena_.create<ArrayAccess>();
            access->line = line;
            access->base = std::move(base);
            if (!check(TokenKind::kRBracket)) access->index = parse_expression();
            expect(TokenKind::kRBracket, "']'");
            base = std::move(access);
            continue;
        }
        if (check(TokenKind::kLBrace) &&
            (base->kind == NodeKind::kVariable ||
             base->kind == NodeKind::kArrayAccess ||
             base->kind == NodeKind::kPropertyAccess)) {
            // Old string-offset syntax $s{0}; only when an index follows
            // immediately and closes — otherwise it's a block, not an offset.
            // Conservative: require an integer or variable then '}'.
            const Token& n1 = peek(1);
            const Token& n2 = peek(2);
            const bool offset_like =
                (n1.kind == TokenKind::kIntLiteral || n1.kind == TokenKind::kVariable) &&
                n2.kind == TokenKind::kRBrace;
            if (!offset_like) break;
            consume();
            auto* access = arena_.create<ArrayAccess>();
            access->line = line;
            access->base = std::move(base);
            access->index = parse_expression();
            expect(TokenKind::kRBrace, "'}'");
            base = std::move(access);
            continue;
        }
        if (check(TokenKind::kLParen)) {
            // Calling an arbitrary expression: $fn(), ($obj->cb)(), closures.
            auto* call = arena_.create<FunctionCall>();
            call->line = line;
            call->callee = std::move(base);
            call->args = parse_call_args();
            base = std::move(call);
            continue;
        }
        if (check(TokenKind::kInc) || check(TokenKind::kDec)) {
            auto* node = arena_.create<IncDec>();
            node->line = line;
            node->increment = check(TokenKind::kInc);
            node->prefix = false;
            consume();
            node->operand = std::move(base);
            base = std::move(node);
            continue;
        }
        break;
    }
    return base;
}

ArenaVector<Argument> Parser::parse_call_args() {
    ArenaVector<Argument> args;
    if (!expect(TokenKind::kLParen, "'('")) return args;
    if (accept(TokenKind::kRParen)) return args;
    do {
        if (check(TokenKind::kRParen)) break;  // trailing comma
        Argument arg;
        if (accept(TokenKind::kEllipsis)) arg.spread = true;
        if (accept(TokenKind::kAmp)) arg.by_ref = true;
        // Named argument (PHP 8): name: value — skip the label.
        if ((check(TokenKind::kIdentifier) || check(TokenKind::kKeyword)) &&
            peek(1).kind == TokenKind::kColon &&
            peek(2).kind != TokenKind::kColon) {
            consume();
            consume();
        }
        arg.value = parse_expression(kBpAssign);
        if (!arg.value) break;
        args.push_back(std::move(arg));
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRParen, "')'");
    return args;
}

ExprPtr Parser::parse_array_literal(TokenKind closer) {
    // The opener has already been consumed by the caller.
    auto* arr = arena_.create<ArrayLiteral>();
    arr->line = current().line;
    if (closer == TokenKind::kRBracket) consume();  // the caller left '[' intact
    if (accept(closer)) return arr;
    do {
        if (check(closer)) break;  // trailing comma
        ArrayItem item;
        if (accept(TokenKind::kEllipsis)) item.spread = true;
        if (accept(TokenKind::kAmp)) item.by_ref = true;
        ExprPtr first = parse_expression(kBpAssign);
        if (!first) break;
        if (accept(TokenKind::kDoubleArrow)) {
            item.key = std::move(first);
            if (accept(TokenKind::kAmp)) item.by_ref = true;
            item.value = parse_expression(kBpAssign);
            if (!item.value) break;
        } else {
            item.value = std::move(first);
        }
        arr->items.push_back(std::move(item));
    } while (accept(TokenKind::kComma));
    expect(closer, closer == TokenKind::kRParen ? "')'" : "']'");
    return arr;
}

ExprPtr Parser::parse_list_expr() {
    auto* list = arena_.create<ListExpr>();
    list->line = current().line;
    consume();  // list
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kRParen)) {
        do {
            if (check(TokenKind::kComma) || check(TokenKind::kRParen)) {
                list->elements.push_back(nullptr);  // skipped slot
                continue;
            }
            list->elements.push_back(parse_expression(kBpAssign));
        } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "')'");
    return list;
}

ExprPtr Parser::parse_closure(bool is_static) {
    auto* closure = arena_.create<Closure>();
    closure->line = current().line;
    consume();  // function
    accept(TokenKind::kAmp);  // by-ref return
    closure->params = parse_params();
    if (accept_keyword("use")) {
        expect(TokenKind::kLParen, "'('");
        if (!check(TokenKind::kRParen)) {
            do {
                bool by_ref = accept(TokenKind::kAmp);
                if (check(TokenKind::kVariable))
                    closure->uses.emplace_back(consume().text, by_ref);
            } while (accept(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "')'");
    }
    if (accept(TokenKind::kColon)) parse_type_hint();
    skip_tags();
    if (check(TokenKind::kLBrace)) {
        StmtPtr body = parse_statement();
        if (body && body->kind == NodeKind::kBlock)
            closure->body = std::move(static_cast<Block*>(body)->statements);
    }
    (void)is_static;
    return closure;
}

ExprPtr Parser::parse_arrow_fn(bool is_static) {
    auto* closure = arena_.create<Closure>();
    closure->line = current().line;
    closure->is_arrow = true;
    consume();  // fn
    accept(TokenKind::kAmp);
    closure->params = parse_params();
    if (accept(TokenKind::kColon)) parse_type_hint();
    if (accept(TokenKind::kDoubleArrow)) {
        auto* ret = arena_.create<ReturnStmt>();
        ret->line = current().line;
        ret->value = parse_expression(kBpAssign);
        closure->body.push_back(std::move(ret));
    }
    (void)is_static;
    return closure;
}

ExprPtr Parser::parse_new() {
    auto* node = arena_.create<New>();
    node->line = current().line;
    consume();  // new
    if (check(TokenKind::kIdentifier) || check(TokenKind::kBackslash)) {
        node->class_name = parse_qualified_name();
    } else if (check_keyword("static") || check_keyword("class")) {
        if (check_keyword("class")) {
            // Anonymous class: new class { ... } — parse and discard body.
            consume();
            if (check(TokenKind::kLParen)) node->args = parse_call_args();
            if (check_keyword("extends")) {
                consume();
                node->class_name = parse_qualified_name();
            }
            if (accept_keyword("implements")) {
                do {
                    parse_qualified_name();
                } while (accept(TokenKind::kComma));
            }
            if (accept(TokenKind::kLBrace)) {
                int depth = 1;
                while (!at_eof() && depth > 0) {
                    if (check(TokenKind::kLBrace)) ++depth;
                    if (check(TokenKind::kRBrace)) --depth;
                    consume();
                }
            }
            return parse_postfix(std::move(node));
        }
        node->class_name = consume().text;  // "static"
    } else if (check(TokenKind::kVariable)) {
        node->class_expr = parse_variable_expr();
    } else {
        error_here("expected class name after 'new'");
    }
    if (check(TokenKind::kLParen)) node->args = parse_call_args();
    return parse_postfix(std::move(node));
}

ExprPtr Parser::parse_string_token(const Token& tok) {
    if (!tok.has_interpolation()) return make_string_literal(tok.value, tok.line);
    auto* interp = arena_.create<InterpString>();
    interp->line = tok.line;
    for (const StringPart& part : tok.parts) {
        if (part.kind == StringPart::Kind::kLiteral) {
            interp->parts.push_back(make_string_literal(part.text, tok.line));
        } else {
            ExprPtr e = parse_expression_text(part.text, file_.name(), tok.line,
                                              sink_, arena_);
            if (e) interp->parts.push_back(std::move(e));
        }
    }
    return interp;
}

ArenaVector<Param> Parser::parse_params() {
    ArenaVector<Param> params;
    if (!expect(TokenKind::kLParen, "'('")) return params;
    if (accept(TokenKind::kRParen)) return params;
    do {
        if (check(TokenKind::kRParen)) break;  // trailing comma
        Param p;
        // Modifiers (constructor promotion) and type hints.
        while (check(TokenKind::kKeyword) &&
               (current().text == "public" || current().text == "protected" ||
                current().text == "private" || current().text == "readonly"))
            consume();
        if (!check(TokenKind::kVariable) && !check(TokenKind::kAmp) &&
            !check(TokenKind::kEllipsis))
            p.type_hint = parse_type_hint();
        if (accept(TokenKind::kAmp)) p.by_ref = true;
        if (accept(TokenKind::kEllipsis)) p.variadic = true;
        if (check(TokenKind::kVariable)) {
            p.name = consume().text;
        } else {
            error_here("expected parameter name");
            break;
        }
        if (accept(TokenKind::kAssign)) p.default_value = parse_expression(kBpAssign);
        params.push_back(std::move(p));
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRParen, "')'");
    return params;
}

std::string_view Parser::parse_type_hint() {
    // Single-name hints (the overwhelmingly common case) are returned as the
    // token's own view; unions are materialized into the arena.
    std::string_view single;
    std::string multi;
    bool is_multi = false;
    bool any = false;
    accept(TokenKind::kQuestion);  // nullable
    while (true) {
        if (check(TokenKind::kIdentifier) || check(TokenKind::kBackslash) ||
            check_keyword("array") || check_keyword("callable") ||
            check_keyword("static")) {
            const std::string_view part = parse_qualified_name();
            if (!any) {
                single = part;
                any = true;
            } else {
                multi += part;
            }
        } else {
            break;
        }
        if (accept(TokenKind::kPipe) || accept(TokenKind::kAmp)) {
            if (!is_multi) {
                multi.assign(single);
                is_multi = true;
            }
            multi += "|";
            continue;
        }
        break;
    }
    if (!is_multi) return single;
    return arena_.store(multi);
}

std::string_view Parser::parse_qualified_name() {
    // Unqualified names — nearly every name in plugin code — are views into
    // the source; namespaced paths are joined into the arena.
    const bool rooted = accept(TokenKind::kBackslash);
    std::string_view single;
    std::string multi;
    bool is_multi = rooted;
    if (rooted) multi = "\\";
    while (check(TokenKind::kIdentifier) || check_keyword("array") ||
           check_keyword("callable") || check_keyword("static") ||
           check_keyword("class")) {
        const std::string_view part = consume().text;
        if (is_multi)
            multi += part;
        else
            single = part;
        if (check(TokenKind::kBackslash) && peek(1).kind == TokenKind::kIdentifier) {
            consume();
            if (!is_multi) {
                multi.assign(single);
                is_multi = true;
            }
            multi += "\\";
            continue;
        }
        break;
    }
    if (!is_multi) {
        if (single.empty()) {
            error_here("expected identifier");
            return "<error>";
        }
        return single;
    }
    if (multi == "\\") {
        error_here("expected identifier");
        return "\\";
    }
    return arena_.store(multi);
}

ExprPtr Parser::make_string_literal(std::string_view value, int line) {
    auto* lit = arena_.create<Literal>();
    lit->line = line;
    lit->type = Literal::Type::kString;
    lit->value = value;
    return lit;
}

}  // namespace phpsafe::php
