// Generic AST traversal helpers: enumerate the direct children of a node.
// Used by the project indexer, the baselines and tests; the taint engine
// walks the tree itself because evaluation order matters there.
#pragma once

#include <functional>

#include "php/ast.h"

namespace phpsafe::php {

using ExprVisitor = std::function<void(const Expr&)>;
using StmtVisitor = std::function<void(const Stmt&)>;

/// Invokes `ec` on every direct child expression of `e` (not recursive).
void for_each_child_expr(const Expr& e, const ExprVisitor& ec);

/// Invokes `ec` / `sc` on direct expression / statement children of `s`.
void for_each_child(const Stmt& s, const ExprVisitor& ec, const StmtVisitor& sc);

/// Depth-first pre-order walk of an expression tree.
void walk_expr(const Expr& e, const ExprVisitor& ec);

/// Depth-first pre-order walk of a statement tree (visits every statement
/// and every expression, including those nested in functions/classes).
void walk_stmt(const Stmt& s, const ExprVisitor& ec, const StmtVisitor& sc);

inline void for_each_child_expr(const Expr& e, const ExprVisitor& ec) {
    auto visit = [&](const ExprPtr& p) {
        if (p) ec(*p);
    };
    auto visit_args = [&](const ArenaVector<Argument>& args) {
        for (const Argument& a : args) visit(a.value);
    };
    switch (e.kind) {
        case NodeKind::kInterpString:
            for (const ExprPtr& p : static_cast<const InterpString&>(e).parts) visit(p);
            break;
        case NodeKind::kArrayAccess: {
            const auto& n = static_cast<const ArrayAccess&>(e);
            visit(n.base);
            visit(n.index);
            break;
        }
        case NodeKind::kPropertyAccess: {
            const auto& n = static_cast<const PropertyAccess&>(e);
            visit(n.object);
            visit(n.property_expr);
            break;
        }
        case NodeKind::kFunctionCall: {
            const auto& n = static_cast<const FunctionCall&>(e);
            visit(n.callee);
            visit_args(n.args);
            break;
        }
        case NodeKind::kMethodCall: {
            const auto& n = static_cast<const MethodCall&>(e);
            visit(n.object);
            visit(n.method_expr);
            visit_args(n.args);
            break;
        }
        case NodeKind::kStaticCall:
            visit_args(static_cast<const StaticCall&>(e).args);
            break;
        case NodeKind::kNew: {
            const auto& n = static_cast<const New&>(e);
            visit(n.class_expr);
            visit_args(n.args);
            break;
        }
        case NodeKind::kAssign: {
            const auto& n = static_cast<const Assign&>(e);
            visit(n.target);
            visit(n.value);
            break;
        }
        case NodeKind::kBinary: {
            const auto& n = static_cast<const Binary&>(e);
            visit(n.lhs);
            visit(n.rhs);
            break;
        }
        case NodeKind::kUnary:
            visit(static_cast<const Unary&>(e).operand);
            break;
        case NodeKind::kCast:
            visit(static_cast<const Cast&>(e).operand);
            break;
        case NodeKind::kTernary: {
            const auto& n = static_cast<const Ternary&>(e);
            visit(n.cond);
            visit(n.then_expr);
            visit(n.else_expr);
            break;
        }
        case NodeKind::kArrayLiteral:
            for (const ArrayItem& item : static_cast<const ArrayLiteral&>(e).items) {
                visit(item.key);
                visit(item.value);
            }
            break;
        case NodeKind::kIssetExpr:
            for (const ExprPtr& v : static_cast<const IssetExpr&>(e).vars) visit(v);
            break;
        case NodeKind::kEmptyExpr:
            visit(static_cast<const EmptyExpr&>(e).operand);
            break;
        case NodeKind::kIncDec:
            visit(static_cast<const IncDec&>(e).operand);
            break;
        case NodeKind::kIncludeExpr:
            visit(static_cast<const IncludeExpr&>(e).path);
            break;
        case NodeKind::kListExpr:
            for (const ExprPtr& el : static_cast<const ListExpr&>(e).elements) visit(el);
            break;
        case NodeKind::kInstanceOf:
            visit(static_cast<const InstanceOf&>(e).object);
            break;
        case NodeKind::kPrintExpr:
            visit(static_cast<const PrintExpr&>(e).operand);
            break;
        case NodeKind::kExitExpr:
            visit(static_cast<const ExitExpr&>(e).operand);
            break;
        default:
            break;  // leaves: literal, variable, static-prop, class-const, closure
    }
}

inline void for_each_child(const Stmt& s, const ExprVisitor& ec, const StmtVisitor& sc) {
    auto visit_e = [&](const ExprPtr& p) {
        if (p) ec(*p);
    };
    auto visit_s = [&](const StmtPtr& p) {
        if (p) sc(*p);
    };
    auto visit_list = [&](const ArenaVector<StmtPtr>& stmts) {
        for (const StmtPtr& p : stmts) visit_s(p);
    };
    switch (s.kind) {
        case NodeKind::kExprStmt:
            visit_e(static_cast<const ExprStmt&>(s).expr);
            break;
        case NodeKind::kEchoStmt:
            for (const ExprPtr& a : static_cast<const EchoStmt&>(s).args) visit_e(a);
            break;
        case NodeKind::kBlock:
            visit_list(static_cast<const Block&>(s).statements);
            break;
        case NodeKind::kIfStmt: {
            const auto& n = static_cast<const IfStmt&>(s);
            visit_e(n.cond);
            visit_s(n.then_branch);
            visit_s(n.else_branch);
            break;
        }
        case NodeKind::kWhileStmt: {
            const auto& n = static_cast<const WhileStmt&>(s);
            visit_e(n.cond);
            visit_s(n.body);
            break;
        }
        case NodeKind::kDoWhileStmt: {
            const auto& n = static_cast<const DoWhileStmt&>(s);
            visit_s(n.body);
            visit_e(n.cond);
            break;
        }
        case NodeKind::kForStmt: {
            const auto& n = static_cast<const ForStmt&>(s);
            for (const ExprPtr& e : n.init) visit_e(e);
            for (const ExprPtr& e : n.cond) visit_e(e);
            for (const ExprPtr& e : n.update) visit_e(e);
            visit_s(n.body);
            break;
        }
        case NodeKind::kForeachStmt: {
            const auto& n = static_cast<const ForeachStmt&>(s);
            visit_e(n.iterable);
            visit_e(n.key_var);
            visit_e(n.value_var);
            visit_s(n.body);
            break;
        }
        case NodeKind::kSwitchStmt: {
            const auto& n = static_cast<const SwitchStmt&>(s);
            visit_e(n.subject);
            for (const SwitchCase& c : n.cases) {
                visit_e(c.match);
                visit_list(c.body);
            }
            break;
        }
        case NodeKind::kReturnStmt:
            visit_e(static_cast<const ReturnStmt&>(s).value);
            break;
        case NodeKind::kStaticVarStmt:
            for (const auto& [name, init] : static_cast<const StaticVarStmt&>(s).vars)
                visit_e(init);
            break;
        case NodeKind::kUnsetStmt:
            for (const ExprPtr& v : static_cast<const UnsetStmt&>(s).vars) visit_e(v);
            break;
        case NodeKind::kFunctionDecl: {
            const auto& n = static_cast<const FunctionDecl&>(s);
            for (const Param& p : n.params) visit_e(p.default_value);
            visit_list(n.body);
            break;
        }
        case NodeKind::kClassDecl: {
            const auto& n = static_cast<const ClassDecl&>(s);
            for (const PropertyDecl& p : n.properties) visit_e(p.default_value);
            for (const ClassConstDecl& c : n.constants) visit_e(c.value);
            for (const auto& m : n.methods)
                if (m) sc(*m);
            break;
        }
        case NodeKind::kTryStmt: {
            const auto& n = static_cast<const TryStmt&>(s);
            visit_list(n.body);
            for (const CatchClause& c : n.catches) visit_list(c.body);
            visit_list(n.finally_body);
            break;
        }
        case NodeKind::kThrowStmt:
            visit_e(static_cast<const ThrowStmt&>(s).value);
            break;
        case NodeKind::kNamespaceStmt:
            visit_list(static_cast<const NamespaceStmt&>(s).body);
            break;
        case NodeKind::kConstStmt:
            for (const auto& [name, value] : static_cast<const ConstStmt&>(s).constants)
                visit_e(value);
            break;
        default:
            break;  // break/continue/global/html/use: no children
    }
}

inline void walk_expr(const Expr& e, const ExprVisitor& ec) {
    ec(e);
    for_each_child_expr(e, [&](const Expr& child) { walk_expr(child, ec); });
    // Closures carry statements; descend into them too.
    if (e.kind == NodeKind::kClosure) {
        const auto& c = static_cast<const Closure&>(e);
        for (const StmtPtr& s : c.body)
            if (s) walk_stmt(*s, ec, [](const Stmt&) {});
    }
}

inline void walk_stmt(const Stmt& s, const ExprVisitor& ec, const StmtVisitor& sc) {
    sc(s);
    for_each_child(
        s, [&](const Expr& e) { walk_expr(e, ec); },
        [&](const Stmt& child) { walk_stmt(child, ec, sc); });
}

}  // namespace phpsafe::php
