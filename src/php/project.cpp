#include "php/project.h"

#include <algorithm>

#include "obs/counters.h"
#include "php/parser.h"
#include "php/walk.h"
#include "util/strings.h"
#include "util/timing.h"

namespace phpsafe::php {

uint64_t content_hash(std::string_view text) noexcept { return fnv1a64(text); }

std::string FunctionRef::qualified_name() const {
    if (!decl) return "<null>";
    if (owner) {
        std::string out(owner->name);
        out += "::";
        out += decl->name;
        return out;
    }
    return std::string(decl->name);
}

void Project::add_file(std::string file_name, std::string text) {
    PendingFile pending;
    pending.slot = files_.size();
    pending.name = std::move(file_name);
    pending.text = std::move(text);
    files_.push_back(nullptr);  // placeholder; parse_all() fills it
    pending_.push_back(std::move(pending));
}

void Project::add_parsed(std::shared_ptr<const ParsedFile> file) {
    ++build_stats_.files_reused;
    files_.push_back(std::move(file));
}

void Project::parse_all(DiagnosticSink& sink) {
    const double build_start = thread_cpu_seconds();
    double lex_seconds = 0;
    for (PendingFile& pending : pending_) {
        auto pf = std::make_shared<ParsedFile>();
        pf->content_hash = content_hash(pending.text);
        pf->text_bytes = pending.text.size();
        pf->source =
            std::make_unique<SourceFile>(pending.name, std::move(pending.text));
        const obs::CounterDelta delta;
        Parser parser(*pf->source, pf->arena, sink);
        pf->unit = parser.parse();
        pf->ast_nodes = delta.take().ast_nodes;
        lex_seconds += parser.lex_cpu_seconds();
        ++obs::tls().files_parsed;
        obs::tls().alloc_arena_bytes += pf->arena.bytes_allocated();
        obs::tls().alloc_arena_blocks += pf->arena.block_count();
        obs::tls().alloc_string_bytes += pf->arena.string_bytes();
        for (const std::string& failed : sink.failed_files())
            if (failed == pending.name) pf->parse_failed = true;
        files_[pending.slot] = std::move(pf);
    }
    pending_.clear();

    for (const std::shared_ptr<const ParsedFile>& pf : files_) {
        index_statements(pf->unit.statements, pf->unit.file_name);
        for (const StmtPtr& s : pf->unit.statements)
            if (s) record_calls_stmt(*s);
    }

    // Stage attribution: lex time is measured inside the parser; everything
    // else in this call (parsing proper plus declaration indexing) counts as
    // the parse stage of model construction.
    build_stats_.lex_cpu_seconds += lex_seconds;
    build_stats_.parse_cpu_seconds +=
        thread_cpu_seconds() - build_start - lex_seconds;
}

int Project::total_lines() const noexcept {
    int total = 0;
    for (const auto& pf : files_) total += pf->source->line_count();
    return total;
}

const ParsedFile* Project::file_named(std::string_view name) const {
    for (const auto& pf : files_)
        if (pf && pf->source->name() == name) return pf.get();
    return nullptr;
}

void Project::index_statements(const ArenaVector<StmtPtr>& stmts,
                               const std::string& file) {
    // Pass 1: register classes and their methods. Keys are views of the
    // declaration names in the file's arena; `file` is the stable
    // unit.file_name of the declaring ParsedFile — indexing a declaration
    // costs one tree-node allocation and nothing else.
    auto visit = [&](const Stmt& s) {
        if (s.kind != NodeKind::kClassDecl) return;
        const auto& cls = static_cast<const ClassDecl&>(s);
        classes_.emplace(cls.name, &cls);
        class_files_.emplace(cls.name, &file);
        for (const FunctionDecl* method : cls.methods) {
            FunctionRef ref{method, &cls, file};
            methods_.emplace(MethodKey{cls.name, method->name}, ref);
            function_list_.push_back(ref);
        }
    };
    for (const StmtPtr& stmt : stmts)
        if (stmt) walk_stmt(*stmt, [](const Expr&) {}, visit);

    // Pass 2: free functions, wherever declared (top level, inside
    // conditional guards, nested in other functions). walk_stmt also visits
    // method FunctionDecls; the parser marks those with is_method.
    auto visit_fn = [&](const Stmt& s) {
        if (s.kind != NodeKind::kFunctionDecl) return;
        const auto& fn = static_cast<const FunctionDecl&>(s);
        if (fn.is_method) return;
        FunctionRef ref{&fn, nullptr, file};
        functions_.emplace(fn.name, ref);
        function_list_.push_back(ref);
    };
    for (const StmtPtr& stmt : stmts)
        if (stmt) walk_stmt(*stmt, [](const Expr&) {}, visit_fn);
}

void Project::record_calls_stmt(const Stmt& s) {
    walk_stmt(
        s, [this](const Expr& e) { record_calls_expr(e); }, [](const Stmt&) {});
}

void Project::note_called_function(std::string_view name) {
    call_key_.clear();
    append_folded(call_key_, name);
    if (!called_functions_.count(call_key_)) called_functions_.insert(call_key_);
}

void Project::note_called_method(std::string_view class_name,
                                 std::string_view method) {
    call_key_.clear();
    append_folded(call_key_, class_name);
    call_key_ += "::";
    append_folded(call_key_, method);
    if (!called_methods_.count(call_key_)) called_methods_.insert(call_key_);
}

void Project::record_calls_expr(const Expr& e) {
    switch (e.kind) {
        case NodeKind::kFunctionCall: {
            const auto& call = static_cast<const FunctionCall&>(e);
            if (!call.name.empty()) note_called_function(call.name);
            // Callback registration APIs make the named function "called":
            // add_action('init', 'my_handler') etc. keep handlers reachable.
            static const char* kCallbackApis[] = {
                "add_action", "add_filter", "register_activation_hook",
                "register_deactivation_hook", "add_shortcode", "call_user_func",
                "call_user_func_array", "array_map", "array_filter", "usort",
            };
            for (const char* api : kCallbackApis) {
                if (!iequals(call.name, api)) continue;
                for (const Argument& arg : call.args) {
                    if (!arg.value) continue;
                    if (arg.value->kind == NodeKind::kLiteral) {
                        const auto& lit = static_cast<const Literal&>(*arg.value);
                        if (lit.type == Literal::Type::kString && !lit.value.empty())
                            note_called_function(lit.value);
                    }
                    // array($obj, 'method') / array('Class', 'method')
                    if (arg.value->kind == NodeKind::kArrayLiteral) {
                        const auto& arr = static_cast<const ArrayLiteral&>(*arg.value);
                        if (arr.items.size() == 2 && arr.items[1].value &&
                            arr.items[1].value->kind == NodeKind::kLiteral) {
                            const auto& lit =
                                static_cast<const Literal&>(*arr.items[1].value);
                            if (lit.type == Literal::Type::kString)
                                note_called_method("", lit.value);
                        }
                    }
                }
            }
            break;
        }
        case NodeKind::kMethodCall: {
            const auto& call = static_cast<const MethodCall&>(e);
            if (!call.method.empty())
                note_called_method("", call.method);
            break;
        }
        case NodeKind::kStaticCall: {
            const auto& call = static_cast<const StaticCall&>(e);
            note_called_method(call.class_name, call.method);
            note_called_method("", call.method);
            break;
        }
        case NodeKind::kNew: {
            const auto& n = static_cast<const New&>(e);
            if (!n.class_name.empty())
                note_called_method(n.class_name, "__construct");
            break;
        }
        default:
            break;
    }
}

const FunctionRef* Project::find_function(std::string_view name) const {
    const auto it = functions_.find(name);  // transparent folded compare
    return it == functions_.end() ? nullptr : &it->second;
}

const ClassDecl* Project::find_class(std::string_view name) const {
    const auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : it->second;
}

const std::string& Project::file_of_class(std::string_view class_name) const {
    static const std::string kEmpty;
    const auto it = class_files_.find(class_name);
    return it == class_files_.end() ? kEmpty : *it->second;
}

const FunctionRef* Project::find_method(std::string_view class_name,
                                        std::string_view method_name) const {
    std::string_view cls = class_name;
    // Walk the inheritance chain (single inheritance, as in PHP). The
    // composite key probes case-preserving; MethodKeyLess folds per part.
    for (int depth = 0; depth < 16; ++depth) {
        const auto it = methods_.find(MethodKey{cls, method_name});
        if (it != methods_.end()) return &it->second;
        const auto cit = classes_.find(cls);
        if (cit == classes_.end() || cit->second->parent.empty()) return nullptr;
        cls = cit->second->parent;
    }
    return nullptr;
}

const FunctionRef* Project::find_method_any(std::string_view method_name) const {
    const FunctionRef* found = nullptr;
    for (const auto& [key, ref] : methods_) {
        if (folded_compare(key.method, method_name) != 0) continue;
        if (found) return nullptr;  // ambiguous
        found = &ref;
    }
    return found;
}

std::vector<FunctionRef> Project::uncalled_functions() const {
    std::vector<FunctionRef> out;
    for (const FunctionRef& ref : function_list_) {
        if (!ref.decl) continue;
        if (ref.owner) {
            const std::string method = ascii_lower(ref.decl->name);
            if (method == "__construct") continue;  // run via `new`
            const bool called =
                called_methods_.count(ascii_lower(ref.owner->name) + "::" + method) ||
                called_methods_.count("::" + method);
            if (!called) out.push_back(ref);
        } else {
            if (!called_functions_.count(ascii_lower(ref.decl->name)))
                out.push_back(ref);
        }
    }
    return out;
}

const ParsedFile* Project::resolve_include(std::string_view path) const {
    if (path.empty()) return nullptr;
    // Normalize leading "./".
    while (starts_with(path, "./")) path.remove_prefix(2);

    for (const auto& pf : files_)
        if (pf->source->name() == path) return pf.get();
    for (const auto& pf : files_)
        if (ends_with(pf->source->name(), path)) return pf.get();
    // Basename match as last resort.
    const size_t slash = path.rfind('/');
    const std::string_view base =
        slash == std::string_view::npos ? path : path.substr(slash + 1);
    for (const auto& pf : files_) {
        const std::string& name = pf->source->name();
        const size_t s = name.rfind('/');
        const std::string_view file_base =
            s == std::string::npos ? std::string_view(name)
                                   : std::string_view(name).substr(s + 1);
        if (file_base == base) return pf.get();
    }
    return nullptr;
}

}  // namespace phpsafe::php
