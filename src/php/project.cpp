#include "php/project.h"

#include <algorithm>

#include "obs/counters.h"
#include "php/parser.h"
#include "php/walk.h"
#include "util/strings.h"
#include "util/timing.h"

namespace phpsafe::php {

uint64_t content_hash(std::string_view text) noexcept { return fnv1a64(text); }

std::string FunctionRef::qualified_name() const {
    if (!decl) return "<null>";
    if (owner) {
        std::string out(owner->name);
        out += "::";
        out += decl->name;
        return out;
    }
    return std::string(decl->name);
}

void Project::add_file(std::string file_name, std::string text) {
    PendingFile pending;
    pending.slot = files_.size();
    pending.name = std::move(file_name);
    pending.text = std::move(text);
    files_.push_back(nullptr);  // placeholder; parse_all() fills it
    pending_.push_back(std::move(pending));
}

void Project::add_parsed(std::shared_ptr<const ParsedFile> file) {
    ++build_stats_.files_reused;
    files_.push_back(std::move(file));
}

std::shared_ptr<const ParsedFile> Project::parse_file(std::string name,
                                                      std::string text,
                                                      DiagnosticSink& sink,
                                                      double& lex_seconds) {
    auto pf = std::make_shared<ParsedFile>();
    pf->content_hash = content_hash(text);
    pf->text_bytes = text.size();
    pf->source = std::make_unique<SourceFile>(name, std::move(text));
    const obs::CounterDelta delta;
    Parser parser(*pf->source, pf->arena, sink);
    pf->unit = parser.parse();
    pf->ast_nodes = delta.take().ast_nodes;
    lex_seconds += parser.lex_cpu_seconds();
    ++obs::tls().files_parsed;
    obs::tls().alloc_arena_bytes += pf->arena.bytes_allocated();
    obs::tls().alloc_arena_blocks += pf->arena.block_count();
    obs::tls().alloc_string_bytes += pf->arena.string_bytes();
    for (const std::string& failed : sink.failed_files())
        if (failed == name) pf->parse_failed = true;
    return pf;
}

void Project::parse_all(DiagnosticSink& sink) {
    const double build_start = thread_cpu_seconds();
    double lex_seconds = 0;
    for (PendingFile& pending : pending_) {
        files_[pending.slot] = parse_file(std::move(pending.name),
                                          std::move(pending.text), sink,
                                          lex_seconds);
    }
    pending_.clear();

    file_calls_.assign(files_.size(), FileCalls{});
    for (size_t i = 0; i < files_.size(); ++i) {
        const std::shared_ptr<const ParsedFile>& pf = files_[i];
        index_statements(pf->unit.statements, pf->unit.file_name);
        current_calls_ = &file_calls_[i];
        for (const StmtPtr& s : pf->unit.statements)
            if (s) record_calls_stmt(*s);
    }
    current_calls_ = nullptr;
    merge_calls();

    // Stage attribution: lex time is measured inside the parser; everything
    // else in this call (parsing proper plus declaration indexing) counts as
    // the parse stage of model construction.
    build_stats_.lex_cpu_seconds += lex_seconds;
    build_stats_.parse_cpu_seconds +=
        thread_cpu_seconds() - build_start - lex_seconds;
}

std::optional<Project> Project::fork_with_replacement(
    std::string_view file_name, std::string text, DiagnosticSink& sink) const {
    size_t slot = files_.size();
    for (size_t i = 0; i < files_.size(); ++i)
        if (files_[i] && files_[i]->unit.file_name == file_name) {
            slot = i;
            break;
        }
    // Refuse when the file is unknown or this project was never fully built
    // (unparsed pending files, or no per-file call provenance to subtract).
    if (slot == files_.size() || !pending_.empty() ||
        file_calls_.size() != files_.size())
        return std::nullopt;

    Project fork(name_);
    const double build_start = thread_cpu_seconds();
    double lex_seconds = 0;
    fork.files_ = files_;
    const std::shared_ptr<const ParsedFile> replacement =
        parse_file(std::string(file_name), std::move(text), sink, lex_seconds);
    fork.files_[slot] = replacement;
    fork.build_stats_.files_reused = static_cast<int>(files_.size()) - 1;

    // Index the replacement alone, then capture its entries for splicing.
    fork.index_statements(replacement->unit.statements,
                          replacement->unit.file_name);
    const std::vector<FunctionRef> repl_functions =
        std::move(fork.function_list_);
    const std::vector<std::pair<const ClassDecl*, const std::string*>>
        repl_classes = std::move(fork.class_list_);
    fork.functions_.clear();
    fork.methods_.clear();
    fork.classes_.clear();
    fork.class_files_.clear();
    fork.function_list_.clear();
    fork.class_list_.clear();

    // Splice declaration order: parse_all() indexes file by file, so each
    // list is a sequence of per-file blocks in registration order. Keep the
    // unchanged files' blocks (their views stay valid — the fork shares
    // those ParsedFiles), drop the replaced file's, and put the
    // replacement's block where the old one was.
    std::map<std::string_view, size_t> file_order;
    for (size_t i = 0; i < files_.size(); ++i)
        file_order.emplace(files_[i]->unit.file_name, i);
    const auto order_of = [&](std::string_view file) {
        const auto it = file_order.find(file);
        return it == file_order.end() ? files_.size() : it->second;
    };
    bool fn_spliced = false;
    for (const FunctionRef& ref : function_list_) {
        const size_t ord = order_of(ref.file);
        if (ord == slot) continue;
        if (!fn_spliced && ord > slot) {
            fork.function_list_.insert(fork.function_list_.end(),
                                       repl_functions.begin(),
                                       repl_functions.end());
            fn_spliced = true;
        }
        fork.function_list_.push_back(ref);
    }
    if (!fn_spliced)
        fork.function_list_.insert(fork.function_list_.end(),
                                   repl_functions.begin(),
                                   repl_functions.end());
    bool cls_spliced = false;
    for (const auto& entry : class_list_) {
        const size_t ord = order_of(*entry.second);
        if (ord == slot) continue;
        if (!cls_spliced && ord > slot) {
            fork.class_list_.insert(fork.class_list_.end(),
                                    repl_classes.begin(), repl_classes.end());
            cls_spliced = true;
        }
        fork.class_list_.push_back(entry);
    }
    if (!cls_spliced)
        fork.class_list_.insert(fork.class_list_.end(), repl_classes.begin(),
                                repl_classes.end());

    // Rebuild the lookup maps from the spliced lists. Iterating in
    // declaration order reproduces parse_all()'s emplace order exactly, so
    // duplicate declarations resolve to the same winners a full rebuild of
    // the patched file set would pick.
    for (const FunctionRef& ref : fork.function_list_) {
        if (ref.owner)
            fork.methods_.emplace(MethodKey{ref.owner->name, ref.decl->name},
                                  ref);
        else
            fork.functions_.emplace(ref.decl->name, ref);
    }
    for (const auto& [decl, file] : fork.class_list_) {
        fork.classes_.emplace(decl->name, decl);
        fork.class_files_.emplace(decl->name, file);
    }

    // Called-name sets: keep the unchanged files' per-file contributions,
    // re-record only the replacement's, and re-merge.
    fork.file_calls_ = file_calls_;
    fork.file_calls_[slot] = FileCalls{};
    fork.current_calls_ = &fork.file_calls_[slot];
    for (const StmtPtr& s : replacement->unit.statements)
        if (s) fork.record_calls_stmt(*s);
    fork.current_calls_ = nullptr;
    fork.merge_calls();

    fork.build_stats_.lex_cpu_seconds = lex_seconds;
    fork.build_stats_.parse_cpu_seconds =
        thread_cpu_seconds() - build_start - lex_seconds;
    return fork;
}

std::string Project::declaration_fingerprint(std::string_view file) const {
    std::string fp;
    for (const auto& [decl, from] : class_list_) {
        if (*from != file) continue;
        fp += "class ";
        fp += decl->name;
        fp += ';';
    }
    for (const FunctionRef& ref : function_list_) {
        if (ref.file != file) continue;
        fp += ref.qualified_name();
        fp += ';';
    }
    return fp;
}

int Project::total_lines() const noexcept {
    int total = 0;
    for (const auto& pf : files_) total += pf->source->line_count();
    return total;
}

const ParsedFile* Project::file_named(std::string_view name) const {
    for (const auto& pf : files_)
        if (pf && pf->source->name() == name) return pf.get();
    return nullptr;
}

void Project::index_statements(const ArenaVector<StmtPtr>& stmts,
                               const std::string& file) {
    // Pass 1: register classes and their methods. Keys are views of the
    // declaration names in the file's arena; `file` is the stable
    // unit.file_name of the declaring ParsedFile — indexing a declaration
    // costs one tree-node allocation and nothing else.
    auto visit = [&](const Stmt& s) {
        if (s.kind != NodeKind::kClassDecl) return;
        const auto& cls = static_cast<const ClassDecl&>(s);
        classes_.emplace(cls.name, &cls);
        class_files_.emplace(cls.name, &file);
        class_list_.emplace_back(&cls, &file);
        for (const FunctionDecl* method : cls.methods) {
            FunctionRef ref{method, &cls, file};
            methods_.emplace(MethodKey{cls.name, method->name}, ref);
            function_list_.push_back(ref);
        }
    };
    for (const StmtPtr& stmt : stmts)
        if (stmt) walk_stmt(*stmt, [](const Expr&) {}, visit);

    // Pass 2: free functions, wherever declared (top level, inside
    // conditional guards, nested in other functions). walk_stmt also visits
    // method FunctionDecls; the parser marks those with is_method.
    auto visit_fn = [&](const Stmt& s) {
        if (s.kind != NodeKind::kFunctionDecl) return;
        const auto& fn = static_cast<const FunctionDecl&>(s);
        if (fn.is_method) return;
        FunctionRef ref{&fn, nullptr, file};
        functions_.emplace(fn.name, ref);
        function_list_.push_back(ref);
    };
    for (const StmtPtr& stmt : stmts)
        if (stmt) walk_stmt(*stmt, [](const Expr&) {}, visit_fn);
}

void Project::record_calls_stmt(const Stmt& s) {
    walk_stmt(
        s, [this](const Expr& e) { record_calls_expr(e); }, [](const Stmt&) {});
}

void Project::note_called_function(std::string_view name) {
    call_key_.clear();
    append_folded(call_key_, name);
    std::set<std::string>& into =
        current_calls_ ? current_calls_->functions : called_functions_;
    if (!into.count(call_key_)) into.insert(call_key_);
}

void Project::note_called_method(std::string_view class_name,
                                 std::string_view method) {
    call_key_.clear();
    append_folded(call_key_, class_name);
    call_key_ += "::";
    append_folded(call_key_, method);
    std::set<std::string>& into =
        current_calls_ ? current_calls_->methods : called_methods_;
    if (!into.count(call_key_)) into.insert(call_key_);
}

void Project::merge_calls() {
    called_functions_.clear();
    called_methods_.clear();
    for (const FileCalls& calls : file_calls_) {
        called_functions_.insert(calls.functions.begin(), calls.functions.end());
        called_methods_.insert(calls.methods.begin(), calls.methods.end());
    }
}

void Project::record_calls_expr(const Expr& e) {
    switch (e.kind) {
        case NodeKind::kFunctionCall: {
            const auto& call = static_cast<const FunctionCall&>(e);
            if (!call.name.empty()) note_called_function(call.name);
            // Callback registration APIs make the named function "called":
            // add_action('init', 'my_handler') etc. keep handlers reachable.
            static const char* kCallbackApis[] = {
                "add_action", "add_filter", "register_activation_hook",
                "register_deactivation_hook", "add_shortcode", "call_user_func",
                "call_user_func_array", "array_map", "array_filter", "usort",
            };
            for (const char* api : kCallbackApis) {
                if (!iequals(call.name, api)) continue;
                for (const Argument& arg : call.args) {
                    if (!arg.value) continue;
                    if (arg.value->kind == NodeKind::kLiteral) {
                        const auto& lit = static_cast<const Literal&>(*arg.value);
                        if (lit.type == Literal::Type::kString && !lit.value.empty())
                            note_called_function(lit.value);
                    }
                    // array($obj, 'method') / array('Class', 'method')
                    if (arg.value->kind == NodeKind::kArrayLiteral) {
                        const auto& arr = static_cast<const ArrayLiteral&>(*arg.value);
                        if (arr.items.size() == 2 && arr.items[1].value &&
                            arr.items[1].value->kind == NodeKind::kLiteral) {
                            const auto& lit =
                                static_cast<const Literal&>(*arr.items[1].value);
                            if (lit.type == Literal::Type::kString)
                                note_called_method("", lit.value);
                        }
                    }
                }
            }
            break;
        }
        case NodeKind::kMethodCall: {
            const auto& call = static_cast<const MethodCall&>(e);
            if (!call.method.empty())
                note_called_method("", call.method);
            break;
        }
        case NodeKind::kStaticCall: {
            const auto& call = static_cast<const StaticCall&>(e);
            note_called_method(call.class_name, call.method);
            note_called_method("", call.method);
            break;
        }
        case NodeKind::kNew: {
            const auto& n = static_cast<const New&>(e);
            if (!n.class_name.empty())
                note_called_method(n.class_name, "__construct");
            break;
        }
        default:
            break;
    }
}

const FunctionRef* Project::find_function(std::string_view name) const {
    const auto it = functions_.find(name);  // transparent folded compare
    return it == functions_.end() ? nullptr : &it->second;
}

const ClassDecl* Project::find_class(std::string_view name) const {
    const auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : it->second;
}

const std::string& Project::file_of_class(std::string_view class_name) const {
    static const std::string kEmpty;
    const auto it = class_files_.find(class_name);
    return it == class_files_.end() ? kEmpty : *it->second;
}

const FunctionRef* Project::find_method(std::string_view class_name,
                                        std::string_view method_name) const {
    std::string_view cls = class_name;
    // Walk the inheritance chain (single inheritance, as in PHP). The
    // composite key probes case-preserving; MethodKeyLess folds per part.
    for (int depth = 0; depth < 16; ++depth) {
        const auto it = methods_.find(MethodKey{cls, method_name});
        if (it != methods_.end()) return &it->second;
        const auto cit = classes_.find(cls);
        if (cit == classes_.end() || cit->second->parent.empty()) return nullptr;
        cls = cit->second->parent;
    }
    return nullptr;
}

const FunctionRef* Project::find_method_any(std::string_view method_name) const {
    const FunctionRef* found = nullptr;
    for (const auto& [key, ref] : methods_) {
        if (folded_compare(key.method, method_name) != 0) continue;
        if (found) return nullptr;  // ambiguous
        found = &ref;
    }
    return found;
}

std::vector<FunctionRef> Project::uncalled_functions() const {
    std::vector<FunctionRef> out;
    for (const FunctionRef& ref : function_list_) {
        if (!ref.decl) continue;
        if (ref.owner) {
            const std::string method = ascii_lower(ref.decl->name);
            if (method == "__construct") continue;  // run via `new`
            const bool called =
                called_methods_.count(ascii_lower(ref.owner->name) + "::" + method) ||
                called_methods_.count("::" + method);
            if (!called) out.push_back(ref);
        } else {
            if (!called_functions_.count(ascii_lower(ref.decl->name)))
                out.push_back(ref);
        }
    }
    return out;
}

const ParsedFile* Project::resolve_include(std::string_view path) const {
    if (path.empty()) return nullptr;
    // Normalize leading "./".
    while (starts_with(path, "./")) path.remove_prefix(2);

    for (const auto& pf : files_)
        if (pf->source->name() == path) return pf.get();
    for (const auto& pf : files_)
        if (ends_with(pf->source->name(), path)) return pf.get();
    // Basename match as last resort.
    const size_t slash = path.rfind('/');
    const std::string_view base =
        slash == std::string_view::npos ? path : path.substr(slash + 1);
    for (const auto& pf : files_) {
        const std::string& name = pf->source->name();
        const size_t s = name.rfind('/');
        const std::string_view file_base =
            s == std::string::npos ? std::string_view(name)
                                   : std::string_view(name).substr(s + 1);
        if (file_base == base) return pf.get();
    }
    return nullptr;
}

}  // namespace phpsafe::php
