// PHP lexer: a C++ equivalent of the PHP interpreter's token_get_all(),
// which the paper uses to build its AST (model-construction stage). The
// lexer understands inline HTML, open/close tags, all literal forms
// (including heredoc/nowdoc and interpolated strings), comments and the
// full operator set used by PHP 5/7 plugin code.
//
// Zero-copy: token text and values are string_view slices of the source
// buffer whenever the lexeme needs no transformation; only decoded escape
// sequences, case-folded keywords and synthesized interpolation expressions
// are materialized — into the caller-supplied Arena, never onto the general
// heap. The SourceFile and Arena must outlive every token produced.
#pragma once

#include <string_view>
#include <vector>

#include "php/token.h"
#include "util/arena.h"
#include "util/diagnostics.h"
#include "util/source.h"

namespace phpsafe::php {

/// Returns true if `word` (already lowercased) is a PHP reserved keyword.
bool is_php_keyword(std::string_view word) noexcept;

struct LexerOptions {
    /// Emit kComment tokens instead of skipping them (the paper's tool
    /// "cleans the AST by removing comments"; tests flip this on).
    bool keep_comments = false;
};

class Lexer {
public:
    using Options = LexerOptions;

    Lexer(const SourceFile& file, Arena& arena, DiagnosticSink& sink,
          Options options = {});

    /// Tokenizes the whole file. Always ends with a kEndOfFile token.
    std::vector<Token> tokenize();

private:
    enum class Mode { kHtml, kPhp };

    bool at_end() const noexcept { return pos_ >= text_.size(); }
    char peek(size_t ahead = 0) const noexcept {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }
    char advance() noexcept;
    bool match(std::string_view s) noexcept;
    bool looking_at(std::string_view s) const noexcept;

    void lex_html(std::vector<Token>& out);
    void lex_php_token(std::vector<Token>& out);
    Token lex_variable();
    Token lex_identifier_or_keyword();
    Token lex_number();
    Token lex_single_quoted();
    Token lex_double_quoted(char quote, TokenKind kind);
    Token lex_heredoc();
    void lex_comment(std::vector<Token>& out);
    bool try_lex_cast(std::vector<Token>& out);
    Token lex_operator();

    /// Scans interpolation inside a double-quoted/heredoc body and fills
    /// token parts; `body` is the raw contents (escapes not yet decoded), a
    /// slice of the source buffer.
    void scan_interpolation(std::string_view body, Token& token);

    /// The source bytes scanned since `start` — the zero-copy token text.
    std::string_view slice(size_t start) const noexcept {
        return text_.substr(start, pos_ - start);
    }

    Token make(TokenKind kind, std::string_view text) const;

    const SourceFile& file_;
    std::string_view text_;
    Arena& arena_;
    DiagnosticSink& sink_;
    Options options_;
    size_t pos_ = 0;
    int line_ = 1;
    Mode mode_ = Mode::kHtml;
};

}  // namespace phpsafe::php
