// Batch exploit-confirmation + verified auto-remediation pipeline — the
// productionized form of the paper's §III.E exploit-confirmation step.
// Runs after a scan:
//
//   1. Candidate findings are grouped by *execution key* — (entry file,
//      payload kind, seed class): two findings whose replays would seed the
//      interpreter identically and execute the same file share ONE bounded
//      interpreter run (dynamic::Validator::seed_class). This is where the
//      batch speedup over one-at-a-time replay comes from, and it is exact:
//      the interpreter is deterministic, so judging a shared ExecResult per
//      finding is byte-identical to replaying each finding alone.
//   2. Execution groups fan out across a WorkerPool (PHPSAFE_JOBS aware);
//      results merge by group index, so the tiered output is byte-identical
//      at any worker count.
//   3. Every finding is tiered: validated (payload broke out at the sink),
//      unvalidated (replay ran, payload never surfaced) or inconclusive
//      (replay could not run). Tiers thread into Finding::confidence via
//      apply_confidence and from there into the JSON/HTML reports.
//   4. With fixes enabled, the remediation engine (validate/quickfix.h)
//      proposes a textual fix per finding and *verifies* each one on the
//      patched unit — reparse clean, analyzer re-scan kills exactly the
//      targeted finding with every other finding byte-identical, and the
//      interpreter replay no longer confirms the flow. Only fixes passing
//      all gates are emitted.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/finding.h"
#include "dynamic/validator.h"
#include "php/project.h"
#include "validate/quickfix.h"

namespace phpsafe::validate {

/// Confidence tier of one validated finding (maps 1:1 onto the non-default
/// Confidence values; a separate enum so the pipeline cannot produce
/// kUnchecked).
enum class Tier : uint8_t { kValidated, kUnvalidated, kInconclusive };

std::string to_string(Tier tier);
Confidence to_confidence(Tier tier);

/// Outcome for one finding, index-aligned with the input findings.
struct CaseOutcome {
    Tier tier = Tier::kInconclusive;
    dynamic::ValidationResult replay;
    /// Present only when a proposed fix passed every verification gate.
    std::optional<Quickfix> fix;
};

struct ValidateOptions {
    dynamic::ExecOptions exec;  ///< per-case interpreter budgets
    /// Worker threads for the replay/verification fan-out; <= 0 means auto
    /// (PHPSAFE_JOBS or hardware concurrency). The tiered output is
    /// byte-identical at any value.
    int workers = 0;
    /// Run the remediation engine (propose + verify quickfixes).
    bool propose_fixes = true;
};

struct ValidationReport {
    std::string tool;
    std::string plugin;
    std::vector<CaseOutcome> cases;  ///< aligned with result.findings
    int validated = 0;
    int unvalidated = 0;
    int inconclusive = 0;
    /// Deduplicated interpreter runs the batch actually executed — the
    /// sequential replay would have run cases.size() of them.
    int executions = 0;
    int fixes_proposed = 0;  ///< proposals the remediation engine produced
    int fixes_verified = 0;  ///< proposals that passed every gate (emitted)
    double wall_seconds = 0.0;  ///< measured; never part of the identity
};

/// Runs the pipeline over a scan result. `kb`/`options` must be the
/// configuration that produced `result` (fix verification re-runs the
/// analyzer with them).
ValidationReport validate_result(const php::Project& project,
                                 const KnowledgeBase& kb,
                                 const AnalysisOptions& options,
                                 const AnalysisResult& result,
                                 const ValidateOptions& vopts = {});

/// Stamps each finding's confidence from the report's tiers.
void apply_confidence(AnalysisResult& result, const ValidationReport& report);

/// Canonical byte rendering of everything the pipeline's semantics
/// determine (per-case finding identity, tier, replay verdict + evidence,
/// verified fix edits; wall time excluded) — the string the determinism
/// tests and the bench identity gates compare.
std::string validation_signature(const AnalysisResult& result,
                                 const ValidationReport& report);

}  // namespace phpsafe::validate
