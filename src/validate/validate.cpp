#include "validate/validate.h"

#include <chrono>
#include <map>
#include <set>
#include <sstream>

#include "util/worker_pool.h"

namespace phpsafe::validate {

namespace {

using dynamic::Validator;

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// One deduplicated interpreter execution: every member finding shares the
/// same entry file, attack payload and seeding, so one run serves all.
struct ExecGroup {
    std::string file;
    InputVector vector = InputVector::kUnknown;  ///< first member's vector
    std::string payload;
};

/// Byte rendering of one finding for the fix-verification "nothing else
/// regressed" gate: identity plus the full trace, like
/// core/finding.cpp's result_signature but per finding.
std::string finding_signature(const Finding& finding) {
    std::string sig = to_string(finding);
    sig += '\n';
    for (const TaintStep& step : finding.trace) {
        sig += "  " + to_string(step.location) + ' ' + step.description + '\n';
    }
    return sig;
}

/// Hermetic summary artifacts captured from the original project, handed to
/// every fix verification for seeding. Only set when the hermetic baseline
/// scan reproduced the caller's result byte-for-byte — the precondition for
/// judging seeded hermetic rescans against that result. The seed map is
/// built once; each verification passes the engine the per-file block set
/// (artifacts whose computation read that file) instead of filtering the
/// map per fix.
struct SeedContext {
    const std::map<std::string, const SummaryArtifact*>* seeds = nullptr;
    /// file → keys of reusable artifacts whose dependency record touches it
    /// (kFile deps by file, unresolved deps by name).
    const std::map<std::string, std::set<std::string>>* blocked_by_file =
        nullptr;
    AnalysisOptions hermetic;
};

/// Verification loop for one proposed fix: apply the edit, re-parse the one
/// patched file (php::Project::fork_with_replacement shares every other
/// file's AST and declaration-table entries), re-run the analyzer with the
/// configuration that produced the original result, and replay the targeted
/// finding on the patched unit. Every gate must hold:
///   - the patched file reparses clean,
///   - the analyzer no longer reports the targeted finding,
///   - every OTHER finding is byte-identical (same order, same trace),
///   - the interpreter replay no longer confirms the flow.
///
/// When a SeedContext is supplied, the rescan reuses every captured summary
/// whose computation never looked at the patched file. That is sound while
/// the patch leaves the file's declaration set unchanged (then name
/// resolution outside the file is untouched, so those summaries' inputs are
/// byte-identical on the patched project) — gated here by comparing
/// declaration fingerprints, falling back to an unseeded rescan otherwise.
/// Entry-file artifacts carry their own second gate: the engine replays one
/// only while every shared slot (global / property) the walk observed still
/// holds the captured value, so cross-entry state flows re-run exactly when
/// the patch actually changed their inputs.
/// The kQuickfixSoundness fuzz oracle independently re-verifies accepted
/// fixes against a from-scratch rebuild, so any divergence the gates missed
/// surfaces as an oracle violation.
bool verify_fix(const php::Project& project, const KnowledgeBase& kb,
                const AnalysisOptions& options, const AnalysisResult& result,
                size_t target, const Quickfix& fix,
                const dynamic::ExecOptions& exec, const SeedContext& seed) {
    const std::optional<std::string> patched_text = apply_quickfix(project, fix);
    if (!patched_text) return false;

    DiagnosticSink sink;
    std::optional<php::Project> forked =
        project.fork_with_replacement(fix.file, *patched_text, sink);
    if (!forked) {  // file set changed under us; rebuild the slow way
        php::Project rebuilt(project.name());
        for (const auto& file : project.files()) {
            if (!file || !file->source) continue;
            if (file->source->name() == fix.file)
                rebuilt.add_file(fix.file, *patched_text);
            else
                rebuilt.add_parsed(file);
        }
        rebuilt.parse_all(sink);
        forked = std::move(rebuilt);
    }
    const php::Project& patched = *forked;
    const php::ParsedFile* parsed = patched.file_named(fix.file);
    if (!parsed || parsed->parse_failed) return false;

    const Analyzer analyzer = Analyzer::borrowing(kb, options);
    ScanResult rescan;
    if (seed.seeds && project.declaration_fingerprint(fix.file) ==
                          patched.declaration_fingerprint(fix.file)) {
        SummaryExchange exchange;
        exchange.seeds = seed.seeds;
        const auto blocked = seed.blocked_by_file->find(fix.file);
        if (blocked != seed.blocked_by_file->end())
            exchange.seed_block = &blocked->second;
        rescan = analyzer.scan(patched, seed.hermetic, exchange);
    } else {
        rescan = analyzer.scan(patched);
    }
    if (rescan.result.files_failed != result.files_failed) return false;

    const Finding& finding = result.findings[target];
    const std::string target_key = finding.dedup_key();
    if (rescan.result.findings.size() + 1 != result.findings.size())
        return false;
    size_t j = 0;
    for (size_t i = 0; i < result.findings.size(); ++i) {
        if (i == target) continue;
        const Finding& after = rescan.result.findings[j++];
        if (after.dedup_key() == target_key) return false;
        if (finding_signature(after) != finding_signature(result.findings[i]))
            return false;
    }

    const std::string payload = Validator::payload_for(finding.kind);
    dynamic::Interpreter interpreter(patched, exec);
    Validator::seed_vector(interpreter, finding.vector, payload);
    const dynamic::ExecResult run = interpreter.run_file(finding.location.file);
    return !Validator::judge(finding, run, payload).confirmed;
}

}  // namespace

std::string to_string(Tier tier) {
    switch (tier) {
        case Tier::kValidated: return "validated";
        case Tier::kUnvalidated: return "unvalidated";
        case Tier::kInconclusive: return "inconclusive";
    }
    return "?";
}

Confidence to_confidence(Tier tier) {
    switch (tier) {
        case Tier::kValidated: return Confidence::kValidated;
        case Tier::kUnvalidated: return Confidence::kUnvalidated;
        case Tier::kInconclusive: return Confidence::kInconclusive;
    }
    return Confidence::kUnchecked;
}

ValidationReport validate_result(const php::Project& project,
                                 const KnowledgeBase& kb,
                                 const AnalysisOptions& options,
                                 const AnalysisResult& result,
                                 const ValidateOptions& vopts) {
    const double start = now_seconds();
    ValidationReport report;
    report.tool = result.tool;
    report.plugin = result.plugin;
    const size_t n = result.findings.size();
    report.cases.resize(n);

    // ---- 1. group findings by execution key -------------------------------
    // Key = (entry file, payload, seed class): replays with equal keys seed
    // the interpreter identically and run the same file, so they share one
    // execution. Group order is first-appearance order — deterministic in
    // the findings' total order, independent of map iteration.
    std::vector<ExecGroup> groups;
    std::vector<size_t> slot(n);
    std::map<std::string, size_t> group_index;
    for (size_t i = 0; i < n; ++i) {
        const Finding& finding = result.findings[i];
        const std::string payload = Validator::payload_for(finding.kind);
        const std::string key =
            finding.location.file + '\x1f' + payload + '\x1f' +
            to_string(Validator::seed_class(finding.vector));
        const auto [it, inserted] =
            group_index.emplace(key, groups.size());
        if (inserted) {
            ExecGroup group;
            group.file = finding.location.file;
            group.vector = finding.vector;
            group.payload = payload;
            groups.push_back(std::move(group));
        }
        slot[i] = it->second;
    }
    report.executions = static_cast<int>(groups.size());

    WorkerPool pool(WorkerPool::resolve_parallelism(vopts.workers));

    // ---- 2. fan executions across the pool, merge by index ----------------
    std::vector<dynamic::ExecResult> runs(groups.size());
    pool.run(groups.size(), [&](size_t g) {
        dynamic::Interpreter interpreter(project, vopts.exec);
        Validator::seed_vector(interpreter, groups[g].vector,
                               groups[g].payload);
        runs[g] = interpreter.run_file(groups[g].file);
    });

    // ---- 3. judge each finding against its shared execution ---------------
    for (size_t i = 0; i < n; ++i) {
        const Finding& finding = result.findings[i];
        CaseOutcome& outcome = report.cases[i];
        outcome.replay = Validator::judge(finding, runs[slot[i]],
                                          groups[slot[i]].payload);
        if (outcome.replay.confirmed) {
            outcome.tier = Tier::kValidated;
            ++report.validated;
        } else if (outcome.replay.executed) {
            outcome.tier = Tier::kUnvalidated;
            ++report.unvalidated;
        } else {
            outcome.tier = Tier::kInconclusive;
            ++report.inconclusive;
        }
    }

    // ---- 4. remediation: propose serially (cheap), verify in parallel ----
    if (vopts.propose_fixes) {
        std::vector<std::optional<Quickfix>> proposals(n);
        for (size_t i = 0; i < n; ++i) {
            proposals[i] = propose_quickfix(project, kb, result.findings[i]);
            if (proposals[i]) ++report.fixes_proposed;
        }

        // One hermetic capture scan of the original project amortizes the
        // per-fix rescans: function summaries AND entry-file walks untouched
        // by a patch are seeded instead of recomputed (capture_entry_files —
        // the entry artifacts are what let a verification rescan skip
        // re-walking every unchanged file's top-level code). Seeding only
        // arms when the hermetic baseline reproduces the caller's result
        // byte-for-byte — otherwise every verification falls back to a
        // plain full rescan.
        SeedContext seed;
        std::map<std::string, SummaryArtifact> capture;
        std::map<std::string, const SummaryArtifact*> seeds;
        std::map<std::string, std::set<std::string>> blocked_by_file;
        if (report.fixes_proposed > 0) {
            seed.hermetic = options.to_builder()
                                .hermetic_summaries(true)
                                .capture_entry_files(true)
                                .build();
            SummaryExchange exchange;
            exchange.capture = &capture;
            const Analyzer analyzer = Analyzer::borrowing(kb, options);
            const ScanResult baseline =
                analyzer.scan(project, seed.hermetic, exchange);
            bool reproduced =
                baseline.result.files_failed == result.files_failed &&
                baseline.result.findings.size() == result.findings.size();
            for (size_t i = 0; reproduced && i < result.findings.size(); ++i)
                reproduced = finding_signature(baseline.result.findings[i]) ==
                             finding_signature(result.findings[i]);
            if (reproduced) {
                for (const auto& [name, artifact] : capture) {
                    if (!artifact.reusable) continue;
                    seeds.emplace_hint(seeds.end(), name, &artifact);
                    for (const SummaryDep& dep : artifact.deps)
                        blocked_by_file[dep.file.empty() ? dep.name : dep.file]
                            .insert(name);
                }
                seed.seeds = &seeds;
                seed.blocked_by_file = &blocked_by_file;
            }
        }

        pool.run(n, [&](size_t i) {
            if (!proposals[i]) return;
            if (verify_fix(project, kb, options, result, i, *proposals[i],
                           vopts.exec, seed)) {
                proposals[i]->verified = true;
                report.cases[i].fix = std::move(proposals[i]);
            }
        });
        for (const CaseOutcome& outcome : report.cases)
            if (outcome.fix) ++report.fixes_verified;
    }

    report.wall_seconds = now_seconds() - start;
    return report;
}

void apply_confidence(AnalysisResult& result, const ValidationReport& report) {
    const size_t n =
        std::min(result.findings.size(), report.cases.size());
    for (size_t i = 0; i < n; ++i)
        result.findings[i].confidence = to_confidence(report.cases[i].tier);
}

std::string validation_signature(const AnalysisResult& result,
                                 const ValidationReport& report) {
    std::ostringstream os;
    os << "tool=" << report.tool << " plugin=" << report.plugin
       << " cases=" << report.cases.size()
       << " executions=" << report.executions << " tiers=" << report.validated
       << "/" << report.unvalidated << "/" << report.inconclusive
       << " fixes=" << report.fixes_proposed << "/" << report.fixes_verified
       << '\n';
    const size_t n =
        std::min(result.findings.size(), report.cases.size());
    for (size_t i = 0; i < n; ++i) {
        const CaseOutcome& outcome = report.cases[i];
        os << to_string(result.findings[i]) << " => "
           << to_string(outcome.tier)
           << " confirmed=" << outcome.replay.confirmed
           << " executed=" << outcome.replay.executed
           << " payload=" << outcome.replay.payload_used
           << " evidence=" << outcome.replay.evidence << '\n';
        if (outcome.fix)
            os << "  fix[" << to_string(outcome.fix->kind) << "] "
               << outcome.fix->file << ":" << outcome.fix->line << " {"
               << outcome.fix->before << "} -> {" << outcome.fix->after
               << "}\n";
    }
    return os.str();
}

}  // namespace phpsafe::validate
