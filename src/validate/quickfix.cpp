#include "validate/quickfix.h"

#include <cctype>

#include "util/strings.h"

namespace phpsafe::validate {

namespace {

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

size_t ifind(std::string_view haystack, std::string_view needle, size_t from) {
    const std::string h = ascii_lower(haystack.substr(from));
    const size_t pos = h.find(ascii_lower(needle));
    return pos == std::string_view::npos ? std::string_view::npos : from + pos;
}

/// The sink token to anchor the rewrite on: a method sink like
/// "wpdb::get_results" appears in source as "get_results".
std::string_view sink_token(std::string_view sink) {
    const size_t sep = sink.rfind("::");
    return sep == std::string_view::npos ? sink : sink.substr(sep + 2);
}

/// Finds the vulnerable expression on the sink line, preferring the first
/// identifier-bounded occurrence after the sink token so a variable that
/// is also assigned earlier on the line (`$q = $_GET['q']; echo $q;`) is
/// wrapped at the sink, not at its definition.
size_t find_expression(std::string_view line, std::string_view expr,
                       std::string_view sink) {
    if (expr.empty()) return std::string_view::npos;
    size_t from = 0;
    const std::string_view token = sink_token(sink);
    if (!token.empty()) {
        const size_t at = ifind(line, token, 0);
        if (at != std::string_view::npos) from = at + token.size();
    }
    for (size_t pos = line.find(expr, from); pos != std::string_view::npos;
         pos = line.find(expr, pos + 1)) {
        const bool left_ok =
            pos == 0 || (!is_ident_char(line[pos - 1]) && line[pos - 1] != '$');
        const char last = expr.back();
        const bool right_ok = !is_ident_char(last) ||
                              pos + expr.size() >= line.size() ||
                              !is_ident_char(line[pos + expr.size()]);
        if (left_ok && right_ok) return pos;
    }
    return std::string_view::npos;
}

/// Splits `text` at top-level occurrences of `sep` (a single char),
/// respecting single/double quotes and paren/bracket nesting. Returns
/// false on unbalanced input.
bool split_top_level(std::string_view text, char sep,
                     std::vector<std::string_view>& out) {
    int depth = 0;
    char quote = 0;
    size_t start = 0;
    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quote) {
            if (c == '\\')
                ++i;
            else if (c == quote)
                quote = 0;
            continue;
        }
        if (c == '\'' || c == '"') {
            quote = c;
        } else if (c == '(' || c == '[' || c == '{') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            if (--depth < 0) return false;
        } else if (c == sep && depth == 0) {
            out.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    if (depth != 0 || quote) return false;
    out.push_back(text.substr(start));
    return true;
}

/// A quoted PHP string literal with no interpolation risk: '...' or "..."
/// with no embedded `$` and no escapes (the corpus and the quickfix both
/// stay inside this fragment on purpose — anything fancier is rejected and
/// falls back to the sanitize-wrap fix).
bool is_plain_literal(std::string_view part, std::string_view& content) {
    if (part.size() < 2) return false;
    const char q = part.front();
    if ((q != '\'' && q != '"') || part.back() != q) return false;
    const std::string_view inner = part.substr(1, part.size() - 2);
    for (char c : inner)
        if (c == q || c == '\\' || c == '$') return false;
    content = inner;
    return true;
}

/// A bindable variable expression: $ident, optionally chained with
/// [...] subscripts or ->prop accesses ($_GET['id'], $row->name, ...).
bool is_bindable_variable(std::string_view part) {
    size_t i = 0;
    if (i >= part.size() || part[i] != '$') return false;
    ++i;
    if (i >= part.size() || (!std::isalpha(static_cast<unsigned char>(part[i])) &&
                             part[i] != '_'))
        return false;
    while (i < part.size() && is_ident_char(part[i])) ++i;
    while (i < part.size()) {
        if (part[i] == '[') {
            const size_t close = part.find(']', i);
            if (close == std::string_view::npos) return false;
            i = close + 1;
        } else if (part.substr(i, 2) == "->") {
            i += 2;
            if (i >= part.size() || !is_ident_char(part[i])) return false;
            while (i < part.size() && is_ident_char(part[i])) ++i;
        } else {
            return false;
        }
    }
    return true;
}

std::string php_single_quote(std::string_view text) {
    std::string out = "'";
    for (char c : text) {
        if (c == '\'' || c == '\\') out += '\\';
        out += c;
    }
    out += '\'';
    return out;
}

/// Attempts the mysqli_query → prepared-statement rewrite. The line must
/// be a standalone statement `[$res = ] mysqli_query($conn, <concat>);`
/// whose query argument is a top-level `.`-concatenation of plain string
/// literals and bindable variables (at least one variable — a pure literal
/// query has nothing to fix).
std::optional<Quickfix> propose_prepare(std::string_view line,
                                        const Finding& finding) {
    const size_t call = ifind(line, "mysqli_query", 0);
    if (call == std::string_view::npos) return std::nullopt;
    // Guard against matching inside a longer identifier.
    if (call > 0 && (is_ident_char(line[call - 1]) || line[call - 1] == '$'))
        return std::nullopt;

    size_t open = call + std::string_view("mysqli_query").size();
    while (open < line.size() && std::isspace(static_cast<unsigned char>(line[open])))
        ++open;
    if (open >= line.size() || line[open] != '(') return std::nullopt;

    // Balanced argument span.
    int depth = 0;
    char quote = 0;
    size_t close = std::string_view::npos;
    for (size_t i = open; i < line.size(); ++i) {
        const char c = line[i];
        if (quote) {
            if (c == '\\')
                ++i;
            else if (c == quote)
                quote = 0;
            continue;
        }
        if (c == '\'' || c == '"') quote = c;
        else if (c == '(') ++depth;
        else if (c == ')' && --depth == 0) {
            close = i;
            break;
        }
    }
    if (close == std::string_view::npos) return std::nullopt;

    // Statement context: optional `$res =` before, `;` after, nothing else.
    const std::string_view head = trim(line.substr(0, call));
    std::string assign;
    if (!head.empty()) {
        if (head.back() != '=') return std::nullopt;
        const std::string_view lhs = trim(head.substr(0, head.size() - 1));
        if (!is_bindable_variable(lhs)) return std::nullopt;
        assign = std::string(lhs);
    }
    if (trim(line.substr(close + 1)) != ";") return std::nullopt;

    std::vector<std::string_view> args;
    if (!split_top_level(line.substr(open + 1, close - open - 1), ',', args) ||
        args.size() != 2)
        return std::nullopt;
    const std::string_view conn = trim(args[0]);
    if (!is_bindable_variable(conn)) return std::nullopt;

    std::vector<std::string_view> parts;
    if (!split_top_level(args[1], '.', parts)) return std::nullopt;
    std::string tmpl;
    std::vector<std::string_view> binds;
    for (std::string_view raw : parts) {
        const std::string_view part = trim(raw);
        std::string_view literal;
        if (is_plain_literal(part, literal)) {
            tmpl += literal;
        } else if (is_bindable_variable(part)) {
            tmpl += '?';
            binds.push_back(part);
        } else {
            return std::nullopt;
        }
    }
    if (binds.empty()) return std::nullopt;

    const size_t first = line.find_first_not_of(" \t");
    std::string after(line.substr(0, first == std::string_view::npos ? 0 : first));
    after += "$psf_stmt = mysqli_prepare(" + std::string(conn) + ", " +
             php_single_quote(tmpl) + "); mysqli_stmt_bind_param($psf_stmt, " +
             php_single_quote(std::string(binds.size(), 's')) + ", ";
    for (size_t i = 0; i < binds.size(); ++i) {
        if (i) after += ", ";
        after += std::string(binds[i]);
    }
    after += "); ";
    if (!assign.empty()) after += assign + " = ";
    after += "mysqli_stmt_execute($psf_stmt);";

    Quickfix fix;
    fix.kind = Quickfix::Kind::kPrepareStatement;
    fix.file = finding.location.file;
    fix.line = finding.location.line;
    fix.before = std::string(line);
    fix.after = std::move(after);
    fix.note = "rewrite mysqli_query into a prepared statement with " +
               std::to_string(binds.size()) + " bound parameter" +
               (binds.size() == 1 ? "" : "s");
    return fix;
}

}  // namespace

std::string to_string(Quickfix::Kind kind) {
    switch (kind) {
        case Quickfix::Kind::kSanitizeWrap: return "sanitize-wrap";
        case Quickfix::Kind::kPrepareStatement: return "prepare-statement";
    }
    return "?";
}

std::string preferred_sanitizer(const KnowledgeBase& kb, VulnKind kind) {
    // Profile-specific functions first (the WordPress esc_* family), PHP
    // built-ins as the generic fallback. Every candidate here is also
    // implemented by the dynamic interpreter, so a wrapped flow is dead for
    // the replay exactly when it is dead for the engine.
    static const char* const kXssOrder[] = {"esc_html", "htmlspecialchars",
                                            "htmlentities", nullptr};
    static const char* const kSqliOrder[] = {"esc_sql",
                                             "mysql_real_escape_string",
                                             "addslashes", nullptr};
    const char* const* order = kind == VulnKind::kXss ? kXssOrder : kSqliOrder;
    for (const char* const* name = order; *name; ++name) {
        const FunctionInfo* info = kb.function(*name);
        if (info && info->sanitizes.contains(kind)) return *name;
    }
    return "";
}

std::optional<Quickfix> propose_quickfix(const php::Project& project,
                                         const KnowledgeBase& kb,
                                         const Finding& finding) {
    const php::ParsedFile* file = project.file_named(finding.location.file);
    if (!file || !file->source) return std::nullopt;
    const std::string_view line = file->source->line(finding.location.line);
    if (line.empty()) return std::nullopt;

    if (finding.kind == VulnKind::kSqli) {
        if (auto fix = propose_prepare(line, finding)) return fix;
    }

    const std::string sanitizer = preferred_sanitizer(kb, finding.kind);
    if (sanitizer.empty()) return std::nullopt;
    const size_t pos = find_expression(line, finding.variable, finding.sink);
    if (pos == std::string_view::npos) return std::nullopt;

    Quickfix fix;
    fix.kind = Quickfix::Kind::kSanitizeWrap;
    fix.file = finding.location.file;
    fix.line = finding.location.line;
    fix.before = std::string(line);
    fix.after = std::string(line.substr(0, pos)) + sanitizer + "(" +
                finding.variable + ")" +
                std::string(line.substr(pos + finding.variable.size()));
    fix.note = "wrap sink argument in " + sanitizer + "()";
    return fix;
}

std::optional<std::string> apply_quickfix(const php::Project& project,
                                          const Quickfix& fix) {
    const php::ParsedFile* file = project.file_named(fix.file);
    if (!file || !file->source || fix.line < 1) return std::nullopt;
    if (file->source->line(fix.line) != fix.before) return std::nullopt;

    const std::string_view text = file->source->text();
    size_t start = 0;
    for (int n = 1; n < fix.line; ++n) {
        start = text.find('\n', start);
        if (start == std::string_view::npos) return std::nullopt;
        ++start;
    }
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();

    std::string patched(text.substr(0, start));
    patched += fix.after;
    patched += text.substr(end);
    return patched;
}

}  // namespace phpsafe::validate
