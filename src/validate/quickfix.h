// Remediation engine — machine-applicable quickfixes for findings, in the
// spirit of the mitigation route the related work takes (PAPERS.md, "You
// shall not pass": rewrite the sink into a sanitized/prepared form and
// prove the flow is dead). Two fix shapes:
//
//   sanitize-wrap       — wrap the vulnerable sink-argument expression in
//                         the active profile's preferred sanitizer for the
//                         finding's kind (esc_html/htmlspecialchars/... for
//                         XSS, esc_sql/mysql_real_escape_string/... for
//                         SQLi), picked by probing the knowledge base so a
//                         WordPress profile prefers the esc_* family and a
//                         generic profile falls back to the PHP built-ins.
//   prepare-statement   — rewrite a procedural `mysqli_query($conn, <lit> .
//                         $var . <lit> ...)` call into mysqli_prepare +
//                         mysqli_stmt_bind_param + mysqli_stmt_execute with
//                         `?` placeholders, turning the query text into a
//                         pure literal.
//
// A Quickfix is a single-line textual edit against retained source: the
// replacement line may hold several `;`-separated statements, but it never
// adds or removes lines, so every other finding's (file, line) anchor — and
// therefore its canonical serialization — is untouched by applying it.
// Proposals are heuristics; validate/validate.h verifies each one by
// re-running the analyzer and the interpreter on the patched unit and only
// emits fixes that provably kill the flow without regressing anything else.
#pragma once

#include <optional>
#include <string>

#include "config/knowledge.h"
#include "core/finding.h"
#include "php/project.h"

namespace phpsafe::validate {

struct Quickfix {
    enum class Kind : uint8_t { kSanitizeWrap, kPrepareStatement };
    Kind kind = Kind::kSanitizeWrap;
    std::string file;
    int line = 0;         ///< 1-based line the edit replaces
    std::string before;   ///< exact original line (apply refuses on drift)
    std::string after;    ///< replacement line
    std::string note;     ///< human-readable summary of the rewrite
    bool verified = false;  ///< set by the pipeline's verification loop
};

std::string to_string(Quickfix::Kind kind);

/// The profile's preferred sanitizer for `kind`: the first function in the
/// kind's preference order that the knowledge base registers as a
/// sanitizer of that kind. Empty when the profile has none.
std::string preferred_sanitizer(const KnowledgeBase& kb, VulnKind kind);

/// Proposes a textual fix for one finding against the project's retained
/// source. Returns nullopt when the sink line cannot be rewritten
/// unambiguously (expression not found on the line, no sanitizer in the
/// profile, file missing).
std::optional<Quickfix> propose_quickfix(const php::Project& project,
                                         const KnowledgeBase& kb,
                                         const Finding& finding);

/// Applies a fix: the full patched text of fix.file, or nullopt when the
/// file is gone or its current line no longer equals fix.before.
std::optional<std::string> apply_quickfix(const php::Project& project,
                                          const Quickfix& fix);

}  // namespace phpsafe::validate
