#include "graph/project_graph.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "php/walk.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/strings.h"

namespace phpsafe::graph {

namespace {

void sort_unique(std::vector<std::string>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

void sort_unique_ids(std::vector<ProjectGraph::FileId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool is_self_reference(std::string_view class_name) {
    return iequals(class_name, "self") || iequals(class_name, "static") ||
           iequals(class_name, "parent");
}

std::string_view basename_of(std::string_view path) {
    const size_t slash = path.rfind('/');
    return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

std::string_view top_dir_of(std::string_view path) {
    const size_t slash = path.find('/');
    return slash == std::string_view::npos ? std::string_view() : path.substr(0, slash);
}

/// The trailing string literal of an include path expression, if any:
/// handles plain literals and the `dirname(__FILE__) . '/x.php'` /
/// `PLUGIN_DIR . 'inc/x.php'` concat idioms by descending the right spine.
std::string_view include_literal(const php::Expr* path) {
    while (path && path->kind == php::NodeKind::kBinary) {
        const auto& binary = static_cast<const php::Binary&>(*path);
        if (binary.op != php::BinaryOp::kConcat) return {};
        path = binary.rhs;
    }
    if (!path || path->kind != php::NodeKind::kLiteral) return {};
    const auto& literal = static_cast<const php::Literal&>(*path);
    if (literal.type != php::Literal::Type::kString) return {};
    return literal.value;
}

uint64_t parse_hex64(std::string_view hex, bool& ok) {
    uint64_t value = 0;
    ok = !hex.empty() && hex.size() <= 16;
    for (const char c : hex) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else { ok = false; return 0; }
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    return value;
}

std::string hex64(uint64_t value) {
    char buf[17];
    for (int i = 15; i >= 0; --i) {
        buf[i] = "0123456789abcdef"[value & 0xf];
        value >>= 4;
    }
    buf[16] = '\0';
    return std::string(buf);
}

/// Backup/leftover file names an audit should flag: shipped backups of PHP
/// files are live code on a real server.
bool is_dead_name(std::string_view name) {
    if (ends_with(name, "~") || ends_with(name, ".bak") ||
        ends_with(name, ".old") || ends_with(name, ".orig"))
        return true;
    const std::string_view base = basename_of(name);
    return base.size() >= 8 && iequals(base.substr(0, 8), "copy of ");
}

constexpr std::string_view kVendorDirNames[] = {
    "external", "framework", "lib", "libs", "node_modules",
    "third-party", "thirdparty", "vendor",
};

}  // namespace

FileFacts extract_file_facts(const php::ParsedFile& file) {
    FileFacts facts;
    facts.name = file.unit.file_name;
    facts.content_hash = file.content_hash;
    facts.parse_failed = file.parse_failed;

    const php::ExprVisitor on_expr = [&](const php::Expr& e) {
        switch (e.kind) {
            case php::NodeKind::kFunctionCall: {
                const auto& call = static_cast<const php::FunctionCall&>(e);
                if (!call.name.empty())
                    facts.called_functions.push_back(ascii_lower(call.name));
                break;
            }
            case php::NodeKind::kMethodCall: {
                const auto& call = static_cast<const php::MethodCall&>(e);
                if (!call.method.empty())
                    facts.called_methods.push_back(ascii_lower(call.method));
                break;
            }
            case php::NodeKind::kStaticCall: {
                const auto& call = static_cast<const php::StaticCall&>(e);
                if (!call.method.empty())
                    facts.called_methods.push_back(ascii_lower(call.method));
                if (!call.class_name.empty() && !is_self_reference(call.class_name))
                    facts.used_classes.push_back(ascii_lower(call.class_name));
                break;
            }
            case php::NodeKind::kNew: {
                const auto& n = static_cast<const php::New&>(e);
                if (!n.class_name.empty() && !is_self_reference(n.class_name))
                    facts.used_classes.push_back(ascii_lower(n.class_name));
                break;
            }
            case php::NodeKind::kIncludeExpr: {
                const auto& inc = static_cast<const php::IncludeExpr&>(e);
                const std::string_view path = include_literal(inc.path);
                if (!path.empty())
                    facts.include_paths.emplace_back(path);
                break;
            }
            default:
                break;
        }
    };
    const php::StmtVisitor on_stmt = [&](const php::Stmt& s) {
        if (s.kind == php::NodeKind::kFunctionDecl) {
            const auto& fn = static_cast<const php::FunctionDecl&>(s);
            if (!fn.is_method && !fn.name.empty())
                facts.declared_functions.push_back(ascii_lower(fn.name));
        } else if (s.kind == php::NodeKind::kClassDecl) {
            const auto& cls = static_cast<const php::ClassDecl&>(s);
            if (cls.name.empty()) return;
            const std::string class_lower = ascii_lower(cls.name);
            facts.declared_classes.push_back(class_lower);
            if (!cls.parent.empty() && !is_self_reference(cls.parent))
                facts.used_classes.push_back(ascii_lower(cls.parent));
            for (const php::FunctionDecl* method : cls.methods)
                if (method && !method->name.empty())
                    facts.declared_methods.push_back(class_lower + "::" +
                                                     ascii_lower(method->name));
        }
    };
    for (const php::StmtPtr& stmt : file.unit.statements)
        if (stmt) php::walk_stmt(*stmt, on_expr, on_stmt);

    sort_unique(facts.declared_functions);
    sort_unique(facts.declared_classes);
    sort_unique(facts.declared_methods);
    sort_unique(facts.called_functions);
    sort_unique(facts.called_methods);
    sort_unique(facts.used_classes);
    sort_unique(facts.include_paths);
    return facts;
}

bool structure_equals(const FileFacts& a, const FileFacts& b) {
    return a.name == b.name && a.parse_failed == b.parse_failed &&
           a.declared_functions == b.declared_functions &&
           a.declared_classes == b.declared_classes &&
           a.declared_methods == b.declared_methods &&
           a.called_functions == b.called_functions &&
           a.called_methods == b.called_methods &&
           a.used_classes == b.used_classes &&
           a.include_paths == b.include_paths;
}

std::string_view ProjectGraph::intern(std::string_view s) {
    return names_.store(s);
}

ProjectGraph::FileId ProjectGraph::file_id(std::string_view name) const {
    const auto it = file_index_.find(name);
    return it == file_index_.end() ? kNoFile : it->second;
}

void ProjectGraph::finish_edges() {
    include_edges_ = 0;
    use_edges_ = 0;
    for (FileNode& node : files_) {
        sort_unique_ids(node.includes);
        sort_unique_ids(node.uses);
        node.included_by.clear();
        node.used_by.clear();
    }
    for (size_t from = 0; from < files_.size(); ++from) {
        for (const FileId to : files_[from].includes)
            files_[static_cast<size_t>(to)].included_by.push_back(
                static_cast<FileId>(from));
        for (const FileId to : files_[from].uses)
            files_[static_cast<size_t>(to)].used_by.push_back(
                static_cast<FileId>(from));
        include_edges_ += static_cast<int>(files_[from].includes.size());
        use_edges_ += static_cast<int>(files_[from].uses.size());
    }
}

ProjectGraph ProjectGraph::build(std::vector<FileFacts> facts) {
    ProjectGraph g;
    g.files_.reserve(facts.size());

    // Pass 1: file nodes + declaration indexes. First declaration wins for
    // functions and classes (php::Project keeps the first emplace); method
    // names index every declaring file.
    std::map<std::string_view, FileId> function_file;
    std::map<std::string_view, FileId> class_file;
    std::map<std::string_view, std::vector<FileId>> method_files;
    std::map<std::string_view, std::vector<FileId>> basename_index;
    for (const FileFacts& f : facts) {
        const FileId id = static_cast<FileId>(g.files_.size());
        FileNode node;
        node.name = g.intern(f.name);
        node.hash = f.content_hash;
        node.parse_failed = f.parse_failed;
        g.files_.push_back(std::move(node));
        g.file_index_.emplace(g.files_.back().name, id);
        basename_index[basename_of(g.files_.back().name)].push_back(id);

        for (const std::string& fn : f.declared_functions) {
            const FuncId fid = static_cast<FuncId>(g.functions_.size());
            g.functions_.push_back({g.intern(fn), id});
            g.files_.back().functions.push_back(fid);
            function_file.emplace(g.functions_.back().name, id);
        }
        for (const std::string& cls : f.declared_classes)
            class_file.emplace(g.intern(cls), id);
        for (const std::string& qualified : f.declared_methods) {
            const FuncId fid = static_cast<FuncId>(g.functions_.size());
            g.functions_.push_back({g.intern(qualified), id});
            g.files_.back().functions.push_back(fid);
            const size_t sep = qualified.find("::");
            if (sep != std::string::npos)
                method_files[g.functions_.back().name.substr(sep + 2)]
                    .push_back(id);
        }
    }

    // Pass 2: edges. Include paths resolve like Project::resolve_include
    // (exact name, then suffix, then basename — file order breaks ties),
    // accelerated through the basename index: every suffix or basename
    // match shares the path's final segment.
    for (size_t i = 0; i < facts.size(); ++i) {
        const FileId from = static_cast<FileId>(i);
        FileNode& node = g.files_[i];
        for (const std::string& raw : facts[i].include_paths) {
            std::string_view path = raw;
            while (starts_with(path, "./")) path.remove_prefix(2);
            if (path.empty()) continue;
            FileId to = g.file_id(path);
            if (to == kNoFile) {
                const auto candidates = basename_index.find(basename_of(path));
                if (candidates != basename_index.end()) {
                    for (const FileId c : candidates->second) {
                        const std::string_view name =
                            g.files_[static_cast<size_t>(c)].name;
                        if (!ends_with(name, path)) continue;
                        // Segment boundary: "b.php" must not claim "ab.php".
                        if (name.size() > path.size() && path.front() != '/' &&
                            name[name.size() - path.size() - 1] != '/')
                            continue;
                        to = c;
                        break;
                    }
                    if (to == kNoFile && !candidates->second.empty())
                        to = candidates->second.front();  // basename fallback
                }
            }
            if (to != kNoFile) node.includes.push_back(to);
        }
        const auto link_use = [&](const FileId to) {
            if (to != kNoFile && to != from) node.uses.push_back(to);
        };
        for (const std::string& fn : facts[i].called_functions) {
            const auto it = function_file.find(fn);
            if (it != function_file.end()) link_use(it->second);
        }
        for (const std::string& method : facts[i].called_methods) {
            const auto it = method_files.find(method);
            if (it == method_files.end()) continue;
            for (const FileId to : it->second) link_use(to);
        }
        for (const std::string& cls : facts[i].used_classes) {
            const auto it = class_file.find(cls);
            if (it != class_file.end()) link_use(it->second);
        }
    }

    g.finish_edges();
    return g;
}

std::vector<ProjectGraph::FileId> ProjectGraph::dependency_cone(
    const std::vector<FileId>& changed) const {
    std::vector<bool> in_cone(files_.size(), false);
    std::vector<FileId> frontier;
    for (const FileId id : changed) {
        if (id < 0 || static_cast<size_t>(id) >= files_.size()) continue;
        if (in_cone[static_cast<size_t>(id)]) continue;
        in_cone[static_cast<size_t>(id)] = true;
        frontier.push_back(id);
    }
    while (!frontier.empty()) {
        const FileId id = frontier.back();
        frontier.pop_back();
        const FileNode& node = files_[static_cast<size_t>(id)];
        for (const std::vector<FileId>* reverse :
             {&node.included_by, &node.used_by}) {
            for (const FileId dependent : *reverse) {
                if (in_cone[static_cast<size_t>(dependent)]) continue;
                in_cone[static_cast<size_t>(dependent)] = true;
                frontier.push_back(dependent);
            }
        }
    }
    std::vector<FileId> cone;
    for (size_t i = 0; i < in_cone.size(); ++i)
        if (in_cone[i]) cone.push_back(static_cast<FileId>(i));
    return cone;
}

ProjectGraph::Analytics ProjectGraph::analyze(int hub_limit) const {
    Analytics a;
    const size_t n = files_.size();
    const auto name_less = [this](FileId lhs, FileId rhs) {
        return file_name(lhs) < file_name(rhs);
    };

    // Hubs: top fan-in, name tie-break.
    std::vector<Hub> ranked;
    for (size_t i = 0; i < n; ++i) {
        const int fan_in = static_cast<int>(files_[i].included_by.size());
        if (fan_in > 0) ranked.push_back({static_cast<FileId>(i), fan_in});
    }
    std::sort(ranked.begin(), ranked.end(), [&](const Hub& lhs, const Hub& rhs) {
        if (lhs.fan_in != rhs.fan_in) return lhs.fan_in > rhs.fan_in;
        return name_less(lhs.file, rhs.file);
    });
    if (hub_limit >= 0 && ranked.size() > static_cast<size_t>(hub_limit))
        ranked.resize(static_cast<size_t>(hub_limit));
    a.hubs = std::move(ranked);

    // Dead/backup files and orphans.
    for (size_t i = 0; i < n; ++i) {
        const FileNode& node = files_[i];
        if (is_dead_name(node.name)) {
            a.dead_files.push_back(static_cast<FileId>(i));
            continue;
        }
        // Top-level files and well-known entry basenames are assumed to be
        // reached by the CMS directly (WordPress loads plugin-dir/main.php
        // itself); everything else unreferenced is an orphan candidate.
        const std::string_view base = basename_of(node.name);
        const bool entry_name =
            iequals(base, "index.php") || iequals(base, "main.php");
        if (node.included_by.empty() && node.used_by.empty() &&
            node.name.find('/') != std::string_view::npos && !entry_name)
            a.orphans.push_back(static_cast<FileId>(i));
    }
    std::sort(a.dead_files.begin(), a.dead_files.end(), name_less);
    std::sort(a.orphans.begin(), a.orphans.end(), name_less);

    // Include cycles: iterative Tarjan over the include edges. SCCs of
    // size > 1 are cycles; singletons only when they self-include.
    std::vector<int> index(n, -1);
    std::vector<int> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<FileId> stack;
    struct Frame {
        FileId v;
        size_t child;
    };
    std::vector<Frame> frames;
    int next_index = 0;
    for (size_t root = 0; root < n; ++root) {
        if (index[root] != -1) continue;
        frames.push_back({static_cast<FileId>(root), 0});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(static_cast<FileId>(root));
        on_stack[root] = true;
        while (!frames.empty()) {
            Frame& frame = frames.back();
            const auto& out = files_[static_cast<size_t>(frame.v)].includes;
            if (frame.child < out.size()) {
                const FileId w = out[frame.child++];
                const size_t wi = static_cast<size_t>(w);
                if (index[wi] == -1) {
                    index[wi] = lowlink[wi] = next_index++;
                    stack.push_back(w);
                    on_stack[wi] = true;
                    frames.push_back({w, 0});
                } else if (on_stack[wi]) {
                    lowlink[static_cast<size_t>(frame.v)] =
                        std::min(lowlink[static_cast<size_t>(frame.v)], index[wi]);
                }
                continue;
            }
            const FileId v = frame.v;
            const size_t vi = static_cast<size_t>(v);
            frames.pop_back();
            if (lowlink[vi] == index[vi]) {
                std::vector<FileId> scc;
                for (;;) {
                    const FileId w = stack.back();
                    stack.pop_back();
                    on_stack[static_cast<size_t>(w)] = false;
                    scc.push_back(w);
                    if (w == v) break;
                }
                const auto& self = files_[vi].includes;
                const bool self_loop =
                    scc.size() == 1 &&
                    std::binary_search(self.begin(), self.end(), v);
                if (scc.size() > 1 || self_loop) {
                    std::sort(scc.begin(), scc.end(), name_less);
                    a.cycles.push_back(std::move(scc));
                }
            }
            if (!frames.empty())
                lowlink[static_cast<size_t>(frames.back().v)] = std::min(
                    lowlink[static_cast<size_t>(frames.back().v)], lowlink[vi]);
        }
    }
    std::sort(a.cycles.begin(), a.cycles.end(),
              [&](const std::vector<FileId>& lhs, const std::vector<FileId>& rhs) {
                  return file_name(lhs.front()) < file_name(rhs.front());
              });

    // Vendor directories: known shared-library names, plus any top-level
    // directory included from three or more other top-level directories.
    std::map<std::string_view, std::set<std::string_view>> include_sources;
    std::set<std::string_view> top_dirs;
    for (size_t i = 0; i < n; ++i) {
        const std::string_view from_dir = top_dir_of(files_[i].name);
        if (!from_dir.empty()) top_dirs.insert(from_dir);
        for (const FileId to : files_[i].includes) {
            const std::string_view to_dir =
                top_dir_of(files_[static_cast<size_t>(to)].name);
            if (!to_dir.empty() && to_dir != from_dir)
                include_sources[to_dir].insert(
                    from_dir.empty() ? std::string_view("<top>") : from_dir);
        }
    }
    std::set<std::string_view> vendors;
    for (const std::string_view dir : top_dirs) {
        for (const std::string_view known : kVendorDirNames)
            if (iequals(dir, known)) vendors.insert(dir);
        const auto sources = include_sources.find(dir);
        if (sources != include_sources.end() && sources->second.size() >= 3)
            vendors.insert(dir);
    }
    for (const std::string_view dir : vendors) a.vendor_dirs.emplace_back(dir);
    return a;
}

std::string ProjectGraph::to_json() const {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("files").begin_array();
    for (const FileNode& node : files_) {
        w.begin_object();
        w.kv("name", node.name);
        w.kv("hash", hex64(node.hash));
        w.kv("failed", node.parse_failed);
        w.end_object();
    }
    w.end_array();
    w.key("functions").begin_array();
    for (const FuncNode& fn : functions_) {
        w.begin_object();
        w.kv("name", fn.name);
        w.kv("file", fn.file);
        w.end_object();
    }
    w.end_array();
    const auto edge_array = [&](const char* key, const auto& member) {
        w.key(key).begin_array();
        for (size_t from = 0; from < files_.size(); ++from) {
            for (const FileId to : files_[from].*member) {
                w.begin_array();
                w.value(static_cast<int>(from));
                w.value(static_cast<int>(to));
                w.end_array();
            }
        }
        w.end_array();
    };
    edge_array("includes", &FileNode::includes);
    edge_array("uses", &FileNode::uses);
    w.end_object();
    return os.str();
}

bool ProjectGraph::from_json(std::string_view text, ProjectGraph& out,
                             std::string* error) {
    const auto fail = [&](const std::string& message) {
        if (error) *error = message;
        return false;
    };
    JsonValue doc;
    std::string parse_error;
    if (!JsonReader::parse(text, doc, &parse_error)) return fail(parse_error);
    if (!doc.is_object()) return fail("graph document must be an object");
    const JsonValue* files = doc.get("files");
    const JsonValue* functions = doc.get("functions");
    if (!files || !files->is_array() || !functions || !functions->is_array())
        return fail("graph needs \"files\" and \"functions\" arrays");

    ProjectGraph g;
    for (const JsonValue& file : files->array) {
        const JsonValue* name = file.get("name");
        if (!name || !name->is_string())
            return fail("file node needs a string \"name\"");
        bool hash_ok = false;
        const uint64_t hash =
            parse_hex64(file.string_or("hash", ""), hash_ok);
        if (!hash_ok) return fail("file node needs a hex \"hash\"");
        const JsonValue* failed = file.get("failed");
        FileNode node;
        node.name = g.intern(name->string);
        node.hash = hash;
        node.parse_failed = failed && failed->is_bool() && failed->boolean;
        const FileId id = static_cast<FileId>(g.files_.size());
        g.files_.push_back(std::move(node));
        g.file_index_.emplace(g.files_.back().name, id);
    }
    const int64_t file_count = static_cast<int64_t>(g.files_.size());
    for (const JsonValue& fn : functions->array) {
        const JsonValue* name = fn.get("name");
        const int64_t file = fn.int_or("file", -1);
        if (!name || !name->is_string() || file < 0 || file >= file_count)
            return fail("function node needs \"name\" and an in-range \"file\"");
        const FuncId fid = static_cast<FuncId>(g.functions_.size());
        g.functions_.push_back({g.intern(name->string),
                                static_cast<FileId>(file)});
        g.files_[static_cast<size_t>(file)].functions.push_back(fid);
    }
    const auto load_edges = [&](const char* key,
                                std::vector<FileId> FileNode::* member) {
        const JsonValue* edges = doc.get(key);
        if (!edges) return true;
        if (!edges->is_array()) return false;
        for (const JsonValue& edge : edges->array) {
            if (!edge.is_array() || edge.array.size() != 2) return false;
            const JsonValue& from = edge.array[0];
            const JsonValue& to = edge.array[1];
            if (!from.number_is_integer || !to.number_is_integer) return false;
            if (from.integer < 0 || from.integer >= file_count ||
                to.integer < 0 || to.integer >= file_count)
                return false;
            (g.files_[static_cast<size_t>(from.integer)].*member)
                .push_back(static_cast<FileId>(to.integer));
        }
        return true;
    };
    if (!load_edges("includes", &FileNode::includes))
        return fail("\"includes\" must be [from,to] id pairs in range");
    if (!load_edges("uses", &FileNode::uses))
        return fail("\"uses\" must be [from,to] id pairs in range");
    g.finish_edges();
    out = std::move(g);
    return true;
}

ProjectGraph build_project_graph(const php::Project& project) {
    std::vector<FileFacts> facts;
    facts.reserve(project.files().size());
    for (const auto& parsed : project.files())
        if (parsed) facts.push_back(extract_file_facts(*parsed));
    return ProjectGraph::build(std::move(facts));
}

std::string render_graph_analytics(const ProjectGraph& g,
                                   const ProjectGraph::Analytics& a) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.kv("files", g.file_count());
    w.kv("functions", g.function_count());
    w.kv("include_edges", g.include_edge_count());
    w.kv("use_edges", g.use_edge_count());
    w.key("hubs").begin_array();
    for (const ProjectGraph::Hub& hub : a.hubs) {
        w.begin_object();
        w.kv("file", g.file_name(hub.file));
        w.kv("fan_in", hub.fan_in);
        w.end_object();
    }
    w.end_array();
    const auto name_array = [&](const char* key,
                                const std::vector<ProjectGraph::FileId>& ids) {
        w.key(key).begin_array();
        for (const ProjectGraph::FileId id : ids) w.value(g.file_name(id));
        w.end_array();
    };
    name_array("orphans", a.orphans);
    w.key("cycles").begin_array();
    for (const std::vector<ProjectGraph::FileId>& cycle : a.cycles) {
        w.begin_array();
        for (const ProjectGraph::FileId id : cycle) w.value(g.file_name(id));
        w.end_array();
    }
    w.end_array();
    name_array("dead_files", a.dead_files);
    w.key("vendor_dirs").begin_array();
    for (const std::string& dir : a.vendor_dirs) w.value(dir);
    w.end_array();
    w.end_object();
    return os.str();
}

}  // namespace phpsafe::graph
