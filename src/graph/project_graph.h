// ProjectGraph: an explicit, queryable program graph for one scan request.
// The include/call relationships phpSAFE relies on exist implicitly — as
// resolution tables inside php::Project and as dependency records inside
// AnalysisCache::validate_deps. This subsystem materializes them once per
// scan into a dense graph artifact:
//
//   nodes  - files (every source file of the request) and functions (every
//            declared free function and method, linked to its declaring
//            file). Node names are interned into an arena; all public
//            surfaces traffic in dense integer ids (FileId / FuncId).
//   edges  - include edges (a file's include/require literals, resolved
//            with the same exact → suffix → basename rules as
//            php::Project::resolve_include) and use edges (a file calling
//            a function, using a class, or extending a parent declared in
//            another file). Both directions are stored, so reverse
//            reachability is one adjacency walk.
//
// The graph is built from per-file FileFacts — a cheap, AST-walk summary
// of what a file declares, calls and includes. Facts are independent per
// file, which is what makes the watch mode's incremental rebuild possible:
// an edit re-extracts facts for the changed files only and re-links the
// graph (linking is O(V+E) string-map work, orders of magnitude below
// re-analysis).
//
// On top of the structure sit the analytics the paper's plugin-review
// workflow wants answered before reading any finding (docs/graph.md):
// include hubs, orphan files, include cycles (iterative Tarjan SCC),
// dead/backup files and vendor directories. And the watch scheduler's core
// query: dependency_cone() — every file whose analysis could observe a
// change to the given files, i.e. the reverse closure over include and use
// edges. The cone is advisory (scheduling and reporting); the watch mode's
// byte-identity guarantee never depends on its precision (service/watch.h).
//
// Serialization round-trips through util/json_writer + util/json_reader so
// a front-end can persist or diff graphs across scans.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "php/project.h"
#include "util/arena.h"

namespace phpsafe::graph {

/// What one file declares, calls and includes — everything ProjectGraph
/// needs, detached from the AST so facts survive file-pool eviction. All
/// names are ASCII-lowercased except file names and include paths, which
/// keep their case (file resolution is case-sensitive, like the engine's).
struct FileFacts {
    std::string name;
    uint64_t content_hash = 0;
    bool parse_failed = false;
    std::vector<std::string> declared_functions;  ///< free functions
    std::vector<std::string> declared_classes;
    std::vector<std::string> declared_methods;    ///< "class::method"
    std::vector<std::string> called_functions;
    std::vector<std::string> called_methods;      ///< bare method names
    std::vector<std::string> used_classes;        ///< new/static-call/extends
    std::vector<std::string> include_paths;       ///< literal (or trailing-
                                                  ///< literal concat) paths
};

/// Extracts facts from one parsed file (one pre-order AST walk). An
/// include path built by concatenation keeps its trailing string literal —
/// the `dirname(__FILE__) . '/x.php'` idiom resolves through the same
/// suffix match the engine uses.
FileFacts extract_file_facts(const php::ParsedFile& file);

/// True when two facts would produce the same graph nodes and edges —
/// everything except the content hash. An edit that only touches comments,
/// whitespace or statement bodies keeps the structure, so a linked graph
/// stays valid and only the node hash needs refreshing (set_file_hash).
bool structure_equals(const FileFacts& a, const FileFacts& b);

class ProjectGraph {
public:
    using FileId = int32_t;
    using FuncId = int32_t;
    static constexpr FileId kNoFile = -1;

    /// Ranked include hub: a file and how many distinct files include it.
    struct Hub {
        FileId file = kNoFile;
        int fan_in = 0;
    };

    /// Whole-graph analytics, computed by analyze().
    struct Analytics {
        std::vector<Hub> hubs;                 ///< top-N include fan-in
        std::vector<FileId> orphans;           ///< see analyze() docs
        std::vector<std::vector<FileId>> cycles;  ///< include SCCs, sorted
        std::vector<FileId> dead_files;        ///< backup/leftover names
        std::vector<std::string> vendor_dirs;  ///< shared-library directories
    };

    ProjectGraph() = default;
    ProjectGraph(ProjectGraph&&) = default;
    ProjectGraph& operator=(ProjectGraph&&) = default;

    /// Links a graph from per-file facts. Name resolution mirrors
    /// php::Project: first declaration wins for functions and classes,
    /// method names link to every class declaring them (a conservative
    /// superset — the receiver class is not re-inferred here), include
    /// paths resolve exact → suffix → basename in file order.
    static ProjectGraph build(std::vector<FileFacts> facts);

    // -- nodes ---------------------------------------------------------------
    int file_count() const noexcept { return static_cast<int>(files_.size()); }
    std::string_view file_name(FileId id) const { return files_[static_cast<size_t>(id)].name; }
    uint64_t file_hash(FileId id) const { return files_[static_cast<size_t>(id)].hash; }
    bool file_parse_failed(FileId id) const { return files_[static_cast<size_t>(id)].parse_failed; }
    /// Refreshes a node's content hash in place — the structure-preserving
    /// edit fast path (see structure_equals): edges stay valid, only the
    /// recorded content moved.
    void set_file_hash(FileId id, uint64_t hash) {
        files_[static_cast<size_t>(id)].hash = hash;
    }
    /// Id of the exactly-named file, or kNoFile.
    FileId file_id(std::string_view name) const;

    int function_count() const noexcept { return static_cast<int>(functions_.size()); }
    std::string_view function_name(FuncId id) const { return functions_[static_cast<size_t>(id)].name; }
    /// The declaring-file link of a function node.
    FileId declaring_file(FuncId id) const { return functions_[static_cast<size_t>(id)].file; }
    /// Function nodes declared by `file`, in declaration order.
    const std::vector<FuncId>& functions_of(FileId file) const {
        return files_[static_cast<size_t>(file)].functions;
    }

    // -- edges (sorted, deduplicated, self-edges kept only for includes) -----
    const std::vector<FileId>& includes_of(FileId id) const { return files_[static_cast<size_t>(id)].includes; }
    const std::vector<FileId>& included_by(FileId id) const { return files_[static_cast<size_t>(id)].included_by; }
    const std::vector<FileId>& uses_of(FileId id) const { return files_[static_cast<size_t>(id)].uses; }
    const std::vector<FileId>& used_by(FileId id) const { return files_[static_cast<size_t>(id)].used_by; }
    int include_edge_count() const noexcept { return include_edges_; }
    int use_edge_count() const noexcept { return use_edges_; }

    // -- queries -------------------------------------------------------------
    /// The invalidated cone of an edit: every file that can transitively
    /// reach a changed file through include or use edges (i.e. whose
    /// analysis could observe the change), plus the changed files
    /// themselves. Result is sorted by id. Unknown ids are ignored.
    std::vector<FileId> dependency_cone(const std::vector<FileId>& changed) const;

    /// Analytics over the whole graph:
    ///   hubs      - the `hub_limit` most-included files (fan-in > 0),
    ///               ties broken by name.
    ///   orphans   - subdirectory files nothing includes and nothing uses:
    ///               candidates for deletion or for files the CMS reaches
    ///               directly. Top-level files and well-known entry
    ///               basenames (index.php, main.php) are assumed to be
    ///               entry points; dead/backup files are reported
    ///               separately.
    ///   cycles    - include-edge SCCs of size > 1 plus self-includes
    ///               (iterative Tarjan — deep include chains must not
    ///               recurse), each cycle and the list sorted by name.
    ///   dead      - backup/leftover names: *.bak, *~, *.old, *.orig and
    ///               "copy of" prefixes. Shipped backups of PHP files are
    ///               a real plugin-audit finding — servers execute them.
    ///   vendor    - top-level directories that look like shared
    ///               libraries: a known-name set (vendor/, framework/,
    ///               lib/, ...) plus any directory included from three or
    ///               more other top-level directories.
    Analytics analyze(int hub_limit = 5) const;

    // -- serialization -------------------------------------------------------
    /// Compact JSON: nodes with names/hashes, edges as [from,to] id pairs.
    std::string to_json() const;
    /// Rebuilds a graph from to_json() output. Round-trip is exact:
    /// to_json(parse(j)) == j. Returns false (with `error`) on malformed
    /// or out-of-range input.
    static bool from_json(std::string_view text, ProjectGraph& out,
                          std::string* error = nullptr);

private:
    struct FileNode {
        std::string_view name;  ///< interned in names_
        uint64_t hash = 0;
        bool parse_failed = false;
        std::vector<FuncId> functions;
        std::vector<FileId> includes;
        std::vector<FileId> included_by;
        std::vector<FileId> uses;
        std::vector<FileId> used_by;
    };
    struct FuncNode {
        std::string_view name;  ///< interned in names_
        FileId file = kNoFile;
    };

    std::string_view intern(std::string_view s);
    void finish_edges();

    Arena names_;  ///< backs every node name; nodes hold views
    std::vector<FileNode> files_;
    std::vector<FuncNode> functions_;
    std::map<std::string_view, FileId> file_index_;
    int include_edges_ = 0;
    int use_edges_ = 0;
};

/// Extracts facts for every file of a parsed project and links the graph.
ProjectGraph build_project_graph(const php::Project& project);

/// Renders analyze() output as one compact JSON object (the payload of the
/// NDJSON "graph" response; also used by bench_graph). Ids are rendered as
/// file names so the output is stable across id assignment.
std::string render_graph_analytics(const ProjectGraph& g,
                                   const ProjectGraph::Analytics& a);

}  // namespace phpsafe::graph
