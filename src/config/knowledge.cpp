#include "config/knowledge.h"

#include "util/strings.h"

namespace phpsafe {

std::string to_string(VulnKind kind) {
    switch (kind) {
        case VulnKind::kXss: return "XSS";
        case VulnKind::kSqli: return "SQLi";
    }
    return "?";
}

std::string to_string(VulnSet set) {
    std::string out;
    for (int i = 0; i < kVulnKindCount; ++i) {
        const auto kind = static_cast<VulnKind>(i);
        if (!set.contains(kind)) continue;
        if (!out.empty()) out += "+";
        out += to_string(kind);
    }
    return out.empty() ? "none" : out;
}

std::string to_string(InputVector v) {
    switch (v) {
        case InputVector::kGet: return "GET";
        case InputVector::kPost: return "POST";
        case InputVector::kCookie: return "COOKIE";
        case InputVector::kRequest: return "REQUEST";
        case InputVector::kServer: return "SERVER";
        case InputVector::kFiles: return "FILES";
        case InputVector::kDatabase: return "DB";
        case InputVector::kFile: return "File";
        case InputVector::kFunction: return "Function";
        case InputVector::kArray: return "Array";
        case InputVector::kUnknown: return "Unknown";
    }
    return "?";
}

std::string to_string(VectorGroup g) {
    switch (g) {
        case VectorGroup::kPost: return "POST";
        case VectorGroup::kGet: return "GET";
        case VectorGroup::kPostGetCookie: return "POST/GET/COOKIE";
        case VectorGroup::kDatabase: return "DB";
        case VectorGroup::kFileFunctionArray: return "File/Function/Array";
    }
    return "?";
}

VectorGroup vector_group(InputVector v) {
    switch (v) {
        case InputVector::kPost: return VectorGroup::kPost;
        case InputVector::kGet: return VectorGroup::kGet;
        case InputVector::kCookie:
        case InputVector::kRequest:
        case InputVector::kServer:
        case InputVector::kFiles:
            return VectorGroup::kPostGetCookie;
        case InputVector::kDatabase: return VectorGroup::kDatabase;
        case InputVector::kFile:
        case InputVector::kFunction:
        case InputVector::kArray:
        case InputVector::kUnknown:
            return VectorGroup::kFileFunctionArray;
    }
    return VectorGroup::kFileFunctionArray;
}

void KnowledgeBase::add_function(FunctionInfo info) {
    info.name = ascii_lower(info.name);
    functions_[info.name] = std::move(info);
}

void KnowledgeBase::add_method(std::string_view class_name, FunctionInfo info) {
    info.name = ascii_lower(info.name);
    methods_[ascii_lower(class_name) + "::" + info.name] = std::move(info);
}

void KnowledgeBase::add_any_method(FunctionInfo info) {
    info.name = ascii_lower(info.name);
    methods_["::" + info.name] = std::move(info);
}

void KnowledgeBase::add_superglobal(SuperglobalInfo info) {
    superglobals_[info.name] = std::move(info);
}

void KnowledgeBase::add_known_global_object(std::string_view var_name,
                                            std::string_view class_name) {
    known_globals_[std::string(var_name)] = ascii_lower(class_name);
}

void KnowledgeBase::remove_function(std::string_view name) {
    functions_.erase(ascii_lower(name));
}

void KnowledgeBase::remove_superglobal(std::string_view var_name) {
    const auto it = superglobals_.find(var_name);
    if (it != superglobals_.end()) superglobals_.erase(it);
}

const FunctionInfo* KnowledgeBase::function(std::string_view name) const {
    const auto it = functions_.find(name);  // transparent folded compare
    return it == functions_.end() ? nullptr : &it->second;
}

const FunctionInfo* KnowledgeBase::method(std::string_view class_name,
                                          std::string_view method_name) const {
    // Composite keys are assembled case-preserving; FoldedLess folds on
    // probe, so no per-lookup ascii_lower temporaries.
    std::string key;
    if (!class_name.empty()) {
        key.reserve(class_name.size() + 2 + method_name.size());
        key += class_name;
        key += "::";
        key += method_name;
        const auto it = methods_.find(std::string_view(key));
        if (it != methods_.end()) return &it->second;
    }
    key.clear();
    key += "::";
    key += method_name;
    const auto wildcard = methods_.find(std::string_view(key));
    return wildcard == methods_.end() ? nullptr : &wildcard->second;
}

const SuperglobalInfo* KnowledgeBase::superglobal(std::string_view var_name) const {
    const auto it = superglobals_.find(var_name);
    return it == superglobals_.end() ? nullptr : &it->second;
}

const std::string* KnowledgeBase::known_global_class(std::string_view var_name) const {
    const auto it = known_globals_.find(var_name);
    return it == known_globals_.end() ? nullptr : &it->second;
}

}  // namespace phpsafe
