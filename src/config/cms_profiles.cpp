// Additional CMS profiles — the paper's future work ("the analysis of
// other CMS applications like Drupal or Joomla... this is what it takes
// for phpSAFE to be able to analyze plugins from other CMSs", §III.A/VI).
// Each profile adds the CMS's input vectors, filtering functions and sinks
// to the knowledge base; the engine is unchanged.
#include "config/knowledge.h"

namespace phpsafe {

namespace {

FunctionInfo cms_source(std::string name, InputVector vector,
                        VulnSet taint = kBothVulns) {
    FunctionInfo f;
    f.name = std::move(name);
    f.is_source = true;
    f.source_vector = vector;
    f.source_taint = taint;
    f.ret = FunctionInfo::Return::kTainted;
    return f;
}

FunctionInfo cms_sanitizer(std::string name, VulnSet cleanses) {
    FunctionInfo f;
    f.name = std::move(name);
    f.sanitizes = cleanses;
    return f;
}

FunctionInfo cms_sink(std::string name, VulnSet kinds, std::vector<int> args = {}) {
    FunctionInfo f;
    f.name = std::move(name);
    f.sink_kinds = kinds;
    f.sink_args = std::move(args);
    return f;
}

}  // namespace

void add_drupal_profile(KnowledgeBase& kb) {
    // Database layer (Drupal 6/7 era, matching the paper's timeframe).
    {
        // db_query: SQLi sink on the query string, DB source on the result.
        FunctionInfo f = cms_sink("db_query", kSqliOnly, {0});
        f.is_source = true;
        f.source_vector = InputVector::kDatabase;
        f.ret = FunctionInfo::Return::kTainted;
        kb.add_function(f);
    }
    kb.add_function(cms_sink("db_query_range", kSqliOnly, {0}));
    kb.add_function(cms_source("db_fetch_object", InputVector::kDatabase));
    kb.add_function(cms_source("db_fetch_array", InputVector::kDatabase));
    kb.add_function(cms_source("db_result", InputVector::kDatabase));
    kb.add_function(cms_source("variable_get", InputVector::kDatabase));

    // Output filtering API.
    kb.add_function(cms_sanitizer("check_plain", kXssOnly));
    kb.add_function(cms_sanitizer("check_markup", kXssOnly));
    kb.add_function(cms_sanitizer("filter_xss", kXssOnly));
    kb.add_function(cms_sanitizer("filter_xss_admin", kXssOnly));
    kb.add_function(cms_sanitizer("check_url", kXssOnly));
    kb.add_function(cms_sanitizer("db_escape_string", kSqliOnly));

    // Output sinks.
    kb.add_function(cms_sink("drupal_set_message", kXssOnly, {0}));
    kb.add_function(cms_sink("drupal_set_title", kXssOnly, {0}));

    // Render/translation passthroughs: t() interpolates placeholders
    // verbatim only for ! placeholders; conservatively propagate.
    {
        FunctionInfo t;
        t.name = "t";
        t.ret = FunctionInfo::Return::kPropagate;
        kb.add_function(t);
    }
    {
        FunctionInfo l;
        l.name = "l";  // l($text, $path): renders a link with $text
        l.sink_kinds = VulnSet::none();
        l.ret = FunctionInfo::Return::kPropagate;
        kb.add_function(l);
    }
}

void add_joomla_profile(KnowledgeBase& kb) {
    // JRequest (Joomla 1.5/2.5): request accessors are attack entry points.
    // getVar/getString return raw request data; getInt/getUInt coerce.
    kb.add_method("jrequest", cms_source("getvar", InputVector::kRequest));
    kb.add_method("jrequest", cms_source("getstring", InputVector::kRequest));
    kb.add_method("jrequest", cms_source("getword", InputVector::kRequest));
    kb.add_method("jrequest", cms_source("getcmd", InputVector::kRequest));
    {
        FunctionInfo f;
        f.name = "getint";
        f.ret = FunctionInfo::Return::kSafe;  // integer-coerced
        kb.add_method("jrequest", f);
    }
    // JInput (Joomla 3): $app->input->get(...)
    kb.add_method("jinput", cms_source("get", InputVector::kRequest));
    kb.add_method("jinput", cms_source("getstring", InputVector::kRequest));

    // Database object: $db->setQuery($sql) is the SQLi sink; loadObjectList
    // and friends return stored data.
    kb.add_method("jdatabase", cms_sink("setquery", kSqliOnly, {0}));
    kb.add_method("jdatabasedriver", cms_sink("setquery", kSqliOnly, {0}));
    for (const char* m : {"loadobjectlist", "loadobject", "loadresult",
                          "loadassoclist", "loadrowlist"}) {
        FunctionInfo f = cms_source(m, InputVector::kDatabase);
        kb.add_method("jdatabase", f);
        kb.add_method("jdatabasedriver", f);
    }
    kb.add_method("jdatabase", cms_sanitizer("escape", kSqliOnly));
    kb.add_method("jdatabase", cms_sanitizer("quote", kSqliOnly));
    kb.add_method("jdatabasedriver", cms_sanitizer("escape", kSqliOnly));
    kb.add_method("jdatabasedriver", cms_sanitizer("quote", kSqliOnly));

    // Output filtering.
    kb.add_method("jfilteroutput", cms_sanitizer("cleantext", kXssOnly));
    kb.add_function(cms_sanitizer("htmlspecialchars_joomla_alias", kXssOnly));

    // JFactory::getDBO() returns the database object, so methods invoked on
    // the result resolve against the jdatabase configuration.
    {
        FunctionInfo f;
        f.name = "getdbo";
        f.ret = FunctionInfo::Return::kSafe;
        f.returns_class = "jdatabase";
        kb.add_method("jfactory", f);
    }
}

}  // namespace phpsafe
