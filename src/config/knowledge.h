// Vulnerability knowledge base — the paper's configuration stage (§III.A).
// Encodes, per function/method: potentially-malicious sources (and their
// input vector), sanitization functions and what vulnerability kinds they
// cleanse, revert functions that undo sanitization, and sensitive sinks.
// Profiles (generic PHP, WordPress, the 2007-era set used by the Pixy
// baseline) are built in config/profiles.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/strings.h"

namespace phpsafe {

/// Vulnerability classes the tool detects (paper scope: XSS and SQLi).
enum class VulnKind : uint8_t { kXss = 0, kSqli = 1 };
constexpr int kVulnKindCount = 2;

std::string to_string(VulnKind kind);

/// Small set of VulnKind (bitmask).
class VulnSet {
public:
    constexpr VulnSet() = default;
    constexpr explicit VulnSet(uint8_t bits) : bits_(bits) {}

    static constexpr VulnSet none() { return VulnSet(0); }
    static constexpr VulnSet all() { return VulnSet((1u << kVulnKindCount) - 1); }
    static constexpr VulnSet of(VulnKind k) {
        return VulnSet(static_cast<uint8_t>(1u << static_cast<int>(k)));
    }

    constexpr bool contains(VulnKind k) const {
        return bits_ & (1u << static_cast<int>(k));
    }
    constexpr bool empty() const { return bits_ == 0; }
    constexpr bool any() const { return bits_ != 0; }

    constexpr VulnSet operator|(VulnSet o) const { return VulnSet(bits_ | o.bits_); }
    constexpr VulnSet operator&(VulnSet o) const { return VulnSet(bits_ & o.bits_); }
    constexpr VulnSet operator-(VulnSet o) const {
        return VulnSet(static_cast<uint8_t>(bits_ & ~o.bits_));
    }
    VulnSet& operator|=(VulnSet o) {
        bits_ |= o.bits_;
        return *this;
    }
    VulnSet& operator&=(VulnSet o) {
        bits_ &= o.bits_;
        return *this;
    }
    VulnSet& operator-=(VulnSet o) {
        bits_ &= static_cast<uint8_t>(~o.bits_);
        return *this;
    }
    constexpr friend bool operator==(VulnSet a, VulnSet b) { return a.bits_ == b.bits_; }

    uint8_t bits() const { return bits_; }

private:
    uint8_t bits_ = 0;
};

constexpr VulnSet kXssOnly = VulnSet::of(VulnKind::kXss);
constexpr VulnSet kSqliOnly = VulnSet::of(VulnKind::kSqli);
constexpr VulnSet kBothVulns = VulnSet::all();

std::string to_string(VulnSet set);

/// Where malicious data enters the plugin (paper Table II taxonomy).
enum class InputVector : uint8_t {
    kGet, kPost, kCookie, kRequest, kServer, kFiles,
    kDatabase, kFile, kFunction, kArray, kUnknown,
};

std::string to_string(InputVector v);

/// Table II groups GET/POST/COOKIE-style vectors separately from DB and
/// File/Function/Array; this maps a vector to the row it belongs to.
enum class VectorGroup { kPost, kGet, kPostGetCookie, kDatabase, kFileFunctionArray };
std::string to_string(VectorGroup g);
VectorGroup vector_group(InputVector v);

/// Effects of calling one function/method, from the tool configuration.
/// A function can play several roles at once: e.g. `$wpdb->get_results`
/// is a SQLi *sink* for its query argument and a database *source* for its
/// return value.
struct FunctionInfo {
    std::string name;  ///< lowercase; for methods, without class prefix

    /// Return-value behaviour when the function is not a source/sanitizer.
    enum class Return {
        kPropagate,  ///< return carries the union of argument taint
        kSafe,       ///< return is never tainted (count, strlen, ...)
        kTainted,    ///< return is freshly tainted (a source)
    };
    Return ret = Return::kPropagate;

    // --- source role -------------------------------------------------------
    bool is_source = false;
    InputVector source_vector = InputVector::kUnknown;
    VulnSet source_taint = kBothVulns;  ///< kinds introduced by this source

    // --- sanitizer role ----------------------------------------------------
    /// Kinds removed from the (first) argument's taint in the return value.
    VulnSet sanitizes = VulnSet::none();

    // --- revert role -------------------------------------------------------
    /// Kinds whose earlier sanitization is undone (latent taint revived).
    VulnSet reverts = VulnSet::none();

    // --- sink role ---------------------------------------------------------
    VulnSet sink_kinds = VulnSet::none();
    /// Argument positions checked at the sink; empty = all arguments.
    std::vector<int> sink_args;

    /// By-reference taint flows: taint of args[first] is copied into the
    /// variable passed at args[second] (e.g. preg_match match-array).
    std::vector<std::pair<int, int>> ref_flows;

    /// When non-empty, the return value is an object of this class
    /// (lowercased) — e.g. JFactory::getDBO() returns a JDatabase.
    std::string returns_class;

    bool is_sink() const noexcept { return sink_kinds.any(); }
    bool is_sanitizer() const noexcept { return sanitizes.any(); }
    bool is_revert() const noexcept { return reverts.any(); }
};

/// A superglobal (or configured global) that is an attack entry point.
struct SuperglobalInfo {
    std::string name;  ///< with '$', e.g. "$_GET"
    InputVector vector = InputVector::kUnknown;
    VulnSet taint = kBothVulns;
};

/// The assembled tool configuration. Lookup keys are lowercase; method
/// lookups try "class::method" first, then the "::method" wildcard entry.
class KnowledgeBase {
public:
    void add_function(FunctionInfo info);
    void add_method(std::string_view class_name, FunctionInfo info);
    /// Registers a method matched by name on *any* receiver class. Used for
    /// CMS APIs whose receiver type is rarely inferable inside a plugin.
    void add_any_method(FunctionInfo info);
    void add_superglobal(SuperglobalInfo info);
    /// Declares that a well-known global variable holds an instance of a
    /// CMS class (e.g. "$wpdb" → "wpdb").
    void add_known_global_object(std::string_view var_name, std::string_view class_name);

    /// Fault-injection seams: drop one configured rule, so the fuzz-oracle
    /// tests can prove a deliberately broken tool is caught (a removed
    /// source/revert shows up as an interpreter-agreement violation).
    void remove_function(std::string_view name);
    void remove_superglobal(std::string_view var_name);

    const FunctionInfo* function(std::string_view name) const;
    /// `class_name` may be empty when the receiver type is unknown.
    const FunctionInfo* method(std::string_view class_name,
                               std::string_view method_name) const;
    const SuperglobalInfo* superglobal(std::string_view var_name) const;
    const std::string* known_global_class(std::string_view var_name) const;

    /// Language-construct sinks (`echo`, `print`, backticks) are handled by
    /// the engine directly; this exposes the construct config for tests.
    bool echo_is_sink = true;

    /// Pixy-era option: with register_globals=1 modeling, any plain variable
    /// read before assignment is treated as a potential GET source.
    bool model_register_globals = false;

    size_t function_count() const noexcept { return functions_.size(); }
    size_t method_count() const noexcept { return methods_.size(); }

private:
    /// Keys are stored lowercase; the transparent FoldedLess comparator lets
    /// hot-path lookups probe with mixed-case string_views straight from AST
    /// nodes without allocating a folded temporary.
    std::map<std::string, FunctionInfo, FoldedLess> functions_;
    std::map<std::string, FunctionInfo, FoldedLess> methods_;  ///< "class::m" or "::m"
    /// Superglobal names are case-sensitive in PHP ($_get is not $_GET);
    /// std::less<> keeps exact comparison but allows string_view probes.
    std::map<std::string, SuperglobalInfo, std::less<>> superglobals_;
    std::map<std::string, std::string, std::less<>> known_globals_;
};

/// Generic PHP profile: superglobals, PHP built-in sources/sanitizers/
/// reverts/sinks for XSS and SQLi (paper: "based on the default
/// configurations of the RIPS tool").
KnowledgeBase make_generic_php_kb();

/// Adds the WordPress profile: $wpdb methods, esc_*/sanitize_* functions,
/// option/meta accessors — the paper's out-of-the-box plugin configuration.
void add_wordpress_profile(KnowledgeBase& kb);

/// 2007-era knowledge (for the Pixy baseline): no WordPress entries, no
/// mysqli/esc_* functions, register_globals modeling enabled.
KnowledgeBase make_pixy_era_kb();

/// Drupal 6/7 profile (paper future work §VI): db_query and the
/// check_plain/filter_xss filtering API.
void add_drupal_profile(KnowledgeBase& kb);

/// Joomla 1.5–3 profile (paper future work §VI): JRequest/JInput sources,
/// JDatabase::setQuery sink, escape/quote filters.
void add_joomla_profile(KnowledgeBase& kb);

}  // namespace phpsafe
