// Profile data for the knowledge base: generic PHP (modeled on the default
// RIPS configuration, as the paper does), the WordPress plugin profile
// (class-vulnerable-input/filter/output.php in the original tool), and a
// 2007-era profile for the Pixy baseline.
#include "config/knowledge.h"

namespace phpsafe {

namespace {

FunctionInfo source(std::string name, InputVector vector,
                    VulnSet taint = kBothVulns) {
    FunctionInfo f;
    f.name = std::move(name);
    f.is_source = true;
    f.source_vector = vector;
    f.source_taint = taint;
    f.ret = FunctionInfo::Return::kTainted;
    return f;
}

FunctionInfo sanitizer(std::string name, VulnSet cleanses) {
    FunctionInfo f;
    f.name = std::move(name);
    f.sanitizes = cleanses;
    return f;
}

FunctionInfo revert(std::string name, VulnSet revived) {
    FunctionInfo f;
    f.name = std::move(name);
    f.reverts = revived;
    return f;
}

FunctionInfo sink(std::string name, VulnSet kinds, std::vector<int> args = {}) {
    FunctionInfo f;
    f.name = std::move(name);
    f.sink_kinds = kinds;
    f.sink_args = std::move(args);
    return f;
}

FunctionInfo safe(std::string name) {
    FunctionInfo f;
    f.name = std::move(name);
    f.ret = FunctionInfo::Return::kSafe;
    return f;
}

FunctionInfo propagate(std::string name) {
    FunctionInfo f;
    f.name = std::move(name);
    f.ret = FunctionInfo::Return::kPropagate;
    return f;
}

void add_superglobals(KnowledgeBase& kb) {
    kb.add_superglobal({"$_GET", InputVector::kGet, kBothVulns});
    kb.add_superglobal({"$_POST", InputVector::kPost, kBothVulns});
    kb.add_superglobal({"$_COOKIE", InputVector::kCookie, kBothVulns});
    kb.add_superglobal({"$_REQUEST", InputVector::kRequest, kBothVulns});
    kb.add_superglobal({"$_SERVER", InputVector::kServer, kBothVulns});
    kb.add_superglobal({"$_FILES", InputVector::kFiles, kBothVulns});
    kb.add_superglobal({"$HTTP_GET_VARS", InputVector::kGet, kBothVulns});
    kb.add_superglobal({"$HTTP_POST_VARS", InputVector::kPost, kBothVulns});
    kb.add_superglobal({"$HTTP_COOKIE_VARS", InputVector::kCookie, kBothVulns});
}

void add_php_sources(KnowledgeBase& kb) {
    // File-content sources (paper root-cause class 3: File/Function/Array).
    kb.add_function(source("file_get_contents", InputVector::kFile));
    kb.add_function(source("fgets", InputVector::kFile));
    kb.add_function(source("fgetc", InputVector::kFile));
    kb.add_function(source("fread", InputVector::kFile));
    kb.add_function(source("file", InputVector::kFile));
    kb.add_function(source("fscanf", InputVector::kFile));
    kb.add_function(source("readdir", InputVector::kFile));
    kb.add_function(source("glob", InputVector::kFile));
    kb.add_function(source("getenv", InputVector::kServer));
    kb.add_function(source("gzread", InputVector::kFile));
    kb.add_function(source("gzgets", InputVector::kFile));

    // Database-read sources (class 2: indirectly attacker controlled).
    kb.add_function(source("mysql_fetch_array", InputVector::kDatabase));
    kb.add_function(source("mysql_fetch_assoc", InputVector::kDatabase));
    kb.add_function(source("mysql_fetch_row", InputVector::kDatabase));
    kb.add_function(source("mysql_fetch_object", InputVector::kDatabase));
    kb.add_function(source("mysql_result", InputVector::kDatabase));
    kb.add_function(source("mysqli_fetch_array", InputVector::kDatabase));
    kb.add_function(source("mysqli_fetch_assoc", InputVector::kDatabase));
    kb.add_function(source("mysqli_fetch_row", InputVector::kDatabase));
    kb.add_function(source("mysqli_fetch_object", InputVector::kDatabase));
    kb.add_function(source("pg_fetch_array", InputVector::kDatabase));
    kb.add_function(source("pg_fetch_assoc", InputVector::kDatabase));
    kb.add_function(source("pg_fetch_row", InputVector::kDatabase));
}

void add_php_sanitizers(KnowledgeBase& kb) {
    // XSS encoders.
    kb.add_function(sanitizer("htmlentities", kXssOnly));
    kb.add_function(sanitizer("htmlspecialchars", kXssOnly));
    kb.add_function(sanitizer("strip_tags", kXssOnly));
    kb.add_function(sanitizer("urlencode", kXssOnly));
    kb.add_function(sanitizer("rawurlencode", kXssOnly));

    // SQL escapers.
    kb.add_function(sanitizer("mysql_escape_string", kSqliOnly));
    kb.add_function(sanitizer("mysql_real_escape_string", kSqliOnly));
    kb.add_function(sanitizer("mysqli_real_escape_string", kSqliOnly));
    kb.add_function(sanitizer("mysqli_escape_string", kSqliOnly));
    kb.add_function(sanitizer("pg_escape_string", kSqliOnly));
    kb.add_function(sanitizer("sqlite_escape_string", kSqliOnly));
    kb.add_function(sanitizer("addslashes", kSqliOnly));

    // Type coercions neutralize both classes.
    kb.add_function(sanitizer("intval", kBothVulns));
    kb.add_function(sanitizer("floatval", kBothVulns));
    kb.add_function(sanitizer("doubleval", kBothVulns));
    kb.add_function(sanitizer("boolval", kBothVulns));

    // Hashes/encodings whose output alphabet is harmless in both contexts.
    kb.add_function(sanitizer("md5", kBothVulns));
    kb.add_function(sanitizer("sha1", kBothVulns));
    kb.add_function(sanitizer("crc32", kBothVulns));
    kb.add_function(sanitizer("hash", kBothVulns));
    kb.add_function(sanitizer("base64_encode", kBothVulns));
    kb.add_function(sanitizer("bin2hex", kBothVulns));
    kb.add_function(sanitizer("dechex", kBothVulns));
    kb.add_function(sanitizer("decoct", kBothVulns));
    kb.add_function(sanitizer("decbin", kBothVulns));
    kb.add_function(sanitizer("number_format", kBothVulns));
    kb.add_function(sanitizer("uuencode", kBothVulns));
    kb.add_function(sanitizer("soundex", kBothVulns));
    kb.add_function(sanitizer("metaphone", kBothVulns));

    // filter_var with a validation filter; treated as sanitizing (the
    // common FILTER_VALIDATE_INT/EMAIL/URL uses).
    kb.add_function(sanitizer("filter_var", kBothVulns));
    kb.add_function(sanitizer("filter_input", kBothVulns));
    kb.add_function(sanitizer("escapeshellarg", kBothVulns));
    kb.add_function(sanitizer("escapeshellcmd", kBothVulns));
}

void add_php_reverts(KnowledgeBase& kb) {
    kb.add_function(revert("stripslashes", kSqliOnly));
    kb.add_function(revert("stripcslashes", kSqliOnly));
    kb.add_function(revert("html_entity_decode", kXssOnly));
    kb.add_function(revert("htmlspecialchars_decode", kXssOnly));
    kb.add_function(revert("urldecode", kXssOnly));
    kb.add_function(revert("rawurldecode", kXssOnly));
    kb.add_function(revert("base64_decode", kBothVulns));
}

void add_php_sinks(KnowledgeBase& kb) {
    // XSS output functions (echo/print/exit are language constructs the
    // engine handles; these are the callable ones).
    kb.add_function(sink("printf", kXssOnly));
    kb.add_function(sink("vprintf", kXssOnly));
    kb.add_function(sink("print_r", kXssOnly, {0}));
    kb.add_function(sink("var_dump", kXssOnly));
    kb.add_function(sink("trigger_error", kXssOnly, {0}));

    // SQLi query executors: the query argument is the sensitive one, and
    // the call result is database data — i.e. also a source.
    auto query_sink = [](std::string name) {
        FunctionInfo f = sink(std::move(name), kSqliOnly, {0});
        f.is_source = true;
        f.source_vector = InputVector::kDatabase;
        f.ret = FunctionInfo::Return::kTainted;
        return f;
    };
    kb.add_function(query_sink("mysql_query"));
    kb.add_function(query_sink("mysql_unbuffered_query"));
    kb.add_function(query_sink("sqlite_query"));
    // The procedural mysqli/pg APIs take the connection first; the query is
    // the second argument (pg_query also has a single-argument form).
    auto query_sink_at = [&query_sink](std::string name, std::vector<int> args) {
        FunctionInfo f = query_sink(std::move(name));
        f.sink_args = std::move(args);
        return f;
    };
    kb.add_function(query_sink_at("mysql_db_query", {1}));
    kb.add_function(query_sink_at("mysqli_query", {1}));
    kb.add_function(query_sink_at("mysqli_multi_query", {1}));
    kb.add_function(query_sink_at("mysqli_real_query", {1}));
    kb.add_function(query_sink_at("pg_query", {0, 1}));
    // mysqli OOP interface.
    FunctionInfo mq = sink("query", kSqliOnly, {0});
    mq.is_source = true;
    mq.source_vector = InputVector::kDatabase;
    mq.ret = FunctionInfo::Return::kTainted;
    kb.add_method("mysqli", mq);
    kb.add_method("mysqli", sanitizer("real_escape_string", kSqliOnly));
    {
        FunctionInfo fetch = source("fetch_assoc", InputVector::kDatabase);
        kb.add_method("mysqli_result", fetch);
    }
}

void add_php_neutral(KnowledgeBase& kb) {
    // Safe-return built-ins (no taint in the result).
    for (const char* name :
         {"count", "sizeof", "strlen", "abs", "rand", "mt_rand", "random_int",
          "time", "mktime", "strtotime", "is_array", "is_string", "is_numeric",
          "is_int", "is_null", "isset", "func_num_args", "array_key_exists",
          "in_array", "strcmp", "strcasecmp", "strpos", "stripos", "strrpos",
          "preg_match_all_count", "ord", "filemtime", "filesize", "uniqid",
          "ctype_digit", "ctype_alpha", "ctype_alnum", "checkdate", "version_compare",
          "is_float", "is_bool", "is_object", "is_callable", "is_dir", "is_file",
          "file_exists", "function_exists", "class_exists", "method_exists",
          "defined", "similar_text", "levenshtein", "array_sum", "array_product",
          "min", "max", "floor", "ceil", "round", "intdiv", "pow", "sqrt",
          "microtime", "memory_get_usage", "connection_aborted", "headers_sent",
          "substr_count", "str_word_count", "mb_strlen", "strnatcmp", "fileatime",
          "is_readable", "is_writable", "is_uploaded_file", "extension_loaded"})
        kb.add_function(safe(name));

    // Taint-preserving built-ins (explicit, though kPropagate is the default
    // for unknown functions too).
    for (const char* name :
         {"sprintf", "vsprintf", "substr", "trim", "ltrim", "rtrim", "str_replace",
          "str_ireplace", "preg_replace", "preg_quote", "implode", "join", "explode",
          "strtolower", "strtoupper", "ucfirst", "ucwords", "lcfirst", "nl2br",
          "str_repeat", "strrev", "str_pad", "wordwrap", "array_merge", "array_values",
          "array_keys", "array_slice", "array_pop", "array_shift", "array_reverse",
          "serialize", "unserialize", "json_decode", "current", "reset", "end",
          "next", "prev", "each", "array_map", "array_filter", "str_split",
          "chunk_split", "array_unique", "array_combine", "array_flip", "array_fill",
          "array_pad", "array_splice", "array_diff", "array_intersect", "compact",
          "strstr", "stristr", "strrchr", "strtr", "substr_replace", "sprintf_keep",
          "mb_substr", "mb_strtolower", "mb_strtoupper", "mb_convert_encoding",
          "iconv", "utf8_encode", "utf8_decode", "addcslashes", "quotemeta",
          "htmlspecialchars_decode_keep", "vsprintf_keep", "strip_tags_keep",
          "array_walk", "usort", "uasort", "sort", "rsort", "ksort", "asort",
          "stripslashes_deep_keep", "maybe_unserialize", "maybe_serialize"})
        kb.add_function(propagate(name));

    // json_encode escapes quotes/antislashes: safe for SQL string context,
    // still exploitable in HTML context? Encoded output cannot close a tag
    // attribute without quotes; model as XSS-sanitizing (common practice).
    kb.add_function(sanitizer("json_encode", kXssOnly));

    // preg_match copies taint of the subject (arg 1) into the by-ref match
    // array (arg 2); its own return is a safe int.
    {
        FunctionInfo f = safe("preg_match");
        f.ref_flows.push_back({1, 2});
        kb.add_function(f);
    }
    {
        FunctionInfo f = safe("preg_match_all");
        f.ref_flows.push_back({1, 2});
        kb.add_function(f);
    }
    // parse_str writes request-style data into its out-argument.
    {
        FunctionInfo f = safe("parse_str");
        f.ref_flows.push_back({0, 1});
        kb.add_function(f);
    }
}

}  // namespace

KnowledgeBase make_generic_php_kb() {
    KnowledgeBase kb;
    add_superglobals(kb);
    add_php_sources(kb);
    add_php_sanitizers(kb);
    add_php_reverts(kb);
    add_php_sinks(kb);
    add_php_neutral(kb);
    return kb;
}

void add_wordpress_profile(KnowledgeBase& kb) {
    // The $wpdb global is a wpdb instance; plugins use it for all DB access.
    kb.add_known_global_object("$wpdb", "wpdb");

    // wpdb read methods: SQLi sink on the query argument, DB source on the
    // return (the paper's mail-subscribe-list example relies on exactly
    // this: `$wpdb->get_results(...)` rows echoed without sanitization).
    // Registered both class-exact and by method name alone: the original
    // tool matches the configured method names without type inference, so
    // `$wpdb->get_results` is recognized even where the analysis lost track
    // of the receiver's class.
    for (const char* m : {"get_results", "get_var", "get_row", "get_col"}) {
        FunctionInfo f = sink(m, kSqliOnly, {0});
        f.is_source = true;
        f.source_vector = InputVector::kDatabase;
        f.ret = FunctionInfo::Return::kTainted;
        kb.add_method("wpdb", f);
        kb.add_any_method(f);
    }
    kb.add_method("wpdb", sink("query", kSqliOnly, {0}));
    kb.add_method("wpdb", sanitizer("prepare", kSqliOnly));
    kb.add_any_method(sanitizer("prepare", kSqliOnly));
    kb.add_method("wpdb", sanitizer("_real_escape", kSqliOnly));
    kb.add_method("wpdb", sanitizer("esc_like", kSqliOnly));
    // insert/update/delete build parameterized queries internally.
    kb.add_method("wpdb", safe("insert"));
    kb.add_method("wpdb", safe("update"));
    kb.add_method("wpdb", safe("delete"));

    // Option/meta accessors read the database.
    for (const char* name :
         {"get_option", "get_site_option", "get_post_meta", "get_user_meta",
          "get_comment_meta", "get_term_meta", "get_transient", "get_post_field",
          "get_query_var", "get_search_query", "wp_get_referer"})
        kb.add_function(source(name, InputVector::kDatabase));

    // Escaping / sanitization API.
    for (const char* name : {"esc_html", "esc_attr", "esc_js", "esc_textarea",
                             "esc_url", "esc_url_raw", "tag_escape", "wp_kses",
                             "wp_kses_post", "wp_kses_data"})
        kb.add_function(sanitizer(name, kXssOnly));
    for (const char* name :
         {"sanitize_text_field", "sanitize_title", "sanitize_email", "sanitize_key",
          "sanitize_file_name", "sanitize_html_class", "sanitize_user", "sanitize_mime_type"})
        kb.add_function(sanitizer(name, kBothVulns));
    kb.add_function(sanitizer("absint", kBothVulns));
    kb.add_function(sanitizer("esc_sql", kSqliOnly));
    kb.add_function(sanitizer("like_escape", kSqliOnly));

    // wp_unslash/wp_slash are stripslashes/addslashes wrappers.
    kb.add_function(revert("wp_unslash", kSqliOnly));
    kb.add_function(sanitizer("wp_slash", kSqliOnly));

    // Output helpers that print their argument.
    kb.add_function(sink("_e", kXssOnly, {0}));
    kb.add_function(sink("esc_html_e", VulnSet::none()));  // escapes, then echoes
    kb.add_function(sink("wp_die", kXssOnly, {0}));
    // Translation passthroughs.
    kb.add_function(propagate("__"));
    kb.add_function(propagate("_x"));
    kb.add_function(propagate("apply_filters"));
    kb.add_function(propagate("do_shortcode"));

    // Misc WP getters considered attacker-influenced (stored data).
    kb.add_function(source("get_bloginfo", InputVector::kDatabase, kXssOnly));
    kb.add_function(source("get_the_title", InputVector::kDatabase, kXssOnly));
    kb.add_function(source("get_comment_text", InputVector::kDatabase));
}

KnowledgeBase make_pixy_era_kb() {
    KnowledgeBase kb;
    add_superglobals(kb);

    // 2007-era sources: files only; mysqli did not exist in Pixy's tables.
    kb.add_function(source("file_get_contents", InputVector::kFile));
    kb.add_function(source("fgets", InputVector::kFile));
    kb.add_function(source("fread", InputVector::kFile));
    kb.add_function(source("file", InputVector::kFile));
    kb.add_function(source("mysql_fetch_array", InputVector::kDatabase));
    kb.add_function(source("mysql_fetch_assoc", InputVector::kDatabase));
    kb.add_function(source("mysql_fetch_row", InputVector::kDatabase));
    kb.add_function(source("mysql_result", InputVector::kDatabase));

    kb.add_function(sanitizer("htmlentities", kXssOnly));
    kb.add_function(sanitizer("htmlspecialchars", kXssOnly));
    kb.add_function(sanitizer("mysql_escape_string", kSqliOnly));
    kb.add_function(sanitizer("mysql_real_escape_string", kSqliOnly));
    kb.add_function(sanitizer("addslashes", kSqliOnly));
    kb.add_function(sanitizer("intval", kBothVulns));

    kb.add_function(revert("stripslashes", kSqliOnly));
    kb.add_function(revert("html_entity_decode", kXssOnly));

    kb.add_function(sink("printf", kXssOnly));
    kb.add_function(sink("print_r", kXssOnly, {0}));
    {
        FunctionInfo f = sink("mysql_query", kSqliOnly, {0});
        f.is_source = true;
        f.source_vector = InputVector::kDatabase;
        f.ret = FunctionInfo::Return::kTainted;
        kb.add_function(f);
    }
    kb.add_function(safe("count"));
    kb.add_function(safe("strlen"));

    kb.model_register_globals = true;
    return kb;
}

}  // namespace phpsafe
