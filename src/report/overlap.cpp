#include "report/overlap.h"

#include <sstream>

namespace phpsafe {

int VennRegions::total(const std::string& tool) const {
    if (tool == tool_a) return only_a + ab + ac + abc;
    if (tool == tool_b) return only_b + ab + bc + abc;
    if (tool == tool_c) return only_c + ac + bc + abc;
    return 0;
}

VennRegions compute_overlap(
    const std::map<std::string, std::set<std::string>>& detected) {
    VennRegions regions;
    std::vector<std::string> tools;
    for (const auto& [tool, ids] : detected) tools.push_back(tool);
    while (tools.size() < 3) tools.push_back("(none)");
    regions.tool_a = tools[0];
    regions.tool_b = tools[1];
    regions.tool_c = tools[2];

    auto set_of = [&](const std::string& tool) -> const std::set<std::string>& {
        static const std::set<std::string> empty;
        const auto it = detected.find(tool);
        return it == detected.end() ? empty : it->second;
    };
    const std::set<std::string>& a = set_of(regions.tool_a);
    const std::set<std::string>& b = set_of(regions.tool_b);
    const std::set<std::string>& c = set_of(regions.tool_c);

    std::set<std::string> all;
    all.insert(a.begin(), a.end());
    all.insert(b.begin(), b.end());
    all.insert(c.begin(), c.end());
    regions.union_size = static_cast<int>(all.size());

    for (const std::string& id : all) {
        const bool in_a = a.count(id) > 0;
        const bool in_b = b.count(id) > 0;
        const bool in_c = c.count(id) > 0;
        if (in_a && in_b && in_c) ++regions.abc;
        else if (in_a && in_b) ++regions.ab;
        else if (in_a && in_c) ++regions.ac;
        else if (in_b && in_c) ++regions.bc;
        else if (in_a) ++regions.only_a;
        else if (in_b) ++regions.only_b;
        else ++regions.only_c;
    }
    return regions;
}

std::string render_overlap(const VennRegions& r) {
    std::ostringstream os;
    os << "Distinct vulnerabilities detected (union): " << r.union_size << "\n";
    os << "  " << r.tool_a << " total: " << r.total(r.tool_a) << "\n";
    os << "  " << r.tool_b << " total: " << r.total(r.tool_b) << "\n";
    os << "  " << r.tool_c << " total: " << r.total(r.tool_c) << "\n";
    os << "Venn regions:\n";
    os << "  only " << r.tool_a << ": " << r.only_a << "\n";
    os << "  only " << r.tool_b << ": " << r.only_b << "\n";
    os << "  only " << r.tool_c << ": " << r.only_c << "\n";
    os << "  " << r.tool_a << "+" << r.tool_b << ": " << r.ab << "\n";
    os << "  " << r.tool_a << "+" << r.tool_c << ": " << r.ac << "\n";
    os << "  " << r.tool_b << "+" << r.tool_c << ": " << r.bc << "\n";
    os << "  all three: " << r.abc << "\n";
    return os.str();
}

}  // namespace phpsafe
