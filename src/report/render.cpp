#include "report/render.h"

#include <algorithm>
#include <sstream>

namespace phpsafe {

void TextTable::add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
    if (rows_.empty()) return {};
    size_t columns = 0;
    for (const auto& row : rows_) columns = std::max(columns, row.size());
    std::vector<size_t> widths(columns, 0);
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    for (size_t r = 0; r < rows_.size(); ++r) {
        os << "|";
        for (size_t c = 0; c < columns; ++c) {
            const std::string& cell = c < rows_[r].size() ? rows_[r][c] : std::string();
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        os << '\n';
        if (r == 0) {
            os << "|";
            for (size_t c = 0; c < columns; ++c)
                os << std::string(widths[c] + 2, '-') << "|";
            os << '\n';
        }
    }
    return os.str();
}

}  // namespace phpsafe
