// Detection-overlap analysis (paper Fig. 2: Venn diagram of the distinct
// vulnerabilities each tool detects). Computes the seven Venn regions for
// three tools plus totals.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace phpsafe {

struct VennRegions {
    // Region counts keyed by which tools detect (a=tool1, b=tool2, c=tool3).
    int only_a = 0, only_b = 0, only_c = 0;
    int ab = 0, ac = 0, bc = 0;   ///< exactly two tools
    int abc = 0;                  ///< all three
    int union_size = 0;
    std::string tool_a, tool_b, tool_c;

    int total(const std::string& tool) const;
};

/// `detected` maps tool name → set of detected vulnerability ids. Exactly
/// three tools are expected (the paper's comparison set).
VennRegions compute_overlap(
    const std::map<std::string, std::set<std::string>>& detected);

/// Renders an ASCII summary of the regions (stand-in for the paper's
/// proportional-circle diagram).
std::string render_overlap(const VennRegions& regions);

}  // namespace phpsafe
