// Root-cause / malicious-input-vector analysis (paper §V.C, Table II):
// classifies each confirmed vulnerability by the entry point of the
// malicious data, following the reverse taint path — here the generator's
// ground-truth vector — and groups vectors into the paper's five rows.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "config/knowledge.h"
#include "corpus/generator.h"

namespace phpsafe {

struct VectorTable {
    std::map<VectorGroup, int> v2012;
    std::map<VectorGroup, int> v2014;
    std::map<VectorGroup, int> both;  ///< present (and detected) in both versions
};

/// Counts the confirmed vulnerabilities per input-vector group. "Confirmed"
/// means detected by at least one tool (ids in `detected_*`), mirroring the
/// paper's union-of-tools + manual-verification set.
VectorTable classify_vectors(const std::vector<corpus::SeededVuln>& truth_2012,
                             const std::vector<corpus::SeededVuln>& truth_2014,
                             const std::set<std::string>& detected_2012,
                             const std::set<std::string>& detected_2014);

}  // namespace phpsafe
