#include "report/evaluation.h"

#include <atomic>
#include <ctime>
#include <future>
#include <vector>

#include "report/matching.h"
#include "report/metrics.h"

namespace phpsafe {

std::set<std::string> Evaluation::union_detected(const std::string& version) const {
    std::set<std::string> all;
    const auto it = stats.find(version);
    if (it == stats.end()) return all;
    for (const auto& [tool, s] : it->second)
        all.insert(s.detected_ids.begin(), s.detected_ids.end());
    return all;
}

std::map<std::string, int> Evaluation::paper_false_negatives(
    const std::string& version, VulnKind kind) const {
    std::map<std::string, std::set<std::string>> detected;
    const auto it = stats.find(version);
    if (it == stats.end()) return {};
    for (const auto& [tool, s] : it->second)
        detected[tool] =
            kind == VulnKind::kXss ? s.detected_ids_xss : s.detected_ids_sqli;
    return paper_style_false_negatives(detected);
}

std::map<std::string, int> Evaluation::paper_false_negatives(
    const std::string& version) const {
    std::map<std::string, std::set<std::string>> detected;
    const auto it = stats.find(version);
    if (it == stats.end()) return {};
    for (const auto& [tool, s] : it->second) detected[tool] = s.detected_ids;
    return paper_style_false_negatives(detected);
}

std::vector<Tool> paper_tool_set() {
    return {make_phpsafe_tool(), make_rips_like_tool(), make_pixy_like_tool()};
}

Evaluation run_corpus_evaluation(const std::vector<Tool>& tools,
                                 const EvaluationOptions& options) {
    Evaluation evaluation;
    corpus::CorpusOptions corpus_options;
    corpus_options.scale = options.corpus_scale;
    if (options.corpus_scale < 1.0) {
        corpus_options.filler_lines_2012 = static_cast<int>(
            corpus_options.filler_lines_2012 * options.corpus_scale);
        corpus_options.filler_lines_2014 = static_cast<int>(
            corpus_options.filler_lines_2014 * options.corpus_scale);
    }
    evaluation.corpus = corpus::generate_corpus(corpus_options);
    for (const Tool& tool : tools) evaluation.tool_names.push_back(tool.name);

    const int reps = std::max(1, options.timing_repetitions);
    const int workers = std::max(1, options.parallelism);

    // Per-plugin work unit: parse + analyze + match. Everything the worker
    // touches is its own; merging happens in plugin order afterwards, so
    // parallelism never changes the statistics.
    struct PluginOutcome {
        int tp = 0, fp = 0, tp_xss = 0, fp_xss = 0, tp_sqli = 0, fp_sqli = 0;
        int tp_oop = 0, files_failed = 0, error_messages = 0;
        double cpu_seconds = 0;
        std::vector<std::string> ids, ids_xss, ids_sqli;
    };
    auto analyze_plugin = [reps](const Tool& tool,
                                 const corpus::GeneratedPlugin& plugin,
                                 const corpus::PluginVersionSource& src) {
        PluginOutcome outcome;
        // Table III scope: parse (model construction) + analysis.
        const std::clock_t parse_start = std::clock();
        DiagnosticSink sink;
        const php::Project project = corpus::build_project(plugin, src, sink);
        const double parse_seconds =
            static_cast<double>(std::clock() - parse_start) / CLOCKS_PER_SEC;
        AnalysisResult result = run_tool(tool, project);
        for (int rep = 1; rep < reps; ++rep)
            result.cpu_seconds += run_tool(tool, project).cpu_seconds;
        outcome.cpu_seconds = result.cpu_seconds / reps + parse_seconds;

        const MatchResult match = match_findings(result.findings, src.truth);
        const MatchResult xss =
            match_findings(result.findings, src.truth, VulnKind::kXss);
        const MatchResult sqli =
            match_findings(result.findings, src.truth, VulnKind::kSqli);
        outcome.tp = match.tp();
        outcome.fp = match.fp();
        outcome.tp_xss = xss.tp();
        outcome.fp_xss = xss.fp();
        outcome.tp_sqli = sqli.tp();
        outcome.fp_sqli = sqli.fp();
        for (const Finding* f : match.true_positives)
            if (f->via_oop) ++outcome.tp_oop;
        outcome.files_failed = result.files_failed;
        outcome.error_messages = result.error_messages;
        for (const std::string& id : match.detected_ids) {
            outcome.ids.push_back(id);
            if (xss.detected_ids.count(id)) outcome.ids_xss.push_back(id);
            if (sqli.detected_ids.count(id)) outcome.ids_sqli.push_back(id);
        }
        return outcome;
    };

    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        evaluation.truth[version] = evaluation.corpus.all_truth(version);
        for (const Tool& tool : tools) {
            EvaluationStats& stats = evaluation.stats[version][tool.name];
            const auto& plugins = evaluation.corpus.plugins;
            std::vector<PluginOutcome> outcomes(plugins.size());
            if (workers <= 1) {
                for (size_t i = 0; i < plugins.size(); ++i)
                    outcomes[i] = analyze_plugin(
                        tool, plugins[i],
                        version == "2012" ? plugins[i].v2012 : plugins[i].v2014);
            } else {
                std::vector<std::future<void>> futures;
                std::atomic<size_t> next{0};
                for (int w = 0; w < workers; ++w) {
                    futures.push_back(std::async(std::launch::async, [&] {
                        for (size_t i = next.fetch_add(1); i < plugins.size();
                             i = next.fetch_add(1)) {
                            outcomes[i] = analyze_plugin(
                                tool, plugins[i],
                                version == "2012" ? plugins[i].v2012
                                                  : plugins[i].v2014);
                        }
                    }));
                }
                for (std::future<void>& f : futures) f.get();
            }
            for (const PluginOutcome& outcome : outcomes) {
                stats.tp += outcome.tp;
                stats.fp += outcome.fp;
                stats.tp_xss += outcome.tp_xss;
                stats.fp_xss += outcome.fp_xss;
                stats.tp_sqli += outcome.tp_sqli;
                stats.fp_sqli += outcome.fp_sqli;
                stats.tp_oop += outcome.tp_oop;
                stats.files_failed += outcome.files_failed;
                stats.error_messages += outcome.error_messages;
                stats.cpu_seconds += outcome.cpu_seconds;
                stats.detected_ids.insert(outcome.ids.begin(), outcome.ids.end());
                stats.detected_ids_xss.insert(outcome.ids_xss.begin(),
                                              outcome.ids_xss.end());
                stats.detected_ids_sqli.insert(outcome.ids_sqli.begin(),
                                               outcome.ids_sqli.end());
            }
        }
    }
    return evaluation;
}

}  // namespace phpsafe
