#include "report/evaluation.h"

#include <algorithm>
#include <vector>

#include "report/matching.h"
#include "report/metrics.h"
#include "util/timing.h"
#include "util/worker_pool.h"

namespace phpsafe {

std::set<std::string> Evaluation::union_detected(const std::string& version) const {
    std::set<std::string> all;
    const auto it = stats.find(version);
    if (it == stats.end()) return all;
    for (const auto& [tool, s] : it->second)
        all.insert(s.detected_ids.begin(), s.detected_ids.end());
    return all;
}

std::map<std::string, int> Evaluation::paper_false_negatives(
    const std::string& version, VulnKind kind) const {
    std::map<std::string, std::set<std::string>> detected;
    const auto it = stats.find(version);
    if (it == stats.end()) return {};
    for (const auto& [tool, s] : it->second)
        detected[tool] =
            kind == VulnKind::kXss ? s.detected_ids_xss : s.detected_ids_sqli;
    return paper_style_false_negatives(detected);
}

std::map<std::string, int> Evaluation::paper_false_negatives(
    const std::string& version) const {
    std::map<std::string, std::set<std::string>> detected;
    const auto it = stats.find(version);
    if (it == stats.end()) return {};
    for (const auto& [tool, s] : it->second) detected[tool] = s.detected_ids;
    return paper_style_false_negatives(detected);
}

std::vector<Tool> paper_tool_set() {
    return {make_phpsafe_tool(), make_rips_like_tool(), make_pixy_like_tool()};
}

Evaluation run_corpus_evaluation(const std::vector<Tool>& tools,
                                 const EvaluationOptions& options) {
    Evaluation evaluation;
    corpus::CorpusOptions corpus_options;
    corpus_options.scale = options.corpus_scale;
    if (options.corpus_scale < 1.0) {
        corpus_options.filler_lines_2012 = static_cast<int>(
            corpus_options.filler_lines_2012 * options.corpus_scale);
        corpus_options.filler_lines_2014 = static_cast<int>(
            corpus_options.filler_lines_2014 * options.corpus_scale);
    }
    evaluation.corpus = corpus::generate_corpus(corpus_options);
    for (const Tool& tool : tools) evaluation.tool_names.push_back(tool.name);

    const int reps = std::max(1, options.timing_repetitions);
    const int workers = WorkerPool::resolve_parallelism(options.parallelism);

    // Parse-once, analyze-many: the unit of parallel work is a
    // (plugin, version). The worker builds the php::Project exactly once and
    // runs every tool (and every timing repetition) against it const& —
    // Engine::analyze resets all per-run state, so sharing is safe. The seed
    // pipeline re-parsed each plugin once per tool per repetition (6×
    // redundant model construction for the paper's 3-tool × 2-version
    // matrix).
    struct ToolOutcome {
        int tp = 0, fp = 0, tp_xss = 0, fp_xss = 0, tp_sqli = 0, fp_sqli = 0;
        int tp_oop = 0, files_failed = 0, error_messages = 0;
        StageBreakdown stages;
        obs::Counters counters;
        std::vector<std::string> ids, ids_xss, ids_sqli;
    };
    struct PluginVersionUnit {
        const corpus::GeneratedPlugin* plugin = nullptr;
        const corpus::PluginVersionSource* src = nullptr;
        size_t version_index = 0;
    };

    const std::vector<std::string> versions = {"2012", "2014"};
    const auto& plugins = evaluation.corpus.plugins;
    std::vector<PluginVersionUnit> units;
    units.reserve(versions.size() * plugins.size());
    for (size_t vi = 0; vi < versions.size(); ++vi)
        for (const corpus::GeneratedPlugin& plugin : plugins)
            units.push_back({&plugin,
                             vi == 0 ? &plugin.v2012 : &plugin.v2014, vi});

    // outcomes[unit][tool]; each worker writes only its own unit's row, and
    // the merge below walks a fixed (version, tool, plugin) order, so any
    // parallelism yields identical statistics.
    std::vector<std::vector<ToolOutcome>> outcomes(
        units.size(), std::vector<ToolOutcome>(tools.size()));

    WorkerPool pool(workers);
    pool.run(units.size(), [&](size_t u) {
        const PluginVersionUnit& unit = units[u];
        const std::string& version = versions[unit.version_index];
        // Table III scope: parse (model construction) + analysis, measured
        // on this thread's CPU clock only. The counter delta is per-thread
        // too, so it captures exactly this unit's model construction.
        obs::Tracer::Span model_span;
        if (options.tracer)
            model_span = options.tracer->span(
                "model", {{"plugin", unit.plugin->name}, {"version", version}});
        const obs::CounterDelta model_delta;
        const double parse_start = thread_cpu_seconds();
        DiagnosticSink sink;
        const php::Project project =
            corpus::build_project(*unit.plugin, *unit.src, sink);
        const double build_seconds = thread_cpu_seconds() - parse_start;
        const obs::Counters model_counters = model_delta.take();
        model_span.end();

        // Stage split of model construction: lexing is measured inside the
        // parser; the remainder (parse proper, indexing, source assembly)
        // counts as parse.
        StageBreakdown model_stages;
        model_stages.lex = project.build_stats().lex_cpu_seconds;
        model_stages.parse = build_seconds - model_stages.lex;

        for (size_t t = 0; t < tools.size(); ++t) {
            obs::Tracer::Span tool_span;
            if (options.tracer)
                tool_span = options.tracer->span("analyze",
                                                {{"plugin", unit.plugin->name},
                                                 {"version", version},
                                                 {"tool", tools[t].name}});
            AnalysisResult result = run_tool(tools[t], project);
            for (int rep = 1; rep < reps; ++rep) {
                const AnalysisResult repeat = run_tool(tools[t], project);
                result.cpu_seconds += repeat.cpu_seconds;
                result.include_cpu_seconds += repeat.include_cpu_seconds;
                result.lower_cpu_seconds += repeat.lower_cpu_seconds;
            }
            if (tool_span.active()) {
                tool_span.note("findings", std::to_string(result.findings.size()));
                tool_span.end();
            }

            ToolOutcome& outcome = outcomes[u][t];
            outcome.stages = model_stages;
            outcome.stages.include = result.include_cpu_seconds / reps;
            outcome.stages.analyze =
                result.cpu_seconds / reps - outcome.stages.include;
            outcome.stages.lower = result.lower_cpu_seconds / reps;
            // Counters from the first repetition only (repetitions re-run
            // identical work; summing them would make the totals depend on
            // the timing configuration), plus the shared model counters —
            // credited to every tool, like model CPU time.
            outcome.counters = model_counters;
            outcome.counters += result.counters;

            const MatchResult match = match_findings(result.findings, unit.src->truth);
            const MatchResult xss =
                match_findings(result.findings, unit.src->truth, VulnKind::kXss);
            const MatchResult sqli =
                match_findings(result.findings, unit.src->truth, VulnKind::kSqli);
            outcome.tp = match.tp();
            outcome.fp = match.fp();
            outcome.tp_xss = xss.tp();
            outcome.fp_xss = xss.fp();
            outcome.tp_sqli = sqli.tp();
            outcome.fp_sqli = sqli.fp();
            for (const Finding* f : match.true_positives)
                if (f->via_oop) ++outcome.tp_oop;
            outcome.files_failed = result.files_failed;
            outcome.error_messages = result.error_messages;
            for (const std::string& id : match.detected_ids) {
                outcome.ids.push_back(id);
                if (xss.detected_ids.count(id)) outcome.ids_xss.push_back(id);
                if (sqli.detected_ids.count(id)) outcome.ids_sqli.push_back(id);
            }
        }
    });

    for (size_t vi = 0; vi < versions.size(); ++vi) {
        const std::string& version = versions[vi];
        evaluation.truth[version] = evaluation.corpus.all_truth(version);
        for (size_t t = 0; t < tools.size(); ++t) {
            EvaluationStats& stats = evaluation.stats[version][tools[t].name];
            for (size_t u = 0; u < units.size(); ++u) {
                if (units[u].version_index != vi) continue;
                const ToolOutcome& outcome = outcomes[u][t];
                stats.tp += outcome.tp;
                stats.fp += outcome.fp;
                stats.tp_xss += outcome.tp_xss;
                stats.fp_xss += outcome.fp_xss;
                stats.tp_sqli += outcome.tp_sqli;
                stats.fp_sqli += outcome.fp_sqli;
                stats.tp_oop += outcome.tp_oop;
                stats.files_failed += outcome.files_failed;
                stats.error_messages += outcome.error_messages;
                stats.stages += outcome.stages;
                stats.counters += outcome.counters;
                stats.detected_ids.insert(outcome.ids.begin(), outcome.ids.end());
                stats.detected_ids_xss.insert(outcome.ids_xss.begin(),
                                              outcome.ids_xss.end());
                stats.detected_ids_sqli.insert(outcome.ids_sqli.begin(),
                                               outcome.ids_sqli.end());
            }
        }
    }
    return evaluation;
}

}  // namespace phpsafe
