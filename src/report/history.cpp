#include "report/history.h"

#include <cctype>
#include <map>

namespace phpsafe {

std::string to_string(FindingFate fate) {
    switch (fate) {
        case FindingFate::kPersisted: return "persisted";
        case FindingFate::kFixed: return "fixed";
        case FindingFate::kIntroduced: return "introduced";
    }
    return "?";
}

int HistoryReport::count(FindingFate fate) const noexcept {
    int n = 0;
    for (const HistoryEntry& e : entries)
        if (e.fate == fate) ++n;
    return n;
}

double HistoryReport::persisted_fraction_of_new() const noexcept {
    const int new_total = persisted() + introduced();
    return new_total == 0 ? 0.0 : static_cast<double>(persisted()) / new_total;
}

std::string history_key(const Finding& finding) {
    // Strip digit runs from the expression so version-specific suffixes and
    // shifting literals do not break the match.
    std::string normalized;
    normalized.reserve(finding.variable.size());
    bool last_was_digit = false;
    for (char c : finding.variable) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            if (!last_was_digit) normalized += '#';
            last_was_digit = true;
        } else {
            normalized += c;
            last_was_digit = false;
        }
    }
    return to_string(finding.kind) + "|" + finding.location.file + "|" +
           finding.sink + "|" + normalized;
}

HistoryReport diff_versions(const AnalysisResult& old_result,
                            const AnalysisResult& new_result) {
    HistoryReport report;

    // Multimap-ish matching: each old finding can satisfy one new finding.
    std::map<std::string, std::vector<const Finding*>> old_by_key;
    for (const Finding& f : old_result.findings)
        old_by_key[history_key(f)].push_back(&f);

    for (const Finding& f : new_result.findings) {
        auto it = old_by_key.find(history_key(f));
        if (it != old_by_key.end() && !it->second.empty()) {
            HistoryEntry entry;
            entry.fate = FindingFate::kPersisted;
            entry.old_finding = it->second.back();
            entry.new_finding = &f;
            it->second.pop_back();
            report.entries.push_back(entry);
        } else {
            HistoryEntry entry;
            entry.fate = FindingFate::kIntroduced;
            entry.new_finding = &f;
            report.entries.push_back(entry);
        }
    }
    for (const auto& [key, remaining] : old_by_key) {
        for (const Finding* f : remaining) {
            HistoryEntry entry;
            entry.fate = FindingFate::kFixed;
            entry.old_finding = f;
            report.entries.push_back(entry);
        }
    }
    return report;
}

}  // namespace phpsafe
