// Historic tracking of findings across plugin versions — the paper's
// future work ("we also intend to study the evolution of plugin security
// and plugin updates over time by enabling historic data in phpSAFE",
// §VI). Matches findings between two analysis runs WITHOUT ground truth:
// a finding persists if a finding of the same kind, same sink name and
// same normalized vulnerable expression exists in the other version (line
// numbers shift between releases, so they are not part of the key).
#pragma once

#include <string>
#include <vector>

#include "core/finding.h"

namespace phpsafe {

/// One finding's fate between two versions.
enum class FindingFate {
    kPersisted,  ///< present in both versions
    kFixed,      ///< in the old version only
    kIntroduced, ///< in the new version only
};

std::string to_string(FindingFate fate);

struct HistoryEntry {
    FindingFate fate = FindingFate::kPersisted;
    const Finding* old_finding = nullptr;  ///< null when kIntroduced
    const Finding* new_finding = nullptr;  ///< null when kFixed
};

struct HistoryReport {
    std::vector<HistoryEntry> entries;

    int persisted() const noexcept { return count(FindingFate::kPersisted); }
    int fixed() const noexcept { return count(FindingFate::kFixed); }
    int introduced() const noexcept { return count(FindingFate::kIntroduced); }

    /// Share of the new version's findings that were already reported for
    /// the old version (the §V.D inertia figure, computed from reports).
    double persisted_fraction_of_new() const noexcept;

private:
    int count(FindingFate fate) const noexcept;
};

/// Normalized identity of a finding for cross-version matching: kind, file,
/// sink and the vulnerable expression with generated numeric suffixes
/// stripped (so `$msg_3` and `$msg_7` compare equal).
std::string history_key(const Finding& finding);

/// Diffs two runs of (ideally) the same tool on two versions of a plugin.
HistoryReport diff_versions(const AnalysisResult& old_result,
                            const AnalysisResult& new_result);

}  // namespace phpsafe
