#include "report/inertia.h"

namespace phpsafe {

InertiaReport analyze_inertia(const std::vector<corpus::SeededVuln>& truth_2014,
                              const std::set<std::string>& detected_2014) {
    InertiaReport report;
    for (const corpus::SeededVuln& vuln : truth_2014) {
        if (!detected_2014.count(vuln.id)) continue;
        ++report.total_2014;
        if (!vuln.carried_over) continue;
        ++report.carried_from_2012;
        if (vuln.easy_exploit) ++report.carried_easy_exploit;
    }
    return report;
}

}  // namespace phpsafe
