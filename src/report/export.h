// Result exporters — the reproduction of phpSAFE's results-processing
// outputs (§III.D): the original presents findings in a web page that
// helps reviewing (vulnerable variables, entry point, variable-to-variable
// flow); it is also "tuned to produce and store the results in other
// formats". Here: a self-contained HTML report and a line-oriented JSON
// export for CI pipelines.
#pragma once

#include <string>
#include <vector>

#include "core/finding.h"
#include "util/json_writer.h"  // json_escape + the writer the exporter uses

namespace phpsafe {

/// Renders a self-contained HTML review page for one analysis run:
/// summary header, then one card per finding with its data-flow trace.
std::string render_html_report(const AnalysisResult& result);

/// Serializes findings as JSON (one object per finding, stable field
/// order, all strings escaped). Shape:
/// {"tool":...,"plugin":...,"findings":[{"kind":...,"file":...,...}]}
std::string render_json_report(const AnalysisResult& result);

/// Writes one finding object (the element shape of render_json_report's
/// "findings" array) into an open writer. Shared with the NDJSON watch
/// protocol, whose delta responses carry individual findings.
void render_finding_json(JsonWriter& w, const Finding& finding);

/// The same object as one compact string — the canonical serialized
/// identity of a finding, used as the diff key for watch-mode deltas
/// (service/watch.h): two findings are "the same" exactly when their
/// canonical serializations are byte-identical.
std::string finding_json(const Finding& finding);

/// Escapes text for embedding in HTML (used by the report renderer and
/// exposed for tests — ironically, the tool must not have XSS itself).
std::string html_escape(std::string_view text);

// json_escape lives in util/json_writer.h (shared with the bench JSON and
// obs trace exporters) and is re-exported through this header.

}  // namespace phpsafe
