// Report↔ground-truth matching — the automated equivalent of the paper's
// manual verification step (§IV.B.5: every tool report was checked by a
// security expert; here the generator's seeded metadata is the oracle).
// A finding matches a seeded vulnerability when file, sink line and
// vulnerability kind agree.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/finding.h"
#include "corpus/generator.h"

namespace phpsafe {

struct MatchResult {
    std::vector<const Finding*> true_positives;
    std::vector<const Finding*> false_positives;
    std::set<std::string> detected_ids;  ///< seeded-vuln ids that were found
    std::vector<const corpus::SeededVuln*> missed;  ///< oracle false negatives

    int tp() const noexcept { return static_cast<int>(true_positives.size()); }
    int fp() const noexcept { return static_cast<int>(false_positives.size()); }
    int fn_oracle() const noexcept { return static_cast<int>(missed.size()); }
};

/// Matches one tool's findings on one plugin version against the seeded
/// ground truth of that version.
MatchResult match_findings(const std::vector<Finding>& findings,
                           const std::vector<corpus::SeededVuln>& truth);

/// Restricts match counting to one vulnerability kind.
MatchResult match_findings(const std::vector<Finding>& findings,
                           const std::vector<corpus::SeededVuln>& truth,
                           VulnKind kind);

}  // namespace phpsafe
