#include "report/metrics.h"

#include <cmath>

namespace phpsafe {

std::map<std::string, int> paper_style_false_negatives(
    const std::map<std::string, std::set<std::string>>& detected_by_tool) {
    std::set<std::string> union_detected;
    for (const auto& [tool, ids] : detected_by_tool)
        union_detected.insert(ids.begin(), ids.end());
    std::map<std::string, int> fn;
    for (const auto& [tool, ids] : detected_by_tool) {
        int missed = 0;
        for (const std::string& id : union_detected)
            if (!ids.count(id)) ++missed;
        fn[tool] = missed;
    }
    return fn;
}

std::string format_pct(double value) {
    if (value < 0) return "-";
    return std::to_string(static_cast<int>(std::lround(value * 100))) + "%";
}

}  // namespace phpsafe
