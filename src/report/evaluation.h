// Whole-corpus evaluation driver — the programmatic form of the paper's
// experimental procedure (§IV.B): run a set of tools over both versions of
// every plugin, match reports against ground truth, and aggregate the
// statistics every table/figure is computed from. The bench binaries are
// thin printers over this API; downstream users can run the same
// evaluation against their own tool configurations.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "corpus/generator.h"

namespace phpsafe {

/// Aggregated per-tool, per-version statistics.
struct EvaluationStats {
    int tp = 0;
    int fp = 0;
    int tp_xss = 0, fp_xss = 0;
    int tp_sqli = 0, fp_sqli = 0;
    int tp_oop = 0;  ///< true positives whose flow passes through OOP
    int files_failed = 0;
    int error_messages = 0;
    /// Parse + analysis CPU time (paper Table III scope), measured with a
    /// per-thread CPU clock so the numbers are correct at any parallelism.
    double cpu_seconds = 0.0;
    /// Model-construction share of cpu_seconds. The project is built once
    /// per (plugin, version) and shared by every tool; each tool's stats
    /// carry the same parse cost, preserving the Table III convention that
    /// a tool's time includes parsing.
    double parse_seconds = 0.0;
    std::set<std::string> detected_ids;
    std::set<std::string> detected_ids_xss;
    std::set<std::string> detected_ids_sqli;
};

struct Evaluation {
    corpus::Corpus corpus;
    std::vector<std::string> tool_names;
    /// stats[version][tool name]
    std::map<std::string, std::map<std::string, EvaluationStats>> stats;
    std::map<std::string, std::vector<corpus::SeededVuln>> truth;

    /// Ids detected by at least one tool in `version` (the paper's
    /// "confirmed" set).
    std::set<std::string> union_detected(const std::string& version) const;

    /// Paper-style FN for each tool: union minus the tool's detections.
    std::map<std::string, int> paper_false_negatives(const std::string& version,
                                                     VulnKind kind) const;
    std::map<std::string, int> paper_false_negatives(
        const std::string& version) const;
};

struct EvaluationOptions {
    double corpus_scale = 1.0;
    /// Repeat the analysis step this many times and average the CPU time
    /// (the paper averages five runs for Table III).
    int timing_repetitions = 1;
    /// Worker threads for the per-plugin-version pipeline. The unit of
    /// parallel work is a (plugin, version): the project is parsed once
    /// inside the worker and every tool runs against it. Results are merged
    /// in a fixed (version, tool, plugin) order, so any value yields
    /// identical statistics; per-plugin times use a per-thread CPU clock
    /// and stay meaningful at any parallelism. 0 (or negative) means auto:
    /// the PHPSAFE_JOBS environment variable when set, otherwise
    /// std::thread::hardware_concurrency().
    int parallelism = 1;
};

/// Runs `tools` over the generated corpus. Deterministic for fixed options.
Evaluation run_corpus_evaluation(const std::vector<Tool>& tools,
                                 const EvaluationOptions& options = {});

/// The paper's tool set: phpSAFE, RIPS-like, Pixy-like.
std::vector<Tool> paper_tool_set();

}  // namespace phpsafe
