// Whole-corpus evaluation driver — the programmatic form of the paper's
// experimental procedure (§IV.B): run a set of tools over both versions of
// every plugin, match reports against ground truth, and aggregate the
// statistics every table/figure is computed from. The bench binaries are
// thin printers over this API; downstream users can run the same
// evaluation against their own tool configurations.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "corpus/generator.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace phpsafe {

/// Per-stage CPU time of a run (paper Table III scope, split by pipeline
/// stage). The model stages (lex, parse) are measured once per
/// (plugin, version) — the project is built once and shared by every tool —
/// and credited to each tool's stats, preserving the Table III convention
/// that a tool's time includes parsing.
struct StageBreakdown {
    double lex = 0.0;      ///< tokenization (inside model construction)
    double parse = 0.0;    ///< tree building + declaration indexing
    double include = 0.0;  ///< executing included files during analysis
    double analyze = 0.0;  ///< taint analysis outside includes
    /// IR lowering share of `analyze` (a sub-split, not an addend: always
    /// 0 on the AST backend, where no lowering happens). The propagation
    /// share is propagate().
    double lower = 0.0;

    /// Model-construction share (what the old parse_seconds reported).
    double model() const noexcept { return lex + parse; }
    /// Taint-analysis share.
    double analysis() const noexcept { return include + analyze; }
    /// Taint propagation proper: analysis outside includes and lowering.
    double propagate() const noexcept { return analyze - lower; }
    /// Whole-run CPU (what the old cpu_seconds reported).
    double total() const noexcept { return model() + analysis(); }

    StageBreakdown& operator+=(const StageBreakdown& other) noexcept {
        lex += other.lex;
        parse += other.parse;
        include += other.include;
        analyze += other.analyze;
        lower += other.lower;
        return *this;
    }
};

/// Aggregated per-tool, per-version statistics.
struct EvaluationStats {
    int tp = 0;
    int fp = 0;
    int tp_xss = 0, fp_xss = 0;
    int tp_sqli = 0, fp_sqli = 0;
    int tp_oop = 0;  ///< true positives whose flow passes through OOP
    int files_failed = 0;
    int error_messages = 0;
    /// Per-stage CPU time, measured with a per-thread CPU clock so the
    /// numbers are correct at any parallelism.
    StageBreakdown stages;
    /// Observability counters aggregated over the tool's runs (model
    /// counters are credited to every tool, like model CPU time). Identical
    /// for any worker count — tests/determinism_test.cpp proves it.
    obs::Counters counters;
    std::set<std::string> detected_ids;
    std::set<std::string> detected_ids_xss;
    std::set<std::string> detected_ids_sqli;

    // Compatibility accessors for the pre-StageBreakdown fields.
    double cpu_seconds() const noexcept { return stages.total(); }
    double parse_seconds() const noexcept { return stages.model(); }
};

struct Evaluation {
    corpus::Corpus corpus;
    std::vector<std::string> tool_names;
    /// stats[version][tool name]
    std::map<std::string, std::map<std::string, EvaluationStats>> stats;
    std::map<std::string, std::vector<corpus::SeededVuln>> truth;

    /// Ids detected by at least one tool in `version` (the paper's
    /// "confirmed" set).
    std::set<std::string> union_detected(const std::string& version) const;

    /// Paper-style FN for each tool: union minus the tool's detections.
    std::map<std::string, int> paper_false_negatives(const std::string& version,
                                                     VulnKind kind) const;
    std::map<std::string, int> paper_false_negatives(
        const std::string& version) const;
};

struct EvaluationOptions {
    double corpus_scale = 1.0;
    /// Repeat the analysis step this many times and average the CPU time
    /// (the paper averages five runs for Table III).
    int timing_repetitions = 1;
    /// Worker threads for the per-plugin-version pipeline. The unit of
    /// parallel work is a (plugin, version): the project is parsed once
    /// inside the worker and every tool runs against it. Results are merged
    /// in a fixed (version, tool, plugin) order, so any value yields
    /// identical statistics; per-plugin times use a per-thread CPU clock
    /// and stay meaningful at any parallelism. 0 (or negative) means auto:
    /// the PHPSAFE_JOBS environment variable when set, otherwise
    /// std::thread::hardware_concurrency().
    int parallelism = 1;
    /// Optional span tracer: when set (and enabled), the driver records a
    /// "model" span per (plugin, version) and an "analyze" span per
    /// (plugin, version, tool). Not owned; may be null.
    obs::Tracer* tracer = nullptr;
};

/// Runs `tools` over the generated corpus. Deterministic for fixed options.
Evaluation run_corpus_evaluation(const std::vector<Tool>& tools,
                                 const EvaluationOptions& options = {});

/// The paper's tool set: phpSAFE, RIPS-like, Pixy-like.
std::vector<Tool> paper_tool_set();

}  // namespace phpsafe
