#include "report/matching.h"

#include <map>

namespace phpsafe {

namespace {

MatchResult match_impl(const std::vector<Finding>& findings,
                       const std::vector<corpus::SeededVuln>& truth,
                       const VulnKind* kind_filter) {
    MatchResult result;

    // Index truth by (file, line, kind).
    std::map<std::string, const corpus::SeededVuln*> index;
    for (const corpus::SeededVuln& vuln : truth) {
        if (kind_filter && vuln.kind != *kind_filter) continue;
        index[vuln.file + ":" + std::to_string(vuln.line) + ":" +
              to_string(vuln.kind)] = &vuln;
    }

    for (const Finding& finding : findings) {
        if (kind_filter && finding.kind != *kind_filter) continue;
        const std::string key = finding.location.file + ":" +
                                std::to_string(finding.location.line) + ":" +
                                to_string(finding.kind);
        const auto it = index.find(key);
        if (it != index.end()) {
            result.true_positives.push_back(&finding);
            result.detected_ids.insert(it->second->id);
        } else {
            result.false_positives.push_back(&finding);
        }
    }

    for (const corpus::SeededVuln& vuln : truth) {
        if (kind_filter && vuln.kind != *kind_filter) continue;
        if (!result.detected_ids.count(vuln.id)) result.missed.push_back(&vuln);
    }
    return result;
}

}  // namespace

MatchResult match_findings(const std::vector<Finding>& findings,
                           const std::vector<corpus::SeededVuln>& truth) {
    return match_impl(findings, truth, nullptr);
}

MatchResult match_findings(const std::vector<Finding>& findings,
                           const std::vector<corpus::SeededVuln>& truth,
                           VulnKind kind) {
    return match_impl(findings, truth, &kind);
}

}  // namespace phpsafe
