// Detection metrics (paper §IV.A): precision TP/(TP+FP), recall TP/(TP+FN),
// F-score — with the paper's two false-negative conventions: the optimistic
// one (FN = vulnerabilities other tools found that this tool missed) and
// the oracle one our generator makes possible (FN = all seeded vulns
// missed).
#pragma once

#include <map>
#include <set>
#include <string>

namespace phpsafe {

struct ConfusionMetrics {
    int tp = 0;
    int fp = 0;
    int fn = 0;

    /// Returns -1 when undefined (no positives reported), mirroring the
    /// dashes in the paper's Table I.
    double precision() const noexcept {
        return tp + fp == 0 ? -1.0 : static_cast<double>(tp) / (tp + fp);
    }
    double recall() const noexcept {
        return tp + fn == 0 ? -1.0 : static_cast<double>(tp) / (tp + fn);
    }
    double f_score() const noexcept {
        const double p = precision();
        const double r = recall();
        if (p < 0 || r < 0 || p + r == 0) return -1.0;
        return 2.0 * p * r / (p + r);
    }
};

/// Paper-style FN: the union of all tools' detected sets, minus this
/// tool's. `detected_by_tool` maps tool name → detected seeded-vuln ids.
std::map<std::string, int> paper_style_false_negatives(
    const std::map<std::string, std::set<std::string>>& detected_by_tool);

/// Formats a metric value as a percentage string ("83%" / "-").
std::string format_pct(double value);

}  // namespace phpsafe
