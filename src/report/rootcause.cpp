#include "report/rootcause.h"

namespace phpsafe {

VectorTable classify_vectors(const std::vector<corpus::SeededVuln>& truth_2012,
                             const std::vector<corpus::SeededVuln>& truth_2014,
                             const std::set<std::string>& detected_2012,
                             const std::set<std::string>& detected_2014) {
    VectorTable table;

    std::set<std::string> confirmed_2012;
    for (const corpus::SeededVuln& vuln : truth_2012) {
        if (!detected_2012.count(vuln.id)) continue;
        confirmed_2012.insert(vuln.id);
        ++table.v2012[vector_group(vuln.vector)];
    }
    for (const corpus::SeededVuln& vuln : truth_2014) {
        if (!detected_2014.count(vuln.id)) continue;
        ++table.v2014[vector_group(vuln.vector)];
        if (confirmed_2012.count(vuln.id)) ++table.both[vector_group(vuln.vector)];
    }
    return table;
}

}  // namespace phpsafe
