#include "report/export.h"

#include <sstream>

namespace phpsafe {

std::string html_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&#39;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string render_html_report(const AnalysisResult& result) {
    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
       << "<title>phpSAFE report — " << html_escape(result.plugin)
       << "</title>\n<style>\n"
       << "body{font-family:sans-serif;margin:2em;background:#fafafa}\n"
       << ".finding{border:1px solid #ccc;border-left:6px solid #c0392b;"
          "margin:1em 0;padding:.6em 1em;background:#fff}\n"
       << ".finding.sqli{border-left-color:#8e44ad}\n"
       << ".trace{font-family:monospace;font-size:90%;color:#444;"
          "margin:.4em 0 0 1em}\n"
       << ".meta{color:#666;font-size:90%}\n"
       << ".badge{display:inline-block;padding:0 .5em;border-radius:.7em;"
          "font-size:85%;color:#fff;background:#7f8c8d}\n"
       << ".badge.validated{background:#c0392b}\n"
       << ".badge.unvalidated{background:#27ae60}\n"
       << "</style></head><body>\n";

    os << "<h1>" << html_escape(result.tool) << " report</h1>\n";
    os << "<p class=\"meta\">plugin: <b>" << html_escape(result.plugin)
       << "</b> &middot; files: " << result.files_total << " (failed: "
       << result.files_failed << ") &middot; findings: "
       << result.findings.size() << " &middot; XSS: "
       << result.count(VulnKind::kXss) << " &middot; SQLi: "
       << result.count(VulnKind::kSqli) << "</p>\n";

    for (const Finding& finding : result.findings) {
        os << "<div class=\"finding"
           << (finding.kind == VulnKind::kSqli ? " sqli" : "") << "\">\n";
        os << "<b>" << html_escape(to_string(finding.kind)) << "</b> at <code>"
           << html_escape(to_string(finding.location)) << "</code>, sink <code>"
           << html_escape(finding.sink) << "</code>";
        if (finding.via_oop) os << " <em>(via OOP)</em>";
        os << "<br>\n";
        os << "vulnerable expression: <code>" << html_escape(finding.variable)
           << "</code> &middot; input vector: "
           << html_escape(to_string(finding.vector));
        if (finding.confidence != Confidence::kUnchecked)
            os << " &middot; <span class=\"badge "
               << html_escape(to_string(finding.confidence)) << "\">"
               << html_escape(to_string(finding.confidence)) << "</span>";
        os << "\n";
        os << "<div class=\"trace\">\n";
        for (const TaintStep& step : finding.trace)
            os << html_escape(to_string(step.location)) << " &mdash; "
               << html_escape(step.description) << "<br>\n";
        os << "</div></div>\n";
    }
    os << "</body></html>\n";
    return os.str();
}

std::string render_json_report(const AnalysisResult& result) {
    std::ostringstream os;
    JsonWriter w(os);  // compact: the CI export is line-oriented
    w.begin_object();
    w.kv("tool", result.tool);
    w.kv("plugin", result.plugin);
    w.kv("files_total", result.files_total);
    w.kv("files_failed", result.files_failed);
    w.key("findings").begin_array();
    for (const Finding& f : result.findings) render_finding_json(w, f);
    w.end_array();
    w.end_object();
    return os.str();
}

void render_finding_json(JsonWriter& w, const Finding& f) {
    w.begin_object();
    w.kv("kind", to_string(f.kind));
    w.kv("file", f.location.file);
    w.kv("line", f.location.line);
    w.kv("sink", f.sink);
    w.kv("variable", f.variable);
    w.kv("vector", to_string(f.vector));
    w.kv("via_oop", f.via_oop);
    // Emitted only when the validation pipeline tiered the finding, so
    // untiered reports — and the canonical finding_json identity the watch
    // deltas diff — keep their exact pre-validation byte shape.
    if (f.confidence != Confidence::kUnchecked)
        w.kv("confidence", to_string(f.confidence));
    w.key("trace").begin_array();
    for (const TaintStep& step : f.trace) {
        w.begin_object();
        w.kv("file", step.location.file);
        w.kv("line", step.location.line);
        w.kv("step", step.description);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

std::string finding_json(const Finding& finding) {
    std::ostringstream os;
    JsonWriter w(os);
    render_finding_json(w, finding);
    return os.str();
}

}  // namespace phpsafe
