#include "report/export.h"

#include <sstream>

namespace phpsafe {

std::string html_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&#39;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string render_html_report(const AnalysisResult& result) {
    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
       << "<title>phpSAFE report — " << html_escape(result.plugin)
       << "</title>\n<style>\n"
       << "body{font-family:sans-serif;margin:2em;background:#fafafa}\n"
       << ".finding{border:1px solid #ccc;border-left:6px solid #c0392b;"
          "margin:1em 0;padding:.6em 1em;background:#fff}\n"
       << ".finding.sqli{border-left-color:#8e44ad}\n"
       << ".trace{font-family:monospace;font-size:90%;color:#444;"
          "margin:.4em 0 0 1em}\n"
       << ".meta{color:#666;font-size:90%}\n"
       << "</style></head><body>\n";

    os << "<h1>" << html_escape(result.tool) << " report</h1>\n";
    os << "<p class=\"meta\">plugin: <b>" << html_escape(result.plugin)
       << "</b> &middot; files: " << result.files_total << " (failed: "
       << result.files_failed << ") &middot; findings: "
       << result.findings.size() << " &middot; XSS: "
       << result.count(VulnKind::kXss) << " &middot; SQLi: "
       << result.count(VulnKind::kSqli) << "</p>\n";

    for (const Finding& finding : result.findings) {
        os << "<div class=\"finding"
           << (finding.kind == VulnKind::kSqli ? " sqli" : "") << "\">\n";
        os << "<b>" << html_escape(to_string(finding.kind)) << "</b> at <code>"
           << html_escape(to_string(finding.location)) << "</code>, sink <code>"
           << html_escape(finding.sink) << "</code>";
        if (finding.via_oop) os << " <em>(via OOP)</em>";
        os << "<br>\n";
        os << "vulnerable expression: <code>" << html_escape(finding.variable)
           << "</code> &middot; input vector: "
           << html_escape(to_string(finding.vector)) << "\n";
        os << "<div class=\"trace\">\n";
        for (const TaintStep& step : finding.trace)
            os << html_escape(to_string(step.location)) << " &mdash; "
               << html_escape(step.description) << "<br>\n";
        os << "</div></div>\n";
    }
    os << "</body></html>\n";
    return os.str();
}

std::string render_json_report(const AnalysisResult& result) {
    std::ostringstream os;
    os << "{\"tool\":\"" << json_escape(result.tool) << "\",";
    os << "\"plugin\":\"" << json_escape(result.plugin) << "\",";
    os << "\"files_total\":" << result.files_total << ",";
    os << "\"files_failed\":" << result.files_failed << ",";
    os << "\"findings\":[";
    for (size_t i = 0; i < result.findings.size(); ++i) {
        const Finding& f = result.findings[i];
        if (i) os << ",";
        os << "{\"kind\":\"" << json_escape(to_string(f.kind)) << "\",";
        os << "\"file\":\"" << json_escape(f.location.file) << "\",";
        os << "\"line\":" << f.location.line << ",";
        os << "\"sink\":\"" << json_escape(f.sink) << "\",";
        os << "\"variable\":\"" << json_escape(f.variable) << "\",";
        os << "\"vector\":\"" << json_escape(to_string(f.vector)) << "\",";
        os << "\"via_oop\":" << (f.via_oop ? "true" : "false") << ",";
        os << "\"trace\":[";
        for (size_t s = 0; s < f.trace.size(); ++s) {
            if (s) os << ",";
            os << "{\"file\":\"" << json_escape(f.trace[s].location.file)
               << "\",\"line\":" << f.trace[s].location.line
               << ",\"step\":\"" << json_escape(f.trace[s].description) << "\"}";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

}  // namespace phpsafe
