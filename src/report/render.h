// Minimal fixed-width text-table renderer used by the bench binaries to
// print Table I/II/III-shaped output.
#pragma once

#include <string>
#include <vector>

namespace phpsafe {

class TextTable {
public:
    /// First row added is treated as the header.
    void add_row(std::vector<std::string> cells);

    /// Renders with column alignment and a separator under the header.
    std::string to_string() const;

private:
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace phpsafe
