// Vulnerability-fixing inertia (paper §V.D): of the vulnerabilities found
// in the 2014 versions, how many had already been found — and disclosed to
// the developers — in the 2012 versions more than a year earlier, and how
// many of those are trivially exploitable (GET/POST/COOKIE).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "corpus/generator.h"

namespace phpsafe {

struct InertiaReport {
    int total_2014 = 0;            ///< confirmed vulnerabilities in 2014
    int carried_from_2012 = 0;     ///< already disclosed in the 2012 round
    int carried_easy_exploit = 0;  ///< carried AND GET/POST/COOKIE exploitable

    double carried_fraction() const noexcept {
        return total_2014 == 0 ? 0.0
                               : static_cast<double>(carried_from_2012) / total_2014;
    }
    double easy_fraction_of_carried() const noexcept {
        return carried_from_2012 == 0 ? 0.0
                                      : static_cast<double>(carried_easy_exploit) /
                                            carried_from_2012;
    }
};

/// `detected_2014` restricts the analysis to confirmed vulnerabilities
/// (detected by at least one tool), as in the paper.
InertiaReport analyze_inertia(const std::vector<corpus::SeededVuln>& truth_2014,
                              const std::set<std::string>& detected_2014);

}  // namespace phpsafe
