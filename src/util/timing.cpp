#include "util/timing.h"

#include <chrono>
#include <ctime>

namespace phpsafe {

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double wall_seconds() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace phpsafe
