#include "util/worker_pool.h"

#include <cstdlib>
#include <string>

namespace phpsafe {

WorkerPool::WorkerPool(int threads) {
    const int extra = threads - 1;
    threads_.reserve(extra > 0 ? static_cast<size_t>(extra) : 0);
    for (int i = 0; i < extra; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(size_t count, const std::function<void(size_t)>& fn) {
    if (count == 0) return;
    if (threads_.empty()) {
        for (size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        job_count_ = count;
        next_.store(0, std::memory_order_relaxed);
        busy_workers_ = static_cast<int>(threads_.size());
        ++generation_;
    }
    start_cv_.notify_all();
    drain(fn, count);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return busy_workers_ == 0; });
    job_ = nullptr;
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void WorkerPool::drain(const std::function<void(size_t)>& fn, size_t count) {
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_) error_ = std::current_exception();
        }
    }
}

void WorkerPool::worker_loop() {
    uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(size_t)>* job = nullptr;
        size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_) return;
            seen_generation = generation_;
            job = job_;
            count = job_count_;
        }
        drain(*job, count);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --busy_workers_;
        }
        done_cv_.notify_all();
    }
}

TaskTeam::TaskTeam(int threads) {
    const int count = threads >= 1 ? threads : 1;
    threads_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        threads_.emplace_back([this] { thread_loop(); });
}

TaskTeam::~TaskTeam() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
        shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void TaskTeam::post(int priority, std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_[priority].push_back(std::move(task));
        ++depth_;
    }
    cv_.notify_one();
}

size_t TaskTeam::depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_;
}

void TaskTeam::pause() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void TaskTeam::resume() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

std::function<void()> TaskTeam::pop_locked() {
    const auto bucket = queue_.begin();  // highest priority (greater<int>)
    std::function<void()> task = std::move(bucket->second.front());
    bucket->second.pop_front();
    if (bucket->second.empty()) queue_.erase(bucket);
    --depth_;
    return task;
}

void TaskTeam::thread_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return (!paused_ && depth_ > 0) || (shutdown_ && depth_ == 0);
            });
            if (depth_ == 0) return;  // shutdown with a drained queue
            task = pop_locked();
            // The pop that empties the queue must wake siblings blocked on
            // the shutdown predicate, or they would sleep forever.
            if (shutdown_ && depth_ == 0) cv_.notify_all();
        }
        task();
    }
}

int WorkerPool::resolve_parallelism(int requested) {
    if (requested >= 1) return requested;
    if (const char* jobs = std::getenv("PHPSAFE_JOBS")) {
        const int parsed = std::atoi(jobs);
        if (parsed >= 1) return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace phpsafe
