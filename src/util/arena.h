// Bump-pointer arena for the per-file program model. The parser allocates
// every AST node (and every decoded/synthesized string) from one Arena owned
// by the ParsedFile, so a whole file's model costs a handful of block
// mallocs instead of one heap allocation per node, and teardown is a single
// sweep instead of a pointer-chasing destructor cascade.
//
// Ownership rules (see docs/performance.md, "The memory model"):
//   - Nodes hold raw non-owning pointers to other nodes in the same arena.
//   - string_view fields point either into the retained source text or into
//     this arena; both live exactly as long as the owning ParsedFile.
//   - Non-trivially-destructible objects (nodes with std::vector children)
//     are registered on a destructor list and destroyed LIFO by ~Arena();
//     trivially-destructible objects cost nothing at teardown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace phpsafe {

class Arena {
public:
    static constexpr size_t kDefaultBlockBytes = 64 * 1024;

    Arena() = default;

    /// The thread's current arena, read by default-constructed
    /// ArenaAllocators. Nodes hold allocator-aware vectors; binding the
    /// arena for the duration of a parse makes every child list the parser
    /// builds land in the file's arena without threading the arena through
    /// each container's constructor.
    static Arena*& current() noexcept {
        static thread_local Arena* tls_current = nullptr;
        return tls_current;
    }

    /// RAII scope: makes `arena` the thread's current arena.
    class Bind {
    public:
        explicit Bind(Arena& arena) noexcept
            : previous_(current()) {
            current() = &arena;
        }
        ~Bind() { current() = previous_; }
        Bind(const Bind&) = delete;
        Bind& operator=(const Bind&) = delete;

    private:
        Arena* previous_;
    };

    Arena(Arena&& other) noexcept { steal(other); }
    Arena& operator=(Arena&& other) noexcept {
        if (this != &other) {
            release();
            steal(other);
        }
        return *this;
    }

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    ~Arena() { release(); }

    /// Raw aligned allocation. `align` must be a power of two.
    void* allocate(size_t size, size_t align) {
        char* p = align_up(cursor_, align);
        if (p + size > end_ || !cursor_) return allocate_slow(size, align);
        cursor_ = p + size;
        bytes_allocated_ += size;
        return p;
    }

    /// Placement-constructs a T in the arena. Objects whose destructor does
    /// real work (vectors of children, owned buffers) are registered and
    /// destroyed by ~Arena(); trivial ones are simply abandoned.
    template <typename T, typename... Args>
    T* create(Args&&... args) {
        void* mem = allocate(sizeof(T), alignof(T));
        T* obj = new (mem) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>) {
            auto* node = static_cast<DtorNode*>(
                allocate(sizeof(DtorNode), alignof(DtorNode)));
            node->object = obj;
            node->destroy = [](void* p) { static_cast<T*>(p)->~T(); };
            node->next = dtors_;
            dtors_ = node;
        }
        return obj;
    }

    /// Copies `s` into the arena and returns a view that lives as long as
    /// the arena does. Empty input returns an empty view without allocating.
    std::string_view store(std::string_view s) {
        if (s.empty()) return {};
        char* mem = static_cast<char*>(allocate(s.size(), 1));
        std::memcpy(mem, s.data(), s.size());
        string_bytes_ += s.size();
        return {mem, s.size()};
    }

    /// Bytes handed out to callers (the LRU pools charge this).
    uint64_t bytes_allocated() const noexcept { return bytes_allocated_; }
    /// Heap blocks backing the arena — the arena's entire malloc traffic.
    uint64_t block_count() const noexcept { return block_count_; }
    /// Bytes reserved from the heap (>= bytes_allocated, block granularity).
    uint64_t bytes_reserved() const noexcept { return bytes_reserved_; }
    /// Bytes copied into the arena via store().
    uint64_t string_bytes() const noexcept { return string_bytes_; }

private:
    struct Block {
        Block* next;
        size_t size;  ///< usable payload bytes following this header
    };
    struct DtorNode {
        void* object;
        void (*destroy)(void*);
        DtorNode* next;
    };

    static char* align_up(char* p, size_t align) noexcept {
        const uintptr_t v = reinterpret_cast<uintptr_t>(p);
        return reinterpret_cast<char*>((v + align - 1) & ~(align - 1));
    }

    Block* new_block(size_t payload) {
        char* raw = static_cast<char*>(::operator new(sizeof(Block) + payload));
        Block* block = reinterpret_cast<Block*>(raw);
        block->next = nullptr;
        block->size = payload;
        bytes_reserved_ += payload;
        ++block_count_;
        return block;
    }

    void* allocate_slow(size_t size, size_t align) {
        if (size + align > kDefaultBlockBytes) {
            // Oversized request: dedicated block chained behind the head so
            // the current bump block keeps filling its tail.
            Block* block = new_block(size + align);
            if (blocks_) {
                block->next = blocks_->next;
                blocks_->next = block;
            } else {
                blocks_ = block;
            }
            char* p = align_up(reinterpret_cast<char*>(block) + sizeof(Block),
                               align);
            bytes_allocated_ += size;
            return p;
        }
        Block* block = new_block(kDefaultBlockBytes);
        block->next = blocks_;
        blocks_ = block;
        cursor_ = reinterpret_cast<char*>(block) + sizeof(Block);
        end_ = cursor_ + kDefaultBlockBytes;
        char* p = align_up(cursor_, align);
        cursor_ = p + size;
        bytes_allocated_ += size;
        return p;
    }

    void release() noexcept {
        for (DtorNode* d = dtors_; d; d = d->next) d->destroy(d->object);
        dtors_ = nullptr;
        Block* b = blocks_;
        while (b) {
            Block* next = b->next;
            ::operator delete(static_cast<void*>(b));
            b = next;
        }
        blocks_ = nullptr;
        cursor_ = end_ = nullptr;
        bytes_allocated_ = bytes_reserved_ = string_bytes_ = 0;
        block_count_ = 0;
    }

    void steal(Arena& other) noexcept {
        blocks_ = std::exchange(other.blocks_, nullptr);
        cursor_ = std::exchange(other.cursor_, nullptr);
        end_ = std::exchange(other.end_, nullptr);
        dtors_ = std::exchange(other.dtors_, nullptr);
        bytes_allocated_ = std::exchange(other.bytes_allocated_, 0);
        bytes_reserved_ = std::exchange(other.bytes_reserved_, 0);
        string_bytes_ = std::exchange(other.string_bytes_, 0);
        block_count_ = std::exchange(other.block_count_, 0);
    }

    Block* blocks_ = nullptr;
    char* cursor_ = nullptr;
    char* end_ = nullptr;
    DtorNode* dtors_ = nullptr;
    uint64_t bytes_allocated_ = 0;
    uint64_t bytes_reserved_ = 0;
    uint64_t string_bytes_ = 0;
    uint64_t block_count_ = 0;
};

/// Allocator that serves from the arena bound at the allocator's
/// construction (Arena::current()), falling back to the heap when no arena
/// is bound — so AST nodes default-constructed outside a parse (tests,
/// synthesized fixtures) still work. Deallocation is a no-op for
/// arena-backed memory: the arena reclaims everything at teardown.
template <typename T>
class ArenaAllocator {
public:
    using value_type = T;
    /// Growth discards the old buffer inside the arena; stealing buffers on
    /// move keeps that waste bounded to the final size per container.
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;

    ArenaAllocator() noexcept : arena_(Arena::current()) {}
    explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& other) noexcept
        : arena_(other.arena()) {}

    T* allocate(size_t n) {
        if (arena_)
            return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
        return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    void deallocate(T* p, size_t) noexcept {
        if (!arena_) ::operator delete(static_cast<void*>(p));
    }

    Arena* arena() const noexcept { return arena_; }

    friend bool operator==(const ArenaAllocator& a,
                           const ArenaAllocator& b) noexcept {
        return a.arena_ == b.arena_;
    }
    friend bool operator!=(const ArenaAllocator& a,
                           const ArenaAllocator& b) noexcept {
        return !(a == b);
    }

private:
    Arena* arena_;
};

/// Vector whose buffer lives in the thread's current arena (heap when none
/// is bound). The AST's child lists use this: same push_back interface, no
/// per-list heap allocation, freed wholesale with the owning arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace phpsafe
