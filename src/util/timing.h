// Clocks for the evaluation pipeline. std::clock() measures process-wide
// CPU, so under a parallel evaluation every worker's reading absorbs the
// other threads' CPU time and the per-plugin Table III numbers inflate by
// roughly the worker count. thread_cpu_seconds() measures only the calling
// thread and is correct at any parallelism.
#pragma once

namespace phpsafe {

/// CPU time consumed by the calling thread, in seconds. Falls back to
/// process CPU time on platforms without a per-thread CPU clock.
double thread_cpu_seconds();

/// Monotonic wall-clock seconds (arbitrary epoch); for end-to-end timing.
double wall_seconds();

}  // namespace phpsafe
