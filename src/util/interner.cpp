#include "util/interner.h"

namespace phpsafe {

namespace {

constexpr size_t kInitialCapacity = 256;  // power of two

uint32_t fnv1a(std::string_view s) noexcept {
    uint32_t h = 2166136261u;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 16777619u;
    }
    return h;
}

char ascii_tolower_char(char c) noexcept {
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

SymbolTable::SymbolTable() : slots_(kInitialCapacity) {}

Symbol SymbolTable::intern(std::string_view name) {
    return insert(name, fnv1a(name));
}

Symbol SymbolTable::intern_folded(std::string_view name) {
    // Hash the folded form without materializing it; for already-lowercase
    // input this equals fnv1a(name), so all spellings share one slot.
    bool needs_fold = false;
    uint32_t hash = 2166136261u;
    for (const char c : name) {
        const char f = ascii_tolower_char(c);
        if (f != c) needs_fold = true;
        hash ^= static_cast<unsigned char>(f);
        hash *= 16777619u;
    }
    if (!needs_fold) return insert(name, hash);
    // No-alloc probe: stored names are already folded, so compare them
    // against the folded view of `name` character by character.
    const size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    for (;;) {
        const Slot& slot = slots_[i];
        if (slot.index == Symbol::kInvalidId) break;
        if (slot.hash == hash && names_[slot.index].size() == name.size()) {
            const std::string& stored = names_[slot.index];
            bool equal = true;
            for (size_t k = 0; k < name.size(); ++k)
                if (stored[k] != ascii_tolower_char(name[k])) {
                    equal = false;
                    break;
                }
            if (equal) return Symbol{slot.index};
        }
        i = (i + 1) & mask;
    }
    // First sighting of this spelling class: materialize the folded key once
    // and take the normal insert path (which re-probes after any rehash).
    std::string folded;
    folded.reserve(name.size());
    for (const char c : name) folded.push_back(ascii_tolower_char(c));
    return insert(folded, hash);
}

std::string_view SymbolTable::name(Symbol symbol) const noexcept {
    if (!symbol.valid() || symbol.id() >= names_.size()) return {};
    return names_[symbol.id()];
}

void SymbolTable::clear() {
    names_.clear();
    slots_.assign(kInitialCapacity, Slot{});
    used_ = 0;
}

Symbol SymbolTable::insert(std::string_view name, uint32_t hash) {
    const size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    for (;;) {
        Slot& slot = slots_[i];
        if (slot.index == Symbol::kInvalidId) break;
        if (slot.hash == hash && names_[slot.index] == name)
            return Symbol{slot.index};
        i = (i + 1) & mask;
    }
    // Not found: grow first if needed so the probe above stays short.
    if ((used_ + 1) * 10 >= slots_.size() * 7) {
        rehash(slots_.size() * 2);
        return insert(name, hash);
    }
    const uint32_t index = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    slots_[i] = Slot{hash, index};
    ++used_;
    return Symbol{index};
}

void SymbolTable::rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const size_t mask = new_capacity - 1;
    for (const Slot& slot : old) {
        if (slot.index == Symbol::kInvalidId) continue;
        size_t i = slot.hash & mask;
        while (slots_[i].index != Symbol::kInvalidId) i = (i + 1) & mask;
        slots_[i] = slot;
    }
}

}  // namespace phpsafe
