#include "util/strings.h"

#include <cctype>

namespace phpsafe {

namespace {

// Locale-free A-Z fold: these helpers run once per identifier character on
// the analysis hot path, where std::tolower's locale indirection shows up.
constexpr char fold(char c) noexcept {
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c + ('a' - 'A')) : c;
}

}  // namespace

std::string ascii_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = fold(c);
    return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (fold(a[i]) != fold(b[i])) return false;
    }
    return true;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i) out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
    if (from.empty()) return s;
    size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

}  // namespace phpsafe
