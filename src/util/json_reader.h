// Minimal DOM JSON parser — the read-side counterpart of json_writer.h,
// used by the phpsafe_serve daemon to decode newline-delimited request
// objects. Recursive descent over the JSON grammar into a small variant
// (JsonValue); no allocator tricks, no SAX mode, no incremental input —
// each parse() call consumes one complete document. Numbers are kept as
// double, with the exact int64 value preserved alongside when the token
// is an integer (doubles alone silently round above 2^53); \uXXXX escapes
// decode to UTF-8.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace phpsafe {

class JsonValue {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0;
    /// Exact value when the document token was a plain integer in int64
    /// range; `number` always carries the (possibly rounded) double.
    bool number_is_integer = false;
    int64_t integer = 0;
    std::string string;
    std::vector<JsonValue> array;
    /// Object members in document order (duplicate keys keep the last).
    std::vector<std::pair<std::string, JsonValue>> object;

    bool is_null() const noexcept { return kind == Kind::kNull; }
    bool is_bool() const noexcept { return kind == Kind::kBool; }
    bool is_number() const noexcept { return kind == Kind::kNumber; }
    bool is_string() const noexcept { return kind == Kind::kString; }
    bool is_array() const noexcept { return kind == Kind::kArray; }
    bool is_object() const noexcept { return kind == Kind::kObject; }

    /// Looks up an object member; null when absent or not an object.
    const JsonValue* get(std::string_view key) const noexcept {
        if (kind != Kind::kObject) return nullptr;
        const JsonValue* found = nullptr;
        for (const auto& [name, value] : object)
            if (name == key) found = &value;
        return found;
    }

    /// Member's string value, or `fallback` when absent / not a string.
    std::string string_or(std::string_view key, std::string fallback) const {
        const JsonValue* v = get(key);
        return v && v->is_string() ? v->string : std::move(fallback);
    }

    /// Member's numeric value truncated to int64, or `fallback`.
    int64_t int_or(std::string_view key, int64_t fallback) const noexcept {
        const JsonValue* v = get(key);
        if (!v || !v->is_number()) return fallback;
        return v->number_is_integer ? v->integer
                                    : static_cast<int64_t>(v->number);
    }
};

/// Parses one JSON document. Returns false (and fills `error` when given)
/// on malformed input or trailing non-whitespace.
class JsonReader {
public:
    static bool parse(std::string_view text, JsonValue& out,
                      std::string* error = nullptr) {
        JsonReader reader(text);
        reader.skip_ws();
        if (!reader.parse_value(out)) {
            if (error) *error = reader.describe_error();
            return false;
        }
        reader.skip_ws();
        if (reader.pos_ != text.size()) {
            if (error)
                *error = "trailing characters at offset " +
                         std::to_string(reader.pos_);
            return false;
        }
        return true;
    }

private:
    explicit JsonReader(std::string_view text) : text_(text) {}

    bool fail(const char* what) {
        if (!error_) error_ = what;
        return false;
    }

    std::string describe_error() const {
        return std::string(error_ ? error_ : "malformed JSON") + " at offset " +
               std::to_string(pos_);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool parse_value(JsonValue& out) {
        if (depth_ > 64) return fail("nesting too deep");
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        switch (text_[pos_]) {
            case 'n': out.kind = JsonValue::Kind::kNull; return literal("null");
            case 't':
                out.kind = JsonValue::Kind::kBool;
                out.boolean = true;
                return literal("true");
            case 'f':
                out.kind = JsonValue::Kind::kBool;
                out.boolean = false;
                return literal("false");
            case '"':
                out.kind = JsonValue::Kind::kString;
                return parse_string(out.string);
            case '[': return parse_array(out);
            case '{': return parse_object(out);
            default: return parse_number(out);
        }
    }

    bool parse_array(JsonValue& out) {
        out.kind = JsonValue::Kind::kArray;
        ++pos_;  // '['
        ++depth_;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        for (;;) {
            JsonValue element;
            if (!parse_value(element)) return false;
            out.array.push_back(std::move(element));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']') break;
            if (c != ',') return fail("expected ',' or ']'");
            skip_ws();
        }
        --depth_;
        return true;
    }

    bool parse_object(JsonValue& out) {
        out.kind = JsonValue::Kind::kObject;
        ++pos_;  // '{'
        ++depth_;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        for (;;) {
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skip_ws();
            JsonValue value;
            if (!parse_value(value)) return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}') break;
            if (c != ',') return fail("expected ',' or '}'");
            skip_ws();
        }
        --depth_;
        return true;
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned code = 0;
                    if (!parse_hex4(code)) return false;
                    // Surrogate pair → one code point.
                    if (code >= 0xD800 && code <= 0xDBFF &&
                        text_.substr(pos_, 2) == "\\u") {
                        pos_ += 2;
                        unsigned low = 0;
                        if (!parse_hex4(low)) return false;
                        if (low >= 0xDC00 && low <= 0xDFFF)
                            code = 0x10000 + ((code - 0xD800) << 10) +
                                   (low - 0xDC00);
                        else
                            return fail("unpaired surrogate");
                    }
                    append_utf8(out, code);
                    break;
                }
                default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool parse_hex4(unsigned& out) {
        if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
            else return fail("bad \\u escape");
        }
        return true;
    }

    static void append_utf8(std::string& out, unsigned code) {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    bool parse_number(JsonValue& out) {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::string_view("0123456789.eE+-").find(text_[pos_]) !=
                std::string_view::npos))
            ++pos_;
        if (pos_ == start) return fail("expected value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0') {
            pos_ = start;
            return fail("bad number");
        }
        // Integer tokens additionally keep their exact int64 value: strtod
        // rounds past 2^53, which broke round-trips of hashes and byte
        // counts emitted by json_writer.h.
        if (token.find_first_of(".eE") == std::string_view::npos) {
            errno = 0;
            char* int_end = nullptr;
            const long long exact = std::strtoll(token.c_str(), &int_end, 10);
            if (int_end && *int_end == '\0' && errno != ERANGE) {
                out.number_is_integer = true;
                out.integer = exact;
            }
        }
        out.kind = JsonValue::Kind::kNumber;
        return true;
    }

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
    const char* error_ = nullptr;
};

}  // namespace phpsafe
