// Small string helpers shared across modules. PHP identifiers are
// case-insensitive for functions/classes but case-sensitive for variables;
// the fold helpers here implement the ASCII case-insensitive comparisons the
// knowledge base and the engine need.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace phpsafe {

/// ASCII lowercase copy (PHP function/class names are matched case-insensitively).
std::string ascii_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Splits on a single character; no empty-token suppression.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// Byte-wise three-way compare under ASCII case folding, without allocating.
/// Equivalent to ascii_lower(a).compare(ascii_lower(b)) on every input.
constexpr int folded_compare(std::string_view a, std::string_view b) noexcept {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
        char ca = a[i], cb = b[i];
        if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
        if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
        if (ca != cb)
            return static_cast<unsigned char>(ca) <
                           static_cast<unsigned char>(cb)
                       ? -1
                       : 1;
    }
    if (a.size() == b.size()) return 0;
    return a.size() < b.size() ? -1 : 1;
}

/// Appends the ASCII-lowercased bytes of `s` to `out` without a temporary;
/// reusing one `out` buffer across calls makes repeated folds allocation-free
/// once the buffer has grown to the longest name seen.
inline void append_folded(std::string& out, std::string_view s) {
    for (char c : s) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
        out.push_back(c);
    }
}

/// Transparent ordered-map comparator for case-insensitive name tables.
/// Keys are stored lowercased (so iteration order matches a plain std::less
/// map over folded keys); lookups may pass any mixed-case string_view and
/// never allocate a folded temporary.
struct FoldedLess {
    using is_transparent = void;
    constexpr bool operator()(std::string_view a,
                              std::string_view b) const noexcept {
        return folded_compare(a, b) < 0;
    }
};

/// FNV-1a 64-bit hash — the content-addressing primitive of the incremental
/// analysis service (service/cache.h): file texts and cache keys are hashed
/// with it. Stable across platforms and runs (no seed, no pointer mixing),
/// which is what lets cache keys live beyond one process.
constexpr uint64_t fnv1a64(std::string_view bytes,
                           uint64_t seed = 0xcbf29ce484222325ull) noexcept {
    uint64_t h = seed;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace phpsafe
