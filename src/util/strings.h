// Small string helpers shared across modules. PHP identifiers are
// case-insensitive for functions/classes but case-sensitive for variables;
// the fold helpers here implement the ASCII case-insensitive comparisons the
// knowledge base and the engine need.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace phpsafe {

/// ASCII lowercase copy (PHP function/class names are matched case-insensitively).
std::string ascii_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Splits on a single character; no empty-token suppression.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// FNV-1a 64-bit hash — the content-addressing primitive of the incremental
/// analysis service (service/cache.h): file texts and cache keys are hashed
/// with it. Stable across platforms and runs (no seed, no pointer mixing),
/// which is what lets cache keys live beyond one process.
constexpr uint64_t fnv1a64(std::string_view bytes,
                           uint64_t seed = 0xcbf29ce484222325ull) noexcept {
    uint64_t h = seed;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace phpsafe
