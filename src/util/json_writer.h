// Minimal streaming JSON writer shared by every JSON producer in the tree
// (report/export.cpp, bench/bench_scale.cpp, the obs trace exporters).
// Before it existed each of those hand-rolled its own comma/escape/indent
// logic; this centralizes the three things that keep going wrong in
// hand-rolled emission — separators, string escaping, and balanced
// nesting — behind a push API:
//
//   JsonWriter w(os, /*indent_width=*/2);
//   w.begin_object();
//   w.kv("tool", "phpSAFE");
//   w.key("findings").begin_array();
//   ... w.value(...) ...
//   w.end_array();
//   w.end_object();
//
// indent_width 0 produces compact single-line JSON (the CI export format);
// a positive width pretty-prints with that many spaces per level (the
// committed BENCH_*.json files).
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace phpsafe {

/// Escapes text for a JSON string literal (without surrounding quotes).
inline std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

class JsonWriter {
public:
    explicit JsonWriter(std::ostream& out, int indent_width = 0)
        : out_(out), indent_width_(indent_width) {}

    JsonWriter& begin_object() { return open('{', /*is_array=*/false); }
    JsonWriter& end_object() { return close('}'); }
    JsonWriter& begin_array() { return open('[', /*is_array=*/true); }
    JsonWriter& end_array() { return close(']'); }

    JsonWriter& key(std::string_view name) {
        separate();
        out_ << '"' << json_escape(name) << (indent_width_ > 0 ? "\": " : "\":");
        have_key_ = true;
        return *this;
    }

    JsonWriter& value(std::string_view text) {
        separate();
        out_ << '"' << json_escape(text) << '"';
        return *this;
    }
    JsonWriter& value(const char* text) { return value(std::string_view(text)); }
    JsonWriter& value(bool v) {
        separate();
        out_ << (v ? "true" : "false");
        return *this;
    }
    JsonWriter& value(int v) { return integral(static_cast<int64_t>(v)); }
    JsonWriter& value(int64_t v) { return integral(v); }
    JsonWriter& value(uint64_t v) {
        separate();
        out_ << v;
        return *this;
    }
    /// Fixed-point double (JSON has no NaN/Inf; those emit 0).
    JsonWriter& value(double v, int decimals = 4) {
        separate();
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*f", decimals,
                      v == v && v - v == 0.0 ? v : 0.0);
        out_ << buf;
        return *this;
    }
    JsonWriter& null() {
        separate();
        out_ << "null";
        return *this;
    }

    template <typename V>
    JsonWriter& kv(std::string_view name, V&& v) {
        key(name);
        return value(std::forward<V>(v));
    }
    JsonWriter& kv(std::string_view name, double v, int decimals) {
        key(name);
        return value(v, decimals);
    }

    /// True when every begin_* has been matched by its end_*.
    bool balanced() const noexcept { return stack_.empty(); }

private:
    struct Level {
        bool is_array = false;
        size_t items = 0;
    };

    JsonWriter& integral(int64_t v) {
        separate();
        out_ << v;
        return *this;
    }

    JsonWriter& open(char c, bool is_array) {
        separate();
        out_ << c;
        stack_.push_back(Level{is_array, 0});
        return *this;
    }

    JsonWriter& close(char c) {
        const bool had_items = !stack_.empty() && stack_.back().items > 0;
        if (!stack_.empty()) stack_.pop_back();
        if (indent_width_ > 0 && had_items) {
            out_ << '\n';
            indent();
        }
        out_ << c;
        return *this;
    }

    /// Emits the separator (comma, newline, indentation) a new item needs
    /// at the current position. A value directly after key() is the key's
    /// payload and needs nothing.
    void separate() {
        if (have_key_) {
            have_key_ = false;
            return;
        }
        if (stack_.empty()) return;
        if (stack_.back().items > 0) out_ << ',';
        ++stack_.back().items;
        if (indent_width_ > 0) {
            out_ << '\n';
            indent();
        }
    }

    void indent() {
        for (size_t i = 0; i < stack_.size() * indent_width_; ++i) out_ << ' ';
    }

    std::ostream& out_;
    int indent_width_;
    std::vector<Level> stack_;
    bool have_key_ = false;
};

}  // namespace phpsafe
