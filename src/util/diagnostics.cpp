#include "util/diagnostics.h"

#include <algorithm>

namespace phpsafe {

std::string to_string(Severity s) {
    switch (s) {
        case Severity::kNote: return "note";
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
        case Severity::kFatal: return "fatal";
    }
    return "unknown";
}

void DiagnosticSink::add(Severity severity, SourceLocation loc, std::string message) {
    all_.push_back(Diagnostic{severity, std::move(loc), std::move(message)});
}

int DiagnosticSink::count(Severity severity) const noexcept {
    return static_cast<int>(std::count_if(all_.begin(), all_.end(),
        [severity](const Diagnostic& d) { return d.severity == severity; }));
}

std::vector<std::string> DiagnosticSink::failed_files() const {
    std::vector<std::string> files;
    for (const Diagnostic& d : all_) {
        if (d.severity != Severity::kFatal) continue;
        if (std::find(files.begin(), files.end(), d.location.file) == files.end())
            files.push_back(d.location.file);
    }
    return files;
}

}  // namespace phpsafe
