// Thread teams for the two fan-out shapes in the codebase.
//
// WorkerPool is the barrier shape used by the evaluation driver: run(count,
// fn) distributes indices over all workers and blocks until every index is
// done. The seed spawned a fresh std::async fan-out for every (version,
// tool) pair — up to six thread-team launches per evaluation; the pool
// starts its threads once and re-dispatches ranges to them, so repeated
// runs (timing repetitions, bench sweeps) pay thread start-up exactly once.
//
// TaskTeam is the streaming shape used by the analysis service: post() a
// task with a priority and return immediately; team threads continuously
// drain the queue highest-priority-first (FIFO within a priority), so a
// long-running task never blocks the dispatch of unrelated later ones the
// way a batch barrier does.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace phpsafe {

class WorkerPool {
public:
    /// `threads` is the total worker count including the calling thread;
    /// values <= 1 mean run() executes inline with no threads started.
    explicit WorkerPool(int threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    int thread_count() const noexcept {
        return static_cast<int>(threads_.size()) + 1;
    }

    /// Calls fn(i) for every i in [0, count), distributing indices over all
    /// workers (the calling thread participates). Blocks until every index
    /// is done; rethrows the first worker exception. Reusable.
    void run(size_t count, const std::function<void(size_t)>& fn);

    /// Resolves a requested parallelism: values >= 1 pass through; 0 or
    /// negative mean "auto" — the PHPSAFE_JOBS environment variable when
    /// set, otherwise std::thread::hardware_concurrency().
    static int resolve_parallelism(int requested);

private:
    void worker_loop();
    void drain(const std::function<void(size_t)>& fn, size_t count);

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> threads_;

    const std::function<void(size_t)>* job_ = nullptr;
    size_t job_count_ = 0;
    std::atomic<size_t> next_{0};
    int busy_workers_ = 0;
    uint64_t generation_ = 0;
    bool shutdown_ = false;
    std::exception_ptr error_;
};

/// A persistent team of threads draining a priority task queue. Unlike
/// WorkerPool::run there is no barrier: post() enqueues and returns, and
/// each team thread picks the highest-priority queued task (FIFO within a
/// priority) as soon as it frees up. Tasks must not throw — they run user
/// completion logic that owns its own error channel; an escaping exception
/// terminates (std::terminate) rather than being silently dropped.
class TaskTeam {
public:
    /// Starts `threads` (floored at 1) dedicated threads. Tasks always run
    /// on a team thread, never on the caller.
    explicit TaskTeam(int threads);

    /// Resumes a paused queue and runs every remaining task to completion
    /// before joining — queued work is a promise to its submitter.
    ~TaskTeam();

    TaskTeam(const TaskTeam&) = delete;
    TaskTeam& operator=(const TaskTeam&) = delete;

    int thread_count() const noexcept {
        return static_cast<int>(threads_.size());
    }

    /// Enqueues a task. Higher priority runs sooner; equal priorities run
    /// in post order.
    void post(int priority, std::function<void()> task);

    /// Tasks queued but not yet started.
    size_t depth() const;

    /// While paused, threads finish their current task and then idle; the
    /// queue only accumulates. Used by tests to build provable backlogs.
    void pause();
    void resume();

private:
    void thread_loop();
    std::function<void()> pop_locked();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::thread> threads_;
    /// priority → FIFO of tasks at that priority; iteration order is
    /// descending priority via the comparator.
    std::map<int, std::deque<std::function<void()>>, std::greater<int>> queue_;
    size_t depth_ = 0;
    bool paused_ = false;
    bool shutdown_ = false;
};

}  // namespace phpsafe
