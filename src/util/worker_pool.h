// A reusable fixed-size worker pool for the evaluation driver. The seed
// spawned a fresh std::async fan-out for every (version, tool) pair — up to
// six thread-team launches per evaluation; this pool starts its threads
// once and re-dispatches index ranges to them, so repeated runs (timing
// repetitions, bench sweeps) pay thread start-up exactly once.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace phpsafe {

class WorkerPool {
public:
    /// `threads` is the total worker count including the calling thread;
    /// values <= 1 mean run() executes inline with no threads started.
    explicit WorkerPool(int threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    int thread_count() const noexcept {
        return static_cast<int>(threads_.size()) + 1;
    }

    /// Calls fn(i) for every i in [0, count), distributing indices over all
    /// workers (the calling thread participates). Blocks until every index
    /// is done; rethrows the first worker exception. Reusable.
    void run(size_t count, const std::function<void(size_t)>& fn);

    /// Resolves a requested parallelism: values >= 1 pass through; 0 or
    /// negative mean "auto" — the PHPSAFE_JOBS environment variable when
    /// set, otherwise std::thread::hardware_concurrency().
    static int resolve_parallelism(int requested);

private:
    void worker_loop();
    void drain(const std::function<void(size_t)>& fn, size_t count);

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> threads_;

    const std::function<void(size_t)>* job_ = nullptr;
    size_t job_count_ = 0;
    std::atomic<size_t> next_{0};
    int busy_workers_ = 0;
    uint64_t generation_ = 0;
    bool shutdown_ = false;
    std::exception_ptr error_;
};

}  // namespace phpsafe
