// Source file representation and locations shared by the lexer, parser and
// analysis layers. A SourceFile owns its text; SourceLocation is a cheap
// (file, line) pair used in tokens, AST nodes, taint traces and findings.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace phpsafe {

/// A single PHP source file loaded into memory.
///
/// Files are immutable after construction; all downstream structures refer
/// to them by name (plugins can contain duplicate basenames, so names are
/// project-relative paths).
class SourceFile {
public:
    SourceFile(std::string name, std::string text)
        : name_(std::move(name)), text_(std::move(text)) {}

    const std::string& name() const noexcept { return name_; }
    std::string_view text() const noexcept { return text_; }

    /// Number of newline-terminated lines (a trailing partial line counts).
    int line_count() const noexcept;

    /// 1-based line content (without trailing newline); empty if out of range.
    std::string_view line(int line_no) const noexcept;

private:
    std::string name_;
    std::string text_;
};

/// A (file, line) location. `file` is a project-relative path; a default
/// constructed location (empty file, line 0) means "unknown".
struct SourceLocation {
    std::string file;
    int line = 0;

    bool valid() const noexcept { return line > 0; }
    friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// Renders "file:line" (or "<unknown>") for messages and reports.
std::string to_string(const SourceLocation& loc);

}  // namespace phpsafe
