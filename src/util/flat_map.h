// Flat open-addressed hash containers keyed by interned Symbols. These back
// the engine's per-scope variable/alias maps, which the seed kept in
// std::map<std::string, ...>: every variable read paid an O(log n) chain of
// string comparisons plus node-pointer chasing. With interned keys a lookup
// is one multiplicative hash and a short linear probe over contiguous slots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/interner.h"

namespace phpsafe {

namespace detail {

/// Fibonacci hashing: symbol ids are small and dense, so spreading them with
/// the golden-ratio multiplier avoids clustering without a full hash.
inline size_t symbol_slot(Symbol key, size_t mask) noexcept {
    return (key.id() * 2654435769u) & mask;
}

constexpr uint32_t kEmptyKey = 0xFFFFFFFFu;
constexpr uint32_t kTombstoneKey = 0xFFFFFFFEu;

}  // namespace detail

/// Open-addressed Symbol → V map with linear probing and tombstone erase.
/// Iteration order is unspecified; callers that need determinism must sort.
template <typename V>
class SymbolMap {
public:
    SymbolMap() : slots_(kInitialCapacity) {}

    V& operator[](Symbol key) {
        if (V* found = find(key)) return *found;
        if ((used_ + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
        const size_t mask = slots_.size() - 1;
        size_t i = detail::symbol_slot(key, mask);
        while (slots_[i].key != detail::kEmptyKey &&
               slots_[i].key != detail::kTombstoneKey)
            i = (i + 1) & mask;
        if (slots_[i].key == detail::kEmptyKey) ++used_;
        slots_[i].key = key.id();
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
    }

    V* find(Symbol key) noexcept {
        const size_t mask = slots_.size() - 1;
        size_t i = detail::symbol_slot(key, mask);
        for (;;) {
            Slot& slot = slots_[i];
            if (slot.key == detail::kEmptyKey) return nullptr;
            if (slot.key == key.id()) return &slot.value;
            i = (i + 1) & mask;
        }
    }

    const V* find(Symbol key) const noexcept {
        return const_cast<SymbolMap*>(this)->find(key);
    }

    bool contains(Symbol key) const noexcept { return find(key) != nullptr; }

    bool erase(Symbol key) noexcept {
        const size_t mask = slots_.size() - 1;
        size_t i = detail::symbol_slot(key, mask);
        for (;;) {
            Slot& slot = slots_[i];
            if (slot.key == detail::kEmptyKey) return false;
            if (slot.key == key.id()) {
                slot.key = detail::kTombstoneKey;
                slot.value = V{};
                --size_;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    void clear() {
        slots_.assign(kInitialCapacity, Slot{});
        used_ = 0;
        size_ = 0;
    }

    /// Visits every live (Symbol, value) pair.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Slot& slot : slots_)
            if (slot.key != detail::kEmptyKey && slot.key != detail::kTombstoneKey)
                fn(Symbol{slot.key}, slot.value);
    }

private:
    static constexpr size_t kInitialCapacity = 16;  // power of two

    struct Slot {
        uint32_t key = detail::kEmptyKey;
        V value{};
    };

    void rehash(size_t new_capacity) {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_capacity, Slot{});
        used_ = 0;
        size_ = 0;
        for (Slot& slot : old)
            if (slot.key != detail::kEmptyKey && slot.key != detail::kTombstoneKey) {
                const size_t mask = slots_.size() - 1;
                size_t i = detail::symbol_slot(Symbol{slot.key}, mask);
                while (slots_[i].key != detail::kEmptyKey) i = (i + 1) & mask;
                slots_[i].key = slot.key;
                slots_[i].value = std::move(slot.value);
                ++used_;
                ++size_;
            }
    }

    std::vector<Slot> slots_;
    size_t used_ = 0;  ///< live + tombstone slots (load-factor accounting)
    size_t size_ = 0;  ///< live slots
};

/// Symbol set with the same layout (used for `global` alias names).
class SymbolSet {
public:
    void insert(Symbol key) { map_[key] = true; }
    bool contains(Symbol key) const noexcept { return map_.contains(key); }
    size_t size() const noexcept { return map_.size(); }
    void clear() { map_.clear(); }

private:
    SymbolMap<bool> map_;
};

}  // namespace phpsafe
