#include "util/source.h"

namespace phpsafe {

int SourceFile::line_count() const noexcept {
    if (text_.empty()) return 0;
    int lines = 0;
    for (char c : text_)
        if (c == '\n') ++lines;
    if (text_.back() != '\n') ++lines;
    return lines;
}

std::string_view SourceFile::line(int line_no) const noexcept {
    if (line_no < 1) return {};
    std::string_view rest = text_;
    for (int i = 1; !rest.empty(); ++i) {
        const size_t nl = rest.find('\n');
        std::string_view cur = (nl == std::string_view::npos) ? rest : rest.substr(0, nl);
        if (i == line_no) return cur;
        if (nl == std::string_view::npos) break;
        rest.remove_prefix(nl + 1);
    }
    return {};
}

std::string to_string(const SourceLocation& loc) {
    if (!loc.valid()) return "<unknown>";
    return loc.file + ":" + std::to_string(loc.line);
}

}  // namespace phpsafe
