// Diagnostics collection: parse errors, analysis warnings and tool-failure
// records (used to reproduce the paper's "robustness" observations in
// Section V.E, e.g. Pixy failing to analyze 32 files).
#pragma once

#include <string>
#include <vector>

#include "util/source.h"

namespace phpsafe {

enum class Severity {
    kNote,
    kWarning,
    kError,   ///< the construct was skipped but analysis continued
    kFatal,   ///< analysis of the whole file was aborted
};

std::string to_string(Severity s);

struct Diagnostic {
    Severity severity = Severity::kNote;
    SourceLocation location;
    std::string message;
};

/// Accumulates diagnostics during lexing, parsing and analysis.
///
/// Engines keep one DiagnosticSink per run; report code counts fatal
/// diagnostics to measure robustness (files a tool failed to analyze).
class DiagnosticSink {
public:
    void add(Severity severity, SourceLocation loc, std::string message);

    const std::vector<Diagnostic>& diagnostics() const noexcept { return all_; }

    int count(Severity severity) const noexcept;
    bool has_fatal() const noexcept { return count(Severity::kFatal) > 0; }

    /// Files for which at least one kFatal diagnostic was recorded.
    std::vector<std::string> failed_files() const;

    void clear() { all_.clear(); }

private:
    std::vector<Diagnostic> all_;
};

}  // namespace phpsafe
