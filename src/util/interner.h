// String interning for the analysis hot path. The engine resolves variable,
// function and class names millions of times per corpus run; interning turns
// every repeated name into a small integer Symbol so scope maps can hash an
// int instead of comparing strings. PHP name semantics are split: variables
// are case-sensitive (intern), functions/classes are case-insensitive
// (intern_folded lowercases before interning).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace phpsafe {

/// An interned string id. Valid symbols are dense, starting at 0, scoped to
/// the SymbolTable that produced them.
class Symbol {
public:
    static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

    constexpr Symbol() noexcept = default;
    explicit constexpr Symbol(uint32_t id) noexcept : id_(id) {}

    constexpr uint32_t id() const noexcept { return id_; }
    constexpr bool valid() const noexcept { return id_ != kInvalidId; }

    friend constexpr bool operator==(Symbol, Symbol) noexcept = default;
    friend constexpr bool operator<(Symbol a, Symbol b) noexcept {
        return a.id_ < b.id_;
    }

private:
    uint32_t id_ = kInvalidId;
};

/// Open-addressed string → Symbol interner. Symbols are stable for the
/// table's lifetime; name() views are stable too (backing storage is a
/// deque, so strings never move on growth).
class SymbolTable {
public:
    SymbolTable();

    /// Interns `name` exactly (PHP variable semantics: case-sensitive).
    Symbol intern(std::string_view name);

    /// Interns the ASCII-lowercased form of `name` (PHP function/class
    /// semantics: case-insensitive).
    Symbol intern_folded(std::string_view name);

    /// The string a symbol was interned from; empty view if invalid.
    std::string_view name(Symbol symbol) const noexcept;

    size_t size() const noexcept { return names_.size(); }
    void clear();

private:
    struct Slot {
        uint32_t hash = 0;
        uint32_t index = Symbol::kInvalidId;  ///< kInvalidId = empty slot
    };

    Symbol insert(std::string_view name, uint32_t hash);
    void rehash(size_t new_capacity);

    std::deque<std::string> names_;
    std::vector<Slot> slots_;  ///< power-of-two capacity
    size_t used_ = 0;
};

}  // namespace phpsafe
