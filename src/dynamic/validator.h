// Dynamic finding validation — automates the paper's exploit-confirmation
// step (§III.E "executing the attack, which we confirmed in an experiment"
// and the §IV.B.5 manual verification): replays the plugin file with an
// attack payload injected at the finding's input vector and checks whether
// the payload actually breaks out at the sink.
//
//   XSS : the request / database / file seed carries a script payload;
//         confirmed when the raw payload appears in the page output.
//   SQLi: the seed carries a quote-breaking payload; confirmed when a
//         captured SQL query contains the payload unescaped.
//
// This composes static and dynamic analysis the way the paper's §II
// discussion (and its Saner citation) describes: static analysis proposes,
// dynamic execution disposes — statically-reported flows that a runtime
// guard actually stops (is_numeric + exit, whitelists, (int) casts) are
// rejected as false alarms.
#pragma once

#include <string>

#include "core/finding.h"
#include "dynamic/interpreter.h"
#include "php/project.h"

namespace phpsafe::dynamic {

struct ValidationResult {
    bool confirmed = false;
    bool executed = false;      ///< the sink's file ran (budget not exhausted)
    std::string evidence;       ///< output/query excerpt containing the payload
    std::string payload_used;
};

class Validator {
public:
    explicit Validator(const php::Project& project, ExecOptions options = {});

    /// Replays the finding's file with a payload on the finding's input
    /// vector and checks the sink class for breakout.
    ValidationResult validate(const Finding& finding);

    /// Payloads (exposed for tests).
    static std::string xss_payload() { return "<script>alert(31337)</script>"; }
    static std::string sqli_payload() { return "1' OR '1337'='1337"; }

private:
    void seed_vector(Interpreter& interpreter, InputVector vector,
                     const std::string& payload);

    const php::Project& project_;
    ExecOptions options_;
};

}  // namespace phpsafe::dynamic
