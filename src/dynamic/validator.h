// Dynamic finding validation — automates the paper's exploit-confirmation
// step (§III.E "executing the attack, which we confirmed in an experiment"
// and the §IV.B.5 manual verification): replays the plugin file with an
// attack payload injected at the finding's input vector and checks whether
// the payload actually breaks out at the sink.
//
//   XSS : the request / database / file seed carries a script payload;
//         confirmed when the raw payload appears in the page output.
//   SQLi: the seed carries a quote-breaking payload; confirmed when a
//         captured SQL query contains the payload unescaped.
//
// This composes static and dynamic analysis the way the paper's §II
// discussion (and its Saner citation) describes: static analysis proposes,
// dynamic execution disposes — statically-reported flows that a runtime
// guard actually stops (is_numeric + exit, whitelists, (int) casts) are
// rejected as false alarms.
//
// The class splits into reusable pieces on purpose: one replay execution is
// fully determined by (entry file, payload, seeded vectors), and the
// verdict is a pure function of the finding and the captured ExecResult.
// The batch pipeline in validate/validate.h exploits exactly this split —
// findings that share an execution key run the interpreter once and judge
// the shared ExecResult per finding, byte-identical to one-at-a-time
// replay by construction.
#pragma once

#include <string>

#include "core/finding.h"
#include "dynamic/interpreter.h"
#include "php/project.h"

namespace phpsafe::dynamic {

struct ValidationResult {
    bool confirmed = false;
    bool executed = false;      ///< the sink's file ran (budget not exhausted)
    std::string evidence;       ///< output/query excerpt containing the payload
    std::string payload_used;
};

class Validator {
public:
    explicit Validator(const php::Project& project, ExecOptions options = {});

    /// Replays the finding's file with a payload on the finding's input
    /// vector and checks the sink class for breakout.
    ValidationResult validate(const Finding& finding);

    /// Payloads (exposed for tests).
    static std::string xss_payload() { return "<script>alert(31337)</script>"; }
    static std::string sqli_payload() { return "1' OR '1337'='1337"; }

    /// The attack payload a finding of this kind replays with.
    static std::string payload_for(VulnKind kind);

    /// Seeds one interpreter with `payload` on every entry point the vector
    /// covers. Pure function of (vector, payload) — two vectors in the same
    /// seed class produce identical interpreter state.
    static void seed_vector(Interpreter& interpreter, InputVector vector,
                            const std::string& payload);

    /// Canonical representative of a vector's seeding behaviour: vectors
    /// with the same seed class are indistinguishable to seed_vector, so
    /// their replays may share one execution (the batch pipeline's dedup
    /// key). kRequest/kServer/kFiles collapse onto kRequest and
    /// kFunction/kArray/kUnknown onto kUnknown; every other vector is its
    /// own class.
    static InputVector seed_class(InputVector vector);

    /// The verdict for one finding given a completed replay: pure function
    /// of (finding kind, run, payload), shared between validate() and the
    /// batch pipeline so the two can never disagree.
    static ValidationResult judge(const Finding& finding, const ExecResult& run,
                                  const std::string& payload);

private:
    const php::Project& project_;
    ExecOptions options_;
};

}  // namespace phpsafe::dynamic
