#include "dynamic/value.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace phpsafe::dynamic {

Value* ArrayData::find(const std::string& key) {
    for (auto& [k, v] : entries)
        if (k == key) return &v;
    return nullptr;
}

const Value* ArrayData::find(const std::string& key) const {
    for (const auto& [k, v] : entries)
        if (k == key) return &v;
    return nullptr;
}

Value Value::boolean(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
}

Value Value::integer(long i) {
    Value v;
    v.type_ = Type::kInt;
    v.int_ = i;
    return v;
}

Value Value::real(double d) {
    Value v;
    v.type_ = Type::kFloat;
    v.float_ = d;
    return v;
}

Value Value::string(std::string s) {
    Value v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
}

Value Value::array() {
    Value v;
    v.type_ = Type::kArray;
    v.array_ = std::make_shared<ArrayData>();
    return v;
}

Value Value::object(std::string class_name) {
    Value v;
    v.type_ = Type::kObject;
    v.object_ = std::make_shared<ObjectData>();
    v.object_->class_name = std::move(class_name);
    return v;
}

bool Value::to_bool() const {
    switch (type_) {
        case Type::kNull: return false;
        case Type::kBool: return bool_;
        case Type::kInt: return int_ != 0;
        case Type::kFloat: return float_ != 0;
        case Type::kString: return !string_.empty() && string_ != "0";
        case Type::kArray: return array_ && !array_->entries.empty();
        case Type::kObject: return true;
    }
    return false;
}

long Value::to_int() const {
    switch (type_) {
        case Type::kNull: return 0;
        case Type::kBool: return bool_ ? 1 : 0;
        case Type::kInt: return int_;
        case Type::kFloat: return static_cast<long>(float_);
        case Type::kString: return std::strtol(string_.c_str(), nullptr, 10);
        case Type::kArray: return array_ && !array_->entries.empty() ? 1 : 0;
        case Type::kObject: return 1;
    }
    return 0;
}

double Value::to_float() const {
    switch (type_) {
        case Type::kString: return std::strtod(string_.c_str(), nullptr);
        case Type::kFloat: return float_;
        default: return static_cast<double>(to_int());
    }
}

std::string Value::to_string() const {
    switch (type_) {
        case Type::kNull: return "";
        case Type::kBool: return bool_ ? "1" : "";
        case Type::kInt: return std::to_string(int_);
        case Type::kFloat: {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%g", float_);
            return buf;
        }
        case Type::kString: return string_;
        case Type::kArray: return "Array";
        case Type::kObject: return "Object";
    }
    return "";
}

bool Value::loose_equals(const Value& other) const {
    if (type_ == Type::kString && other.type_ == Type::kString) {
        // PHP 5/7: two numeric strings compare numerically ("1e1" == "10").
        if (is_numeric_string(string_) && is_numeric_string(other.string_))
            return to_float() == other.to_float();
        return string_ == other.string_;
    }
    if (type_ == Type::kNull || other.type_ == Type::kNull)
        return to_bool() == other.to_bool();
    if (type_ == Type::kBool || other.type_ == Type::kBool)
        return to_bool() == other.to_bool();
    if (is_numeric_string(to_string()) && is_numeric_string(other.to_string()))
        return to_float() == other.to_float();
    return to_string() == other.to_string();
}

Value Value::get_element(const std::string& key) const {
    if (type_ != Type::kArray || !array_) return Value();
    const Value* found = array_->find(key);
    return found ? *found : Value();
}

void Value::set_element(const std::string& key, Value value) {
    if (type_ != Type::kArray) {
        *this = array();
    }
    if (Value* found = array_->find(key)) {
        *found = std::move(value);
        return;
    }
    array_->entries.emplace_back(key, std::move(value));
    // Keep next_index ahead of explicit numeric keys.
    char* end = nullptr;
    const long n = std::strtol(key.c_str(), &end, 10);
    if (end && *end == '\0' && n >= array_->next_index) array_->next_index = n + 1;
}

void Value::push_element(Value value) {
    if (type_ != Type::kArray) *this = array();
    set_element(std::to_string(array_->next_index), std::move(value));
}

size_t Value::array_size() const {
    return type_ == Type::kArray && array_ ? array_->entries.size() : 0;
}

bool is_numeric_string(const std::string& s) {
    size_t i = 0;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    bool digits = false, dot = false, exponent = false;
    for (; i < s.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(s[i]))) {
            digits = true;
        } else if (s[i] == '.' && !dot && !exponent) {
            dot = true;
        } else if ((s[i] == 'e' || s[i] == 'E') && digits && !exponent) {
            exponent = true;
            digits = false;  // exponent needs its own digits
            if (i + 1 < s.size() && (s[i + 1] == '+' || s[i + 1] == '-')) ++i;
        } else {
            return false;
        }
    }
    return digits;
}

}  // namespace phpsafe::dynamic
