// Concrete mini-interpreter for the PHP AST — the dynamic half of the
// validation pipeline. The paper confirmed reported vulnerabilities by
// actually exploiting them ("which we confirmed in an experiment", §III.E)
// and manually verified every tool report (§IV.B.5); this interpreter
// automates that step: it executes a plugin file with attacker-controlled
// superglobals and seeded database/file contents, captures everything the
// plugin outputs and every SQL query it issues, and lets the validator
// decide whether a payload actually comes through.
//
// It is an intentionally bounded evaluator (step/loop/call budgets), not a
// full PHP runtime: enough semantics to execute CMS-plugin code paths —
// loose typing, arrays, objects, user functions/methods, includes, the
// sanitization built-ins — deterministically.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dynamic/value.h"
#include "php/project.h"

namespace phpsafe::dynamic {

struct ExecOptions {
    int max_steps = 200000;       ///< statement/expression budget
    int max_loop_iterations = 512;
    int max_call_depth = 48;
    int max_include_depth = 16;
};

struct ExecResult {
    std::string output;                ///< everything echoed/printed
    std::vector<std::string> queries;  ///< SQL strings sent to query sinks
    bool completed = false;            ///< ran to the end of the file
    bool exited = false;               ///< exit/die was executed
    bool budget_exhausted = false;
    std::string error;                 ///< first runtime error, if any
};

class Interpreter {
public:
    Interpreter(const php::Project& project, ExecOptions options = {});

    /// Sets one key of a superglobal ($_GET['id'] = "7").
    void set_superglobal(const std::string& name, const std::string& key,
                         std::string value);
    /// Default returned for any key of the superglobal that was not set —
    /// the validator uses this to flood the request with a payload.
    void set_superglobal_default(const std::string& name, std::string value);

    /// Seeds the stub database: every row fetched (wpdb / mysql_fetch_*)
    /// has all columns equal to `cell`; `rows` rows per result set.
    void seed_database(std::string cell, int rows = 2);
    /// Seeds file reads (fgets/fread/file_get_contents).
    void seed_file_contents(std::string contents);
    /// Seeds get_option / get_*_meta / get_transient returns.
    void seed_cms_store(std::string value);

    /// Executes one project file as the entry point.
    ExecResult run_file(const std::string& file_name);

private:
    struct Frame {
        // Transparent comparators: AST names are string_views into the
        // parsed file's arena; lookups must not allocate a key temporary.
        std::map<std::string, Value, std::less<>> vars;
        std::set<std::string, std::less<>> global_aliases;
        /// `static $x` declarations seen in this frame → persistent slot.
        std::map<std::string, Value*, std::less<>> static_bindings;
        /// Values produced by `yield` in this frame (generator semantics:
        /// the call returns the collected values as an array).
        std::vector<Value> yielded;
        const php::ClassDecl* current_class = nullptr;
        Value this_object;
        bool is_global = false;
    };

    enum class Flow { kNormal, kBreak, kContinue, kReturn, kExit };

    // Statements.
    Flow exec_stmts(const ArenaVector<php::StmtPtr>& stmts, Frame& frame);
    Flow exec_stmt(const php::Stmt& stmt, Frame& frame);

    // Expressions.
    Value eval(const php::Expr& expr, Frame& frame);
    Value eval_variable(const php::Variable& var, Frame& frame);
    Value eval_call(const php::FunctionCall& call, Frame& frame);
    Value eval_method(const php::MethodCall& call, Frame& frame);
    Value eval_static_call(const php::StaticCall& call, Frame& frame);
    Value eval_new(const php::New& expr, Frame& frame);
    Value eval_binary(const php::Binary& bin, Frame& frame);
    Value eval_assign(const php::Assign& assign, Frame& frame);
    void assign_to(const php::Expr& target, Value value, Frame& frame);
    Value* lvalue_variable(std::string_view name, Frame& frame);

    // Calls.
    Value call_user_function(const php::FunctionRef& ref,
                             const std::vector<Value>& args, Value this_object,
                             Frame& caller);
    bool call_builtin(const std::string& lower_name, std::vector<Value>& args,
                      const php::FunctionCall* call, Frame& frame, Value& out);
    Value wpdb_method(const std::string& method, const std::vector<Value>& args);

    Value make_result_handle();
    Value make_db_row();

    bool step();  ///< consumes budget; false when exhausted
    void emit(std::string_view text) { result_.output += text; }

    const php::Project& project_;
    ExecOptions options_;
    ExecResult result_;
    Frame globals_;
    std::map<std::string, Value, std::less<>> superglobals_;
    std::map<std::string, std::string, std::less<>> superglobal_defaults_;
    std::string db_cell_ = "db-value";
    int db_rows_ = 2;
    std::string file_contents_ = "file-contents";
    std::string cms_store_ = "option-value";
    int steps_ = 0;
    int call_depth_ = 0;
    /// Classes currently inside eval_new: a property default that `new`s
    /// its own class (directly or via a cycle) must not re-enter default
    /// initialization forever.
    std::set<std::string> constructing_classes_;
    std::vector<std::string> include_stack_;
    /// `static $x` slots persisting across calls, keyed by declaring
    /// statement pointer + variable name.
    std::map<std::pair<const void*, std::string>, Value> static_slots_;
    Value return_value_;
    Flow pending_flow_ = Flow::kNormal;
};

}  // namespace phpsafe::dynamic
