#include "dynamic/validator.h"

#include "util/strings.h"

namespace phpsafe::dynamic {

namespace {

/// Case-insensitive substring search: browsers execute `<SCRIPT>` exactly
/// like `<script>`, so a payload that went through strtoupper() still
/// demonstrates the XSS.
size_t ifind(const std::string& haystack, const std::string& needle) {
    const std::string h = ascii_lower(haystack);
    return h.find(ascii_lower(needle));
}

}  // namespace

Validator::Validator(const php::Project& project, ExecOptions options)
    : project_(project), options_(options) {}

std::string Validator::payload_for(VulnKind kind) {
    return kind == VulnKind::kXss ? xss_payload() : sqli_payload();
}

void Validator::seed_vector(Interpreter& interpreter, InputVector vector,
                            const std::string& payload) {
    switch (vector) {
        case InputVector::kGet:
            interpreter.set_superglobal_default("$_GET", payload);
            break;
        case InputVector::kPost:
            interpreter.set_superglobal_default("$_POST", payload);
            break;
        case InputVector::kCookie:
            interpreter.set_superglobal_default("$_COOKIE", payload);
            break;
        case InputVector::kRequest:
        case InputVector::kServer:
        case InputVector::kFiles:
            interpreter.set_superglobal_default("$_REQUEST", payload);
            interpreter.set_superglobal_default("$_SERVER", payload);
            interpreter.set_superglobal_default("$_FILES", payload);
            break;
        case InputVector::kDatabase:
            interpreter.seed_database(payload);
            interpreter.seed_cms_store(payload);
            break;
        case InputVector::kFile:
            interpreter.seed_file_contents(payload);
            break;
        case InputVector::kFunction:
        case InputVector::kArray:
        case InputVector::kUnknown:
            // Flood everything: the entry point is not precisely known.
            interpreter.set_superglobal_default("$_GET", payload);
            interpreter.set_superglobal_default("$_POST", payload);
            interpreter.set_superglobal_default("$_COOKIE", payload);
            interpreter.seed_database(payload);
            interpreter.seed_file_contents(payload);
            interpreter.seed_cms_store(payload);
            break;
    }
}

InputVector Validator::seed_class(InputVector vector) {
    switch (vector) {
        case InputVector::kRequest:
        case InputVector::kServer:
        case InputVector::kFiles:
            return InputVector::kRequest;
        case InputVector::kFunction:
        case InputVector::kArray:
        case InputVector::kUnknown:
            return InputVector::kUnknown;
        default:
            return vector;
    }
}

ValidationResult Validator::judge(const Finding& finding, const ExecResult& run,
                                  const std::string& payload) {
    ValidationResult result;
    result.payload_used = payload;
    result.executed = run.error.empty();

    if (finding.kind == VulnKind::kXss) {
        const size_t pos = ifind(run.output, payload);
        if (pos != std::string::npos) {
            result.confirmed = true;
            const size_t begin = pos > 30 ? pos - 30 : 0;
            result.evidence = run.output.substr(
                begin, std::min<size_t>(run.output.size() - begin,
                                        payload.size() + 60));
        }
        return result;
    }

    // SQLi: the payload's quote must reach a query unescaped — addslashes
    // turns `'` into `\'`, intval turns the whole payload into `1`, and
    // wpdb::prepare quotes and escapes, so only a truly unguarded flow
    // still contains the raw payload substring.
    for (const std::string& query : run.queries) {
        if (query.find(payload) != std::string::npos) {
            result.confirmed = true;
            result.evidence = query.substr(0, 120);
            return result;
        }
    }
    return result;
}

ValidationResult Validator::validate(const Finding& finding) {
    const std::string payload = payload_for(finding.kind);
    Interpreter interpreter(project_, options_);
    seed_vector(interpreter, finding.vector, payload);
    const ExecResult run = interpreter.run_file(finding.location.file);
    return judge(finding, run, payload);
}

}  // namespace phpsafe::dynamic
