#include "dynamic/validator.h"

#include "util/strings.h"

namespace phpsafe::dynamic {

namespace {

/// Case-insensitive substring search: browsers execute `<SCRIPT>` exactly
/// like `<script>`, so a payload that went through strtoupper() still
/// demonstrates the XSS.
size_t ifind(const std::string& haystack, const std::string& needle) {
    const std::string h = ascii_lower(haystack);
    return h.find(ascii_lower(needle));
}

}  // namespace

Validator::Validator(const php::Project& project, ExecOptions options)
    : project_(project), options_(options) {}

void Validator::seed_vector(Interpreter& interpreter, InputVector vector,
                            const std::string& payload) {
    switch (vector) {
        case InputVector::kGet:
            interpreter.set_superglobal_default("$_GET", payload);
            break;
        case InputVector::kPost:
            interpreter.set_superglobal_default("$_POST", payload);
            break;
        case InputVector::kCookie:
            interpreter.set_superglobal_default("$_COOKIE", payload);
            break;
        case InputVector::kRequest:
        case InputVector::kServer:
        case InputVector::kFiles:
            interpreter.set_superglobal_default("$_REQUEST", payload);
            interpreter.set_superglobal_default("$_SERVER", payload);
            interpreter.set_superglobal_default("$_FILES", payload);
            break;
        case InputVector::kDatabase:
            interpreter.seed_database(payload);
            interpreter.seed_cms_store(payload);
            break;
        case InputVector::kFile:
            interpreter.seed_file_contents(payload);
            break;
        case InputVector::kFunction:
        case InputVector::kArray:
        case InputVector::kUnknown:
            // Flood everything: the entry point is not precisely known.
            interpreter.set_superglobal_default("$_GET", payload);
            interpreter.set_superglobal_default("$_POST", payload);
            interpreter.set_superglobal_default("$_COOKIE", payload);
            interpreter.seed_database(payload);
            interpreter.seed_file_contents(payload);
            interpreter.seed_cms_store(payload);
            break;
    }
}

ValidationResult Validator::validate(const Finding& finding) {
    ValidationResult result;
    result.payload_used =
        finding.kind == VulnKind::kXss ? xss_payload() : sqli_payload();

    Interpreter interpreter(project_, options_);
    seed_vector(interpreter, finding.vector, result.payload_used);
    const ExecResult run = interpreter.run_file(finding.location.file);
    result.executed = run.error.empty();

    if (finding.kind == VulnKind::kXss) {
        const size_t pos = ifind(run.output, result.payload_used);
        if (pos != std::string::npos) {
            result.confirmed = true;
            const size_t begin = pos > 30 ? pos - 30 : 0;
            result.evidence = run.output.substr(
                begin, std::min<size_t>(run.output.size() - begin,
                                        result.payload_used.size() + 60));
        }
        return result;
    }

    // SQLi: the payload's quote must reach a query unescaped — addslashes
    // turns `'` into `\'`, intval turns the whole payload into `1`, and
    // wpdb::prepare quotes and escapes, so only a truly unguarded flow
    // still contains the raw payload substring.
    for (const std::string& query : run.queries) {
        if (query.find(result.payload_used) != std::string::npos) {
            result.confirmed = true;
            result.evidence = query.substr(0, 120);
            return result;
        }
    }
    return result;
}

}  // namespace phpsafe::dynamic
