// Concrete PHP-ish values for the dynamic validation interpreter
// (src/dynamic/interpreter.h). Implements the loose typing the exploit
// paths rely on: string/number juggling, truthiness, arrays as ordered
// string-keyed maps with reference semantics, objects with identity.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace phpsafe::dynamic {

class Value;

struct ArrayData {
    // Preserves insertion order (PHP arrays are ordered maps).
    std::vector<std::pair<std::string, Value>> entries;
    long next_index = 0;

    Value* find(const std::string& key);
    const Value* find(const std::string& key) const;
};

struct ObjectData {
    std::string class_name;  ///< lowercased
    std::map<std::string, Value, std::less<>> properties;
    /// Internal cursor for result-set stub objects (mysql result handles).
    size_t cursor = 0;
    /// Set for closure values ("__closure" objects): the AST node to run.
    const void* closure_node = nullptr;
};

class Value {
public:
    enum class Type { kNull, kBool, kInt, kFloat, kString, kArray, kObject };

    Value() = default;
    static Value null() { return Value(); }
    static Value boolean(bool b);
    static Value integer(long v);
    static Value real(double v);
    static Value string(std::string s);
    static Value array();
    static Value object(std::string class_name);

    Type type() const noexcept { return type_; }
    bool is_null() const noexcept { return type_ == Type::kNull; }
    bool is_array() const noexcept { return type_ == Type::kArray; }
    bool is_object() const noexcept { return type_ == Type::kObject; }
    bool is_string() const noexcept { return type_ == Type::kString; }

    /// PHP-style coercions.
    bool to_bool() const;
    long to_int() const;
    double to_float() const;
    std::string to_string() const;

    /// PHP loose comparison (== semantics, simplified).
    bool loose_equals(const Value& other) const;

    /// Array access (creates the slot on mutation paths).
    Value get_element(const std::string& key) const;
    void set_element(const std::string& key, Value value);
    void push_element(Value value);  ///< $a[] = ...
    size_t array_size() const;

    /// Shared array/object payloads (PHP 5 objects are handles; arrays here
    /// share too, which is fine for the validation workloads).
    std::shared_ptr<ArrayData> array_data() const { return array_; }
    std::shared_ptr<ObjectData> object_data() const { return object_; }

private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    long int_ = 0;
    double float_ = 0;
    std::string string_;
    std::shared_ptr<ArrayData> array_;
    std::shared_ptr<ObjectData> object_;
};

/// True if the string is a PHP "numeric string" (is_numeric semantics).
bool is_numeric_string(const std::string& s);

}  // namespace phpsafe::dynamic
