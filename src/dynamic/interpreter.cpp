#include "dynamic/interpreter.h"

#include <algorithm>
#include <regex>

#include "util/strings.h"

namespace phpsafe::dynamic {

using php::NodeKind;

namespace {

std::string php_htmlspecialchars(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&#039;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string php_addslashes(const std::string& in) {
    std::string out;
    for (char c : in) {
        if (c == '\'' || c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

std::string php_stripslashes(const std::string& in) {
    std::string out;
    for (size_t i = 0; i < in.size(); ++i) {
        if (in[i] == '\\' && i + 1 < in.size()) ++i;
        out += in[i];
    }
    return out;
}

std::string php_strip_tags(const std::string& in) {
    std::string out;
    bool in_tag = false;
    for (char c : in) {
        if (c == '<') in_tag = true;
        else if (c == '>') in_tag = false;
        else if (!in_tag) out += c;
    }
    return out;
}

/// Best-effort PCRE → std::regex translation: strips delimiters and flags.
bool pcre_match(const std::string& pattern, const std::string& subject,
                std::smatch* match_out) {
    if (pattern.size() < 2) return false;
    const char delim = pattern.front();
    const size_t end = pattern.rfind(delim);
    if (end == 0) return false;
    std::string body = pattern.substr(1, end - 1);
    const std::string flags = pattern.substr(end + 1);
    auto options = std::regex::ECMAScript;
    if (flags.find('i') != std::string::npos) options |= std::regex::icase;
    try {
        const std::regex re(body, options);
        std::smatch m;
        const bool matched = std::regex_search(subject, m, re);
        if (match_out) *match_out = m;
        return matched;
    } catch (const std::regex_error&) {
        return false;
    }
}

}  // namespace

Interpreter::Interpreter(const php::Project& project, ExecOptions options)
    : project_(project), options_(options) {
    globals_.is_global = true;
    for (const char* sg : {"$_GET", "$_POST", "$_COOKIE", "$_REQUEST", "$_SERVER",
                           "$_FILES"})
        superglobals_[sg] = Value::array();
}

void Interpreter::set_superglobal(const std::string& name, const std::string& key,
                                  std::string value) {
    superglobals_[name].set_element(key, Value::string(std::move(value)));
}

void Interpreter::set_superglobal_default(const std::string& name,
                                          std::string value) {
    superglobal_defaults_[name] = std::move(value);
}

void Interpreter::seed_database(std::string cell, int rows) {
    db_cell_ = std::move(cell);
    db_rows_ = rows;
}

void Interpreter::seed_file_contents(std::string contents) {
    file_contents_ = std::move(contents);
}

void Interpreter::seed_cms_store(std::string value) {
    cms_store_ = std::move(value);
}

bool Interpreter::step() {
    if (pending_flow_ == Flow::kExit) return false;
    if (++steps_ > options_.max_steps) {
        result_.budget_exhausted = true;
        return false;
    }
    return true;
}

Value Interpreter::make_result_handle() {
    Value handle = Value::object("__result");
    handle.object_data()->cursor = 0;
    return handle;
}

Value Interpreter::make_db_row() { return Value::object("__dbrow"); }

ExecResult Interpreter::run_file(const std::string& file_name) {
    result_ = ExecResult{};
    steps_ = 0;
    call_depth_ = 0;
    constructing_classes_.clear();
    pending_flow_ = Flow::kNormal;
    globals_.vars.clear();
    include_stack_.clear();

    // The $wpdb global every WordPress request provides.
    Value wpdb = Value::object("wpdb");
    wpdb.object_data()->properties["prefix"] = Value::string("wp_");
    globals_.vars["$wpdb"] = wpdb;

    const php::ParsedFile* file = project_.resolve_include(file_name);
    if (!file) {
        result_.error = "file not found: " + file_name;
        return result_;
    }
    include_stack_.push_back(file->source->name());
    const Flow flow = exec_stmts(file->unit.statements, globals_);
    result_.completed =
        flow == Flow::kNormal && !result_.budget_exhausted && result_.error.empty();
    result_.exited = pending_flow_ == Flow::kExit || flow == Flow::kExit;
    return result_;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Interpreter::Flow Interpreter::exec_stmts(const ArenaVector<php::StmtPtr>& stmts,
                                          Frame& frame) {
    for (const php::StmtPtr& stmt : stmts) {
        if (!stmt) continue;
        const Flow flow = exec_stmt(*stmt, frame);
        if (flow != Flow::kNormal) return flow;
    }
    return Flow::kNormal;
}

Interpreter::Flow Interpreter::exec_stmt(const php::Stmt& stmt, Frame& frame) {
    if (!step()) return Flow::kExit;
    switch (stmt.kind) {
        case NodeKind::kExprStmt: {
            const auto& n = static_cast<const php::ExprStmt&>(stmt);
            if (n.expr) eval(*n.expr, frame);
            return pending_flow_ == Flow::kExit ? Flow::kExit : Flow::kNormal;
        }
        case NodeKind::kEchoStmt: {
            const auto& n = static_cast<const php::EchoStmt&>(stmt);
            for (const php::ExprPtr& arg : n.args) {
                if (!arg) continue;
                emit(eval(*arg, frame).to_string());
                if (pending_flow_ == Flow::kExit) return Flow::kExit;
            }
            return Flow::kNormal;
        }
        case NodeKind::kInlineHtmlStmt:
            emit(static_cast<const php::InlineHtmlStmt&>(stmt).html);
            return Flow::kNormal;
        case NodeKind::kBlock:
            return exec_stmts(static_cast<const php::Block&>(stmt).statements, frame);
        case NodeKind::kIfStmt: {
            const auto& n = static_cast<const php::IfStmt&>(stmt);
            const bool cond = n.cond ? eval(*n.cond, frame).to_bool() : false;
            if (pending_flow_ == Flow::kExit) return Flow::kExit;
            if (cond) return n.then_branch ? exec_stmt(*n.then_branch, frame)
                                           : Flow::kNormal;
            return n.else_branch ? exec_stmt(*n.else_branch, frame) : Flow::kNormal;
        }
        case NodeKind::kWhileStmt: {
            const auto& n = static_cast<const php::WhileStmt&>(stmt);
            for (int i = 0; i < options_.max_loop_iterations; ++i) {
                if (!n.cond || !eval(*n.cond, frame).to_bool()) return Flow::kNormal;
                if (pending_flow_ == Flow::kExit) return Flow::kExit;
                const Flow flow = n.body ? exec_stmt(*n.body, frame) : Flow::kNormal;
                if (flow == Flow::kBreak) return Flow::kNormal;
                if (flow == Flow::kReturn || flow == Flow::kExit) return flow;
            }
            result_.budget_exhausted = true;
            return Flow::kNormal;
        }
        case NodeKind::kDoWhileStmt: {
            const auto& n = static_cast<const php::DoWhileStmt&>(stmt);
            for (int i = 0; i < options_.max_loop_iterations; ++i) {
                const Flow flow = n.body ? exec_stmt(*n.body, frame) : Flow::kNormal;
                if (flow == Flow::kBreak) return Flow::kNormal;
                if (flow == Flow::kReturn || flow == Flow::kExit) return flow;
                if (!n.cond || !eval(*n.cond, frame).to_bool()) return Flow::kNormal;
            }
            result_.budget_exhausted = true;
            return Flow::kNormal;
        }
        case NodeKind::kForStmt: {
            const auto& n = static_cast<const php::ForStmt&>(stmt);
            for (const php::ExprPtr& e : n.init)
                if (e) eval(*e, frame);
            for (int i = 0; i < options_.max_loop_iterations; ++i) {
                bool cond = true;
                for (const php::ExprPtr& e : n.cond)
                    if (e) cond = eval(*e, frame).to_bool();
                if (!cond) return Flow::kNormal;
                const Flow flow = n.body ? exec_stmt(*n.body, frame) : Flow::kNormal;
                if (flow == Flow::kBreak) return Flow::kNormal;
                if (flow == Flow::kReturn || flow == Flow::kExit) return flow;
                for (const php::ExprPtr& e : n.update)
                    if (e) eval(*e, frame);
            }
            result_.budget_exhausted = true;
            return Flow::kNormal;
        }
        case NodeKind::kForeachStmt: {
            const auto& n = static_cast<const php::ForeachStmt&>(stmt);
            if (!n.iterable) return Flow::kNormal;
            const Value iterable = eval(*n.iterable, frame);
            if (!iterable.is_array() || !iterable.array_data())
                return Flow::kNormal;
            // Copy the entry list: bodies may mutate the array.
            const auto entries = iterable.array_data()->entries;
            int iterations = 0;
            for (const auto& [key, value] : entries) {
                if (++iterations > options_.max_loop_iterations) break;
                if (n.key_var) assign_to(*n.key_var, Value::string(key), frame);
                if (n.value_var) assign_to(*n.value_var, value, frame);
                const Flow flow = n.body ? exec_stmt(*n.body, frame) : Flow::kNormal;
                if (flow == Flow::kBreak) return Flow::kNormal;
                if (flow == Flow::kReturn || flow == Flow::kExit) return flow;
            }
            return Flow::kNormal;
        }
        case NodeKind::kSwitchStmt: {
            const auto& n = static_cast<const php::SwitchStmt&>(stmt);
            if (!n.subject) return Flow::kNormal;
            const Value subject = eval(*n.subject, frame);
            size_t start = n.cases.size();
            size_t default_index = n.cases.size();
            for (size_t i = 0; i < n.cases.size(); ++i) {
                if (!n.cases[i].match) {
                    default_index = i;
                    continue;
                }
                if (subject.loose_equals(eval(*n.cases[i].match, frame))) {
                    start = i;
                    break;
                }
            }
            if (start == n.cases.size()) start = default_index;
            for (size_t i = start; i < n.cases.size(); ++i) {
                const Flow flow = exec_stmts(n.cases[i].body, frame);
                if (flow == Flow::kBreak) return Flow::kNormal;
                if (flow != Flow::kNormal) return flow;
            }
            return Flow::kNormal;
        }
        case NodeKind::kBreakStmt: return Flow::kBreak;
        case NodeKind::kContinueStmt: return Flow::kContinue;
        case NodeKind::kReturnStmt: {
            const auto& n = static_cast<const php::ReturnStmt&>(stmt);
            return_value_ = n.value ? eval(*n.value, frame) : Value();
            return pending_flow_ == Flow::kExit ? Flow::kExit : Flow::kReturn;
        }
        case NodeKind::kGlobalStmt: {
            const auto& n = static_cast<const php::GlobalStmt&>(stmt);
            for (const std::string_view name : n.names)
                frame.global_aliases.emplace(name);
            return Flow::kNormal;
        }
        case NodeKind::kStaticVarStmt: {
            // PHP statics persist across calls: bind the frame variable to
            // the persistent slot's current value; write-back happens when
            // the frame variable is re-read through the same statement on
            // the next call (value-copy approximation refreshed per call).
            const auto& n = static_cast<const php::StaticVarStmt&>(stmt);
            for (const auto& [name, init] : n.vars) {
                const auto key =
                    std::make_pair(static_cast<const void*>(&stmt), std::string(name));
                auto slot = static_slots_.find(key);
                if (slot == static_slots_.end()) {
                    Value initial = init ? eval(*init, frame) : Value();
                    slot = static_slots_.emplace(key, std::move(initial)).first;
                }
                frame.vars[std::string(name)] = slot->second;
                frame.static_bindings[std::string(name)] = &slot->second;
            }
            return Flow::kNormal;
        }
        case NodeKind::kUnsetStmt: {
            const auto& n = static_cast<const php::UnsetStmt&>(stmt);
            for (const php::ExprPtr& var : n.vars) {
                if (var && var->kind == NodeKind::kVariable) {
                    const auto& v = static_cast<const php::Variable&>(*var);
                    const auto vit = frame.vars.find(v.name);
                    if (vit != frame.vars.end()) frame.vars.erase(vit);
                    if (frame.is_global || frame.global_aliases.count(v.name)) {
                        const auto git = globals_.vars.find(v.name);
                        if (git != globals_.vars.end()) globals_.vars.erase(git);
                    }
                }
            }
            return Flow::kNormal;
        }
        case NodeKind::kTryStmt: {
            const auto& n = static_cast<const php::TryStmt&>(stmt);
            const Flow flow = exec_stmts(n.body, frame);
            exec_stmts(n.finally_body, frame);
            return flow;
        }
        case NodeKind::kThrowStmt:
            result_.error = "uncaught exception";
            return Flow::kExit;
        case NodeKind::kNamespaceStmt:
            return exec_stmts(static_cast<const php::NamespaceStmt&>(stmt).body,
                              frame);
        case NodeKind::kFunctionDecl:
        case NodeKind::kClassDecl:
        case NodeKind::kUseStmt:
        case NodeKind::kConstStmt:
            return Flow::kNormal;
        default:
            return Flow::kNormal;
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value Interpreter::eval(const php::Expr& expr, Frame& frame) {
    if (!step()) return Value();
    switch (expr.kind) {
        case NodeKind::kLiteral: {
            const auto& n = static_cast<const php::Literal&>(expr);
            switch (n.type) {
                case php::Literal::Type::kString:
                    return Value::string(std::string(n.value));
                case php::Literal::Type::kInt:
                    return Value::integer(
                        std::strtol(std::string(n.value).c_str(), nullptr, 0));
                case php::Literal::Type::kFloat:
                    return Value::real(
                        std::strtod(std::string(n.value).c_str(), nullptr));
                case php::Literal::Type::kBool:
                    return Value::boolean(n.value == "true");
                case php::Literal::Type::kNull: return Value();
            }
            return Value();
        }
        case NodeKind::kInterpString: {
            const auto& n = static_cast<const php::InterpString&>(expr);
            std::string out;
            for (const php::ExprPtr& part : n.parts)
                if (part) out += eval(*part, frame).to_string();
            return Value::string(std::move(out));
        }
        case NodeKind::kVariable:
            return eval_variable(static_cast<const php::Variable&>(expr), frame);
        case NodeKind::kArrayAccess: {
            const auto& n = static_cast<const php::ArrayAccess&>(expr);
            if (!n.base) return Value();
            // Superglobal element with validator default flooding.
            if (n.base->kind == NodeKind::kVariable) {
                const auto& base = static_cast<const php::Variable&>(*n.base);
                const auto sg = superglobals_.find(base.name);
                if (sg != superglobals_.end()) {
                    const std::string key =
                        n.index ? eval(*n.index, frame).to_string() : "";
                    if (const Value* v = sg->second.array_data()->find(key))
                        return *v;
                    const auto dflt = superglobal_defaults_.find(base.name);
                    if (dflt != superglobal_defaults_.end())
                        return Value::string(dflt->second);
                    return Value();
                }
            }
            const Value base = eval(*n.base, frame);
            const std::string key = n.index ? eval(*n.index, frame).to_string() : "";
            if (base.is_object() && base.object_data()->class_name == "__dbrow")
                return Value::string(db_cell_);
            if (base.is_string()) {
                const long i = std::strtol(key.c_str(), nullptr, 10);
                const std::string s = base.to_string();
                if (i >= 0 && static_cast<size_t>(i) < s.size())
                    return Value::string(std::string(1, s[i]));
                return Value::string("");
            }
            return base.get_element(key);
        }
        case NodeKind::kPropertyAccess: {
            const auto& n = static_cast<const php::PropertyAccess&>(expr);
            if (!n.object) return Value();
            const Value object = eval(*n.object, frame);
            if (!object.is_object()) return Value();
            if (object.object_data()->class_name == "__dbrow")
                return Value::string(db_cell_);
            const auto it = object.object_data()->properties.find(n.property);
            return it != object.object_data()->properties.end() ? it->second
                                                                : Value();
        }
        case NodeKind::kStaticPropertyAccess: {
            const auto& n = static_cast<const php::StaticPropertyAccess&>(expr);
            std::string skey = "::";
            skey += ascii_lower(n.class_name);
            skey += "::$";
            skey += n.property;
            const auto it = globals_.vars.find(skey);
            return it != globals_.vars.end() ? it->second : Value();
        }
        case NodeKind::kClassConstAccess:
            return Value();
        case NodeKind::kFunctionCall:
            return eval_call(static_cast<const php::FunctionCall&>(expr), frame);
        case NodeKind::kMethodCall:
            return eval_method(static_cast<const php::MethodCall&>(expr), frame);
        case NodeKind::kStaticCall:
            return eval_static_call(static_cast<const php::StaticCall&>(expr), frame);
        case NodeKind::kNew:
            return eval_new(static_cast<const php::New&>(expr), frame);
        case NodeKind::kAssign:
            return eval_assign(static_cast<const php::Assign&>(expr), frame);
        case NodeKind::kBinary:
            return eval_binary(static_cast<const php::Binary&>(expr), frame);
        case NodeKind::kUnary: {
            const auto& n = static_cast<const php::Unary&>(expr);
            if (!n.operand) return Value();
            const Value v = eval(*n.operand, frame);
            switch (n.op) {
                case php::UnaryOp::kNot: return Value::boolean(!v.to_bool());
                case php::UnaryOp::kMinus: return Value::integer(-v.to_int());
                case php::UnaryOp::kPlus: return Value::integer(v.to_int());
                case php::UnaryOp::kBitNot: return Value::integer(~v.to_int());
                case php::UnaryOp::kSuppress: return v;
            }
            return v;
        }
        case NodeKind::kCast: {
            const auto& n = static_cast<const php::Cast&>(expr);
            if (!n.operand) return Value();
            const Value v = eval(*n.operand, frame);
            if (n.type == "int" || n.type == "integer")
                return Value::integer(v.to_int());
            if (n.type == "float" || n.type == "double" || n.type == "real")
                return Value::real(v.to_float());
            if (n.type == "bool" || n.type == "boolean")
                return Value::boolean(v.to_bool());
            if (n.type == "string") return Value::string(v.to_string());
            return v;
        }
        case NodeKind::kTernary: {
            const auto& n = static_cast<const php::Ternary&>(expr);
            if (!n.cond) return Value();
            const Value cond = eval(*n.cond, frame);
            if (cond.to_bool())
                return n.then_expr ? eval(*n.then_expr, frame) : cond;
            return n.else_expr ? eval(*n.else_expr, frame) : Value();
        }
        case NodeKind::kArrayLiteral: {
            const auto& n = static_cast<const php::ArrayLiteral&>(expr);
            Value arr = Value::array();
            for (const php::ArrayItem& item : n.items) {
                if (!item.value) continue;
                Value v = eval(*item.value, frame);
                if (item.key)
                    arr.set_element(eval(*item.key, frame).to_string(), std::move(v));
                else
                    arr.push_element(std::move(v));
            }
            return arr;
        }
        case NodeKind::kIssetExpr: {
            const auto& n = static_cast<const php::IssetExpr&>(expr);
            bool all_set = true;
            for (const php::ExprPtr& v : n.vars) {
                if (!v) continue;
                if (v->kind == NodeKind::kVariable) {
                    const auto& var = static_cast<const php::Variable&>(*v);
                    const Frame& target =
                        frame.is_global || frame.global_aliases.count(var.name)
                            ? globals_
                            : frame;
                    if (!target.vars.count(var.name) &&
                        !superglobals_.count(var.name))
                        all_set = false;
                } else {
                    all_set = all_set && !eval(*v, frame).is_null();
                }
            }
            return Value::boolean(all_set);
        }
        case NodeKind::kEmptyExpr: {
            const auto& n = static_cast<const php::EmptyExpr&>(expr);
            if (!n.operand) return Value::boolean(true);
            // empty() does not create the variable; read without defaulting.
            if (n.operand->kind == NodeKind::kVariable) {
                const auto& var = static_cast<const php::Variable&>(*n.operand);
                Frame& target =
                    frame.is_global || frame.global_aliases.count(var.name)
                        ? globals_
                        : frame;
                const auto it = target.vars.find(var.name);
                return Value::boolean(it == target.vars.end() ||
                                      !it->second.to_bool());
            }
            return Value::boolean(!eval(*n.operand, frame).to_bool());
        }
        case NodeKind::kIncDec: {
            const auto& n = static_cast<const php::IncDec&>(expr);
            if (!n.operand || n.operand->kind != NodeKind::kVariable)
                return Value();
            const Value old = eval(*n.operand, frame);
            const long delta = n.increment ? 1 : -1;
            assign_to(*n.operand, Value::integer(old.to_int() + delta), frame);
            return n.prefix ? Value::integer(old.to_int() + delta) : old;
        }
        case NodeKind::kClosure: {
            const auto& n = static_cast<const php::Closure&>(expr);
            Value c = Value::object("__closure");
            c.object_data()->closure_node = &n;
            for (const auto& [name, by_ref] : n.uses) {
                Value* slot = lvalue_variable(name, frame);
                c.object_data()->properties[std::string(name)] =
                    slot ? *slot : Value();
            }
            return c;
        }
        case NodeKind::kIncludeExpr: {
            const auto& n = static_cast<const php::IncludeExpr&>(expr);
            if (!n.path) return Value();
            const std::string hint = eval(*n.path, frame).to_string();
            const php::ParsedFile* resolved = project_.resolve_include(hint);
            if (!resolved) return Value::boolean(false);
            if (static_cast<int>(include_stack_.size()) >=
                options_.max_include_depth)
                return Value::boolean(false);
            if (std::find(include_stack_.begin(), include_stack_.end(),
                          resolved->source->name()) != include_stack_.end())
                return Value::boolean(true);
            include_stack_.push_back(resolved->source->name());
            const Flow flow = exec_stmts(resolved->unit.statements, frame);
            include_stack_.pop_back();
            if (flow == Flow::kExit) pending_flow_ = Flow::kExit;
            return Value::boolean(true);
        }
        case NodeKind::kListExpr:
            return Value();
        case NodeKind::kInstanceOf: {
            const auto& n = static_cast<const php::InstanceOf&>(expr);
            if (!n.object) return Value::boolean(false);
            const Value v = eval(*n.object, frame);
            return Value::boolean(v.is_object() &&
                                  iequals(v.object_data()->class_name,
                                          n.class_name));
        }
        case NodeKind::kPrintExpr: {
            const auto& n = static_cast<const php::PrintExpr&>(expr);
            if (n.operand) emit(eval(*n.operand, frame).to_string());
            return Value::integer(1);
        }
        case NodeKind::kExitExpr: {
            const auto& n = static_cast<const php::ExitExpr&>(expr);
            if (n.operand) {
                const Value v = eval(*n.operand, frame);
                if (v.is_string()) emit(v.to_string());
            }
            pending_flow_ = Flow::kExit;
            result_.exited = true;
            return Value();
        }
        default:
            return Value();
    }
}

Value Interpreter::eval_variable(const php::Variable& var, Frame& frame) {
    const auto sg = superglobals_.find(var.name);
    if (sg != superglobals_.end()) return sg->second;
    if (var.name == "$this") return frame.this_object;
    if (var.name == "$GLOBALS") {
        Value all = Value::array();
        for (const auto& [name, value] : globals_.vars)
            all.set_element(name.substr(1), value);
        return all;
    }
    Frame& target = frame.is_global || frame.global_aliases.count(var.name)
                        ? globals_
                        : frame;
    const auto it = target.vars.find(var.name);
    return it != target.vars.end() ? it->second : Value();
}

Value* Interpreter::lvalue_variable(std::string_view name, Frame& frame) {
    Frame& target =
        frame.is_global || frame.global_aliases.count(name) ? globals_ : frame;
    const auto it = target.vars.find(name);
    if (it != target.vars.end()) return &it->second;
    return &target.vars.emplace(std::string(name), Value()).first->second;
}

void Interpreter::assign_to(const php::Expr& target, Value value, Frame& frame) {
    switch (target.kind) {
        case NodeKind::kVariable: {
            const auto& var = static_cast<const php::Variable&>(target);
            if (superglobals_.count(var.name)) return;
            *lvalue_variable(var.name, frame) = std::move(value);
            return;
        }
        case NodeKind::kArrayAccess: {
            const auto& access = static_cast<const php::ArrayAccess&>(target);
            if (!access.base || access.base->kind != NodeKind::kVariable) return;
            const auto& base = static_cast<const php::Variable&>(*access.base);
            Value* slot = lvalue_variable(base.name, frame);
            if (!slot->is_array()) *slot = Value::array();
            if (access.index)
                slot->set_element(eval(*access.index, frame).to_string(),
                                  std::move(value));
            else
                slot->push_element(std::move(value));
            return;
        }
        case NodeKind::kPropertyAccess: {
            const auto& access = static_cast<const php::PropertyAccess&>(target);
            if (!access.object || access.property.empty()) return;
            const Value object = eval(*access.object, frame);
            if (object.is_object())
                object.object_data()->properties[std::string(access.property)] =
                    std::move(value);
            return;
        }
        case NodeKind::kStaticPropertyAccess: {
            const auto& access =
                static_cast<const php::StaticPropertyAccess&>(target);
            std::string skey = "::";
            skey += ascii_lower(access.class_name);
            skey += "::$";
            skey += access.property;
            globals_.vars[std::move(skey)] = std::move(value);
            return;
        }
        case NodeKind::kListExpr: {
            const auto& list = static_cast<const php::ListExpr&>(target);
            int index = 0;
            for (const php::ExprPtr& element : list.elements) {
                if (element)
                    assign_to(*element, value.get_element(std::to_string(index)),
                              frame);
                ++index;
            }
            return;
        }
        default:
            return;
    }
}

Value Interpreter::eval_assign(const php::Assign& assign, Frame& frame) {
    if (!assign.target || !assign.value) return Value();
    Value value = eval(*assign.value, frame);
    switch (assign.op) {
        case php::AssignOp::kAssign:
            break;
        case php::AssignOp::kConcat:
            value = Value::string(eval(*assign.target, frame).to_string() +
                                  value.to_string());
            break;
        case php::AssignOp::kPlus:
            value = Value::integer(eval(*assign.target, frame).to_int() +
                                   value.to_int());
            break;
        case php::AssignOp::kMinus:
            value = Value::integer(eval(*assign.target, frame).to_int() -
                                   value.to_int());
            break;
        case php::AssignOp::kCoalesce: {
            const Value current = eval(*assign.target, frame);
            if (!current.is_null()) return current;
            break;
        }
        default:
            value = Value::integer(value.to_int());
            break;
    }
    assign_to(*assign.target, value, frame);
    return value;
}

Value Interpreter::eval_binary(const php::Binary& bin, Frame& frame) {
    using php::BinaryOp;
    if (!bin.lhs || !bin.rhs) return Value();
    // Short-circuit logical operators.
    if (bin.op == BinaryOp::kAnd) {
        if (!eval(*bin.lhs, frame).to_bool()) return Value::boolean(false);
        return Value::boolean(eval(*bin.rhs, frame).to_bool());
    }
    if (bin.op == BinaryOp::kOr) {
        if (eval(*bin.lhs, frame).to_bool()) return Value::boolean(true);
        return Value::boolean(eval(*bin.rhs, frame).to_bool());
    }
    const Value lhs = eval(*bin.lhs, frame);
    const Value rhs = eval(*bin.rhs, frame);
    switch (bin.op) {
        case BinaryOp::kConcat:
            return Value::string(lhs.to_string() + rhs.to_string());
        case BinaryOp::kAdd: return Value::integer(lhs.to_int() + rhs.to_int());
        case BinaryOp::kSub: return Value::integer(lhs.to_int() - rhs.to_int());
        case BinaryOp::kMul: return Value::integer(lhs.to_int() * rhs.to_int());
        case BinaryOp::kDiv:
            return rhs.to_int() == 0 ? Value()
                                     : Value::integer(lhs.to_int() / rhs.to_int());
        case BinaryOp::kMod:
            return rhs.to_int() == 0 ? Value()
                                     : Value::integer(lhs.to_int() % rhs.to_int());
        case BinaryOp::kEq: return Value::boolean(lhs.loose_equals(rhs));
        case BinaryOp::kNotEq: return Value::boolean(!lhs.loose_equals(rhs));
        case BinaryOp::kIdentical:
            return Value::boolean(lhs.type() == rhs.type() && lhs.loose_equals(rhs));
        case BinaryOp::kNotIdentical:
            return Value::boolean(!(lhs.type() == rhs.type() && lhs.loose_equals(rhs)));
        case BinaryOp::kLt: return Value::boolean(lhs.to_float() < rhs.to_float());
        case BinaryOp::kGt: return Value::boolean(lhs.to_float() > rhs.to_float());
        case BinaryOp::kLtEq: return Value::boolean(lhs.to_float() <= rhs.to_float());
        case BinaryOp::kGtEq: return Value::boolean(lhs.to_float() >= rhs.to_float());
        case BinaryOp::kCoalesce: return lhs.is_null() ? rhs : lhs;
        case BinaryOp::kXor:
            return Value::boolean(lhs.to_bool() != rhs.to_bool());
        default:
            return Value::integer(0);
    }
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

Value Interpreter::call_user_function(const php::FunctionRef& ref,
                                      const std::vector<Value>& args,
                                      Value this_object, Frame& caller) {
    (void)caller;
    if (!ref.decl || call_depth_ >= options_.max_call_depth) return Value();
    ++call_depth_;
    Frame frame;
    frame.current_class = ref.owner;
    frame.this_object = std::move(this_object);
    for (size_t i = 0; i < ref.decl->params.size(); ++i) {
        const php::Param& param = ref.decl->params[i];
        if (i < args.size())
            frame.vars[std::string(param.name)] = args[i];
        else if (param.default_value)
            frame.vars[std::string(param.name)] = eval(*param.default_value, frame);
    }
    return_value_ = Value();
    const Flow flow = exec_stmts(ref.decl->body, frame);
    // Persist the final values of `static` variables for the next call.
    for (auto& [name, slot] : frame.static_bindings) {
        const auto it = frame.vars.find(name);
        if (it != frame.vars.end()) *slot = it->second;
    }
    --call_depth_;
    if (flow == Flow::kExit) pending_flow_ = Flow::kExit;
    // Generator: a body that yielded returns the collected values.
    if (!frame.yielded.empty()) {
        Value generated = Value::array();
        for (Value& v : frame.yielded) generated.push_element(std::move(v));
        return_value_ = Value();
        return generated;
    }
    Value result = return_value_;
    return_value_ = Value();
    return result;
}

Value Interpreter::eval_call(const php::FunctionCall& call, Frame& frame) {
    // Calls through an expression (closures, variable functions).
    if (call.name.empty()) {
        if (!call.callee) return Value();
        const Value callee = eval(*call.callee, frame);
        std::vector<Value> args;
        for (const php::Argument& a : call.args)
            args.push_back(a.value ? eval(*a.value, frame) : Value());
        if (callee.is_object() && callee.object_data()->closure_node) {
            const auto* closure =
                static_cast<const php::Closure*>(callee.object_data()->closure_node);
            if (call_depth_ >= options_.max_call_depth) return Value();
            ++call_depth_;
            Frame body;
            body.current_class = frame.current_class;
            body.this_object = frame.this_object;
            for (const auto& [name, value] : callee.object_data()->properties)
                body.vars[name] = value;
            for (size_t i = 0; i < closure->params.size() && i < args.size(); ++i)
                body.vars[std::string(closure->params[i].name)] = args[i];
            return_value_ = Value();
            const Flow flow = exec_stmts(closure->body, body);
            --call_depth_;
            if (flow == Flow::kExit) pending_flow_ = Flow::kExit;
            return return_value_;
        }
        // Variable function: "$fn" holding a function name.
        if (callee.is_string()) {
            if (const php::FunctionRef* ref = project_.find_function(callee.to_string()))
                return call_user_function(*ref, args, Value(), frame);
        }
        return Value();
    }

    std::vector<Value> args;
    for (const php::Argument& a : call.args)
        args.push_back(a.value ? eval(*a.value, frame) : Value());

    const std::string lower = ascii_lower(call.name);
    if (lower == "__yield") {
        // Generator body: collect the yielded value ('k' => v yields v).
        if (!args.empty()) frame.yielded.push_back(args.back());
        return Value();
    }
    Value out;
    if (call_builtin(lower, args, &call, frame, out)) return out;

    if (const php::FunctionRef* ref = project_.find_function(call.name))
        return call_user_function(*ref, args, Value(), frame);
    return Value();
}

Value Interpreter::eval_method(const php::MethodCall& call, Frame& frame) {
    if (!call.object || call.method.empty()) return Value();
    const Value object = eval(*call.object, frame);
    std::vector<Value> args;
    for (const php::Argument& a : call.args)
        args.push_back(a.value ? eval(*a.value, frame) : Value());
    if (!object.is_object()) return Value();
    const std::string& cls = object.object_data()->class_name;
    if (cls == "wpdb") return wpdb_method(ascii_lower(call.method), args);
    if (cls == "mysqli" && iequals(call.method, "query")) {
        result_.queries.push_back(args.empty() ? "" : args[0].to_string());
        return make_result_handle();
    }
    if (const php::FunctionRef* ref = project_.find_method(cls, call.method))
        return call_user_function(*ref, args, object, frame);
    return Value();
}

Value Interpreter::eval_static_call(const php::StaticCall& call, Frame& frame) {
    std::vector<Value> args;
    for (const php::Argument& a : call.args)
        args.push_back(a.value ? eval(*a.value, frame) : Value());
    std::string cls = ascii_lower(call.class_name);
    if ((cls == "self" || cls == "static") && frame.current_class)
        cls = ascii_lower(frame.current_class->name);
    if (cls == "parent" && frame.current_class)
        cls = ascii_lower(frame.current_class->parent);
    if (const php::FunctionRef* ref = project_.find_method(cls, call.method))
        return call_user_function(*ref, args, frame.this_object, frame);
    return Value();
}

Value Interpreter::eval_new(const php::New& expr, Frame& frame) {
    if (expr.class_name.empty()) return Value();
    std::string cls = ascii_lower(expr.class_name);
    if (cls == "self" && frame.current_class)
        cls = ascii_lower(frame.current_class->name);
    Value object = Value::object(cls);
    const php::ClassDecl* decl = project_.find_class(cls);
    // Re-entrant construction (a property default `new`ing its own class,
    // directly or through a cycle) would recurse forever; skip it.
    if (decl && constructing_classes_.insert(cls).second) {
        for (const php::PropertyDecl& prop : decl->properties)
            object.object_data()->properties[std::string(prop.name)] =
                prop.default_value ? eval(*prop.default_value, frame) : Value();
        std::vector<Value> args;
        for (const php::Argument& a : expr.args)
            args.push_back(a.value ? eval(*a.value, frame) : Value());
        if (const php::FunctionRef* ctor = project_.find_method(cls, "__construct"))
            call_user_function(*ctor, args, object, frame);
        constructing_classes_.erase(cls);
    }
    return object;
}

Value Interpreter::wpdb_method(const std::string& method,
                               const std::vector<Value>& args) {
    const std::string query = args.empty() ? "" : args[0].to_string();
    if (method == "query") {
        result_.queries.push_back(query);
        return Value::integer(1);
    }
    if (method == "get_results" || method == "get_col") {
        result_.queries.push_back(query);
        Value rows = Value::array();
        for (int i = 0; i < db_rows_; ++i)
            rows.push_element(method == "get_col" ? Value::string(db_cell_)
                                                  : make_db_row());
        return rows;
    }
    if (method == "get_row") {
        result_.queries.push_back(query);
        return make_db_row();
    }
    if (method == "get_var") {
        result_.queries.push_back(query);
        return Value::string(db_cell_);
    }
    if (method == "prepare") {
        // sprintf-style substitution with quoting — the real wpdb::prepare.
        std::string out;
        size_t arg_index = 1;
        for (size_t i = 0; i < query.size(); ++i) {
            if (query[i] == '%' && i + 1 < query.size()) {
                const char spec = query[i + 1];
                if (spec == 's') {
                    const std::string raw = arg_index < args.size()
                                                ? args[arg_index++].to_string()
                                                : "";
                    out += "'" + php_addslashes(raw) + "'";
                    ++i;
                    continue;
                }
                if (spec == 'd') {
                    out += std::to_string(arg_index < args.size()
                                              ? args[arg_index++].to_int()
                                              : 0);
                    ++i;
                    continue;
                }
            }
            out += query[i];
        }
        return Value::string(out);
    }
    if (method == "insert" || method == "update" || method == "delete")
        return Value::integer(1);
    if (method == "esc_like" || method == "_real_escape")
        return Value::string(
            php_addslashes(args.empty() ? "" : args[0].to_string()));
    return Value();
}

bool Interpreter::call_builtin(const std::string& name, std::vector<Value>& args,
                               const php::FunctionCall* call, Frame& frame,
                               Value& out) {
    auto arg_str = [&](size_t i) {
        return i < args.size() ? args[i].to_string() : std::string();
    };

    // --- output / queries ----------------------------------------------------
    if (name == "printf" || name == "vprintf") {
        // Minimal %s/%d formatting.
        std::string format = arg_str(0);
        std::string rendered;
        size_t arg_index = 1;
        for (size_t i = 0; i < format.size(); ++i) {
            if (format[i] == '%' && i + 1 < format.size()) {
                if (format[i + 1] == 's') {
                    rendered += arg_str(arg_index++);
                    ++i;
                    continue;
                }
                if (format[i + 1] == 'd') {
                    rendered += std::to_string(
                        arg_index < args.size() ? args[arg_index++].to_int() : 0);
                    ++i;
                    continue;
                }
            }
            rendered += format[i];
        }
        emit(rendered);
        out = Value::integer(static_cast<long>(rendered.size()));
        return true;
    }
    if (name == "print_r" || name == "var_dump") {
        emit(arg_str(0));
        out = Value::boolean(true);
        return true;
    }
    if (name == "_e" || name == "wp_die" || name == "trigger_error" ||
        name == "drupal_set_message") {
        emit(arg_str(0));
        if (name == "wp_die") {
            pending_flow_ = Flow::kExit;
            result_.exited = true;
        }
        out = Value();
        return true;
    }
    if (name == "mysql_query" || name == "mysqli_query" || name == "pg_query" ||
        name == "db_query") {
        result_.queries.push_back(name == "mysqli_query" ? arg_str(1) : arg_str(0));
        out = make_result_handle();
        return true;
    }
    if (name == "mysql_fetch_assoc" || name == "mysql_fetch_array" ||
        name == "mysql_fetch_object" || name == "mysqli_fetch_assoc" ||
        name == "db_fetch_object" || name == "db_fetch_array") {
        if (!args.empty() && args[0].is_object() &&
            args[0].object_data()->cursor < static_cast<size_t>(db_rows_)) {
            ++args[0].object_data()->cursor;
            out = make_db_row();
        } else {
            out = Value::boolean(false);
        }
        return true;
    }

    // --- sanitizers ------------------------------------------------------------
    if (name == "htmlspecialchars" || name == "htmlentities" ||
        name == "esc_html" || name == "esc_attr" || name == "esc_textarea" ||
        name == "check_plain") {
        out = Value::string(php_htmlspecialchars(arg_str(0)));
        return true;
    }
    if (name == "strip_tags" || name == "wp_kses" || name == "wp_kses_post" ||
        name == "filter_xss" || name == "sanitize_text_field") {
        out = Value::string(php_strip_tags(arg_str(0)));
        return true;
    }
    if (name == "intval" || name == "absint") {
        long v = args.empty() ? 0 : args[0].to_int();
        if (name == "absint" && v < 0) v = -v;
        out = Value::integer(v);
        return true;
    }
    if (name == "floatval" || name == "doubleval") {
        out = Value::real(args.empty() ? 0 : args[0].to_float());
        return true;
    }
    if (name == "addslashes" || name == "mysql_escape_string" ||
        name == "mysql_real_escape_string" || name == "esc_sql" ||
        name == "like_escape" || name == "wp_slash") {
        out = Value::string(php_addslashes(arg_str(0)));
        return true;
    }
    if (name == "mysqli_real_escape_string") {
        out = Value::string(php_addslashes(arg_str(args.size() > 1 ? 1 : 0)));
        return true;
    }
    if (name == "stripslashes" || name == "stripcslashes" || name == "wp_unslash") {
        out = Value::string(php_stripslashes(arg_str(0)));
        return true;
    }
    if (name == "html_entity_decode" || name == "htmlspecialchars_decode") {
        std::string s = arg_str(0);
        s = replace_all(std::move(s), "&amp;", "&");
        s = replace_all(std::move(s), "&lt;", "<");
        s = replace_all(std::move(s), "&gt;", ">");
        s = replace_all(std::move(s), "&quot;", "\"");
        s = replace_all(std::move(s), "&#039;", "'");
        out = Value::string(std::move(s));
        return true;
    }
    if (name == "urlencode" || name == "rawurlencode") {
        std::string encoded;
        for (unsigned char c : arg_str(0)) {
            if (std::isalnum(c) || c == '-' || c == '_' || c == '.') {
                encoded += static_cast<char>(c);
            } else {
                char buf[8];
                std::snprintf(buf, sizeof buf, "%%%02X", c);
                encoded += buf;
            }
        }
        out = Value::string(std::move(encoded));
        return true;
    }
    if (name == "urldecode" || name == "rawurldecode") {
        const std::string s = arg_str(0);
        std::string decoded;
        for (size_t i = 0; i < s.size(); ++i) {
            if (s[i] == '%' && i + 2 < s.size()) {
                decoded += static_cast<char>(
                    std::strtol(s.substr(i + 1, 2).c_str(), nullptr, 16));
                i += 2;
            } else {
                decoded += s[i];
            }
        }
        out = Value::string(std::move(decoded));
        return true;
    }
    if (name == "number_format") {
        out = Value::string(std::to_string(args.empty() ? 0 : args[0].to_int()));
        return true;
    }
    if (name == "md5" || name == "sha1") {
        out = Value::string("hash-" + std::to_string(
                                          std::hash<std::string>{}(arg_str(0))));
        return true;
    }

    // --- string / array helpers ---------------------------------------------------
    if (name == "sprintf") {
        std::string format = arg_str(0);
        std::string rendered;
        size_t arg_index = 1;
        for (size_t i = 0; i < format.size(); ++i) {
            if (format[i] == '%' && i + 1 < format.size()) {
                if (format[i + 1] == 's') {
                    rendered += arg_str(arg_index++);
                    ++i;
                    continue;
                }
                if (format[i + 1] == 'd') {
                    rendered += std::to_string(
                        arg_index < args.size() ? args[arg_index++].to_int() : 0);
                    ++i;
                    continue;
                }
            }
            rendered += format[i];
        }
        out = Value::string(std::move(rendered));
        return true;
    }
    if (name == "trim" || name == "ltrim" || name == "rtrim") {
        out = Value::string(std::string(phpsafe::trim(arg_str(0))));
        return true;
    }
    if (name == "strtolower") {
        out = Value::string(ascii_lower(arg_str(0)));
        return true;
    }
    if (name == "strtoupper") {
        std::string s = arg_str(0);
        for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        out = Value::string(std::move(s));
        return true;
    }
    if (name == "str_replace") {
        out = Value::string(replace_all(arg_str(2), arg_str(0), arg_str(1)));
        return true;
    }
    if (name == "substr") {
        const std::string s = arg_str(0);
        long start = args.size() > 1 ? args[1].to_int() : 0;
        if (start < 0) start = std::max<long>(0, static_cast<long>(s.size()) + start);
        if (start >= static_cast<long>(s.size())) {
            out = Value::string("");
            return true;
        }
        const long len = args.size() > 2 ? args[2].to_int()
                                         : static_cast<long>(s.size()) - start;
        out = Value::string(s.substr(start, std::max<long>(0, len)));
        return true;
    }
    if (name == "strlen") {
        out = Value::integer(static_cast<long>(arg_str(0).size()));
        return true;
    }
    if (name == "count" || name == "sizeof") {
        out = Value::integer(args.empty() ? 0
                                          : static_cast<long>(args[0].array_size()));
        return true;
    }
    if (name == "implode" || name == "join") {
        if (args.empty()) {
            out = Value::string("");
            return true;
        }
        const std::string sep = args.size() > 1 ? arg_str(0) : "";
        const Value& arr = args.size() > 1 ? args[1] : args[0];
        std::string joined;
        if (arr.is_array()) {
            bool first = true;
            for (const auto& [k, v] : arr.array_data()->entries) {
                if (!first) joined += sep;
                joined += v.to_string();
                first = false;
            }
        }
        out = Value::string(std::move(joined));
        return true;
    }
    if (name == "explode") {
        Value arr = Value::array();
        const std::string sep = arg_str(0);
        if (!sep.empty())
            for (const std::string& part : split(arg_str(1), sep[0]))
                arr.push_element(Value::string(part));
        out = arr;
        return true;
    }
    if (name == "in_array") {
        bool found = false;
        if (args.size() > 1 && args[1].is_array())
            for (const auto& [k, v] : args[1].array_data()->entries)
                if (v.loose_equals(args[0])) found = true;
        out = Value::boolean(found);
        return true;
    }
    if (name == "is_numeric") {
        out = Value::boolean(args.empty() ? false
                                          : args[0].type() == Value::Type::kInt ||
                                                args[0].type() == Value::Type::kFloat ||
                                                is_numeric_string(args[0].to_string()));
        return true;
    }
    if (name == "ctype_digit") {
        const std::string s = arg_str(0);
        bool all = !s.empty();
        for (char c : s)
            if (!std::isdigit(static_cast<unsigned char>(c))) all = false;
        out = Value::boolean(all);
        return true;
    }
    if (name == "is_array") {
        out = Value::boolean(!args.empty() && args[0].is_array());
        return true;
    }
    if (name == "is_string") {
        out = Value::boolean(!args.empty() && args[0].is_string());
        return true;
    }
    if (name == "preg_match") {
        std::smatch m;
        const std::string subject = arg_str(1);
        const bool matched = pcre_match(arg_str(0), subject, &m);
        if (call && call->args.size() > 2 && call->args[2].value) {
            Value matches = Value::array();
            for (const auto& group : m) matches.push_element(Value::string(group.str()));
            assign_to(*call->args[2].value, std::move(matches), frame);
        }
        out = Value::integer(matched ? 1 : 0);
        return true;
    }

    // --- files -----------------------------------------------------------------
    if (name == "fopen") {
        out = make_result_handle();
        return true;
    }
    if (name == "fgets" || name == "fread") {
        if (!args.empty() && args[0].is_object() &&
            args[0].object_data()->cursor == 0) {
            ++args[0].object_data()->cursor;
            out = Value::string(file_contents_);
        } else {
            out = Value::boolean(false);
        }
        return true;
    }
    if (name == "file_get_contents") {
        out = Value::string(file_contents_);
        return true;
    }
    if (name == "dirname") {
        const std::string path = arg_str(0);
        const size_t slash = path.rfind('/');
        out = Value::string(slash == std::string::npos ? "." : path.substr(0, slash));
        return true;
    }
    if (name == "fclose" || name == "error_reporting" || name == "ini_set" ||
        name == "header" || name == "ob_start" || name == "define") {
        out = Value::boolean(true);
        return true;
    }

    // --- CMS helpers -------------------------------------------------------------
    if (name == "get_option" || name == "get_site_option" ||
        name == "get_post_meta" || name == "get_user_meta" ||
        name == "get_transient" || name == "variable_get") {
        out = Value::string(cms_store_);
        return true;
    }
    if (name == "get_the_id") {
        out = Value::integer(7);
        return true;
    }
    if (name == "__" || name == "_x" || name == "apply_filters" ||
        name == "do_shortcode") {
        out = args.empty() ? Value() : args[name == "apply_filters" ? 1 : 0];
        if (name == "apply_filters" && args.size() < 2) out = Value();
        return true;
    }
    if (name == "add_action" || name == "add_filter" || name == "add_shortcode") {
        // The CMS will invoke the handler; model it as an immediate call.
        if (call && call->args.size() > 1 && call->args[1].value) {
            const Value handler = args.size() > 1 ? args[1] : Value();
            if (handler.is_object() && handler.object_data()->closure_node) {
                const auto* closure = static_cast<const php::Closure*>(
                    handler.object_data()->closure_node);
                // Execute the closure with no arguments.
                Frame body;
                body.current_class = frame.current_class;
                for (const auto& [n2, v2] : handler.object_data()->properties)
                    body.vars[n2] = v2;
                exec_stmts(closure->body, body);
            } else if (handler.is_string()) {
                if (const php::FunctionRef* ref =
                        project_.find_function(handler.to_string()))
                    call_user_function(*ref, {}, Value(), frame);
            }
        }
        out = Value::boolean(true);
        return true;
    }
    if (name == "json_encode") {
        std::string encoded = "\"";
        for (char c : arg_str(0)) {
            if (c == '"') encoded += "\\\"";
            else if (c == '\\') encoded += "\\\\";
            else if (c == '/') encoded += "\\/";
            else if (c == '<') encoded += "\\u003C";  // PHP escapes per flags; be safe
            else encoded += c;
        }
        encoded += "\"";
        out = Value::string(std::move(encoded));
        return true;
    }
    if (name == "extract") {
        if (!args.empty() && args[0].is_array())
            for (const auto& [key, value] : args[0].array_data()->entries)
                *lvalue_variable("$" + key, frame) = value;
        out = Value::integer(
            args.empty() ? 0 : static_cast<long>(args[0].array_size()));
        return true;
    }
    if (name == "function_exists") {
        out = Value::boolean(project_.find_function(arg_str(0)) != nullptr);
        return true;
    }
    if (name == "isset" || name == "empty") {
        out = Value::boolean(false);
        return true;
    }
    return false;
}

}  // namespace phpsafe::dynamic
