// Function summaries (paper §III.C: "every function is analyzed only the
// first time it is called; the data flow of this analysis is used to
// process future calls"). A summary records, per parameter, which
// vulnerability kinds pass unsanitized to the return value and to each
// sensitive sink inside the function, plus any taint the function produces
// on its own (internal sources). Recursive calls are cut by the
// `in_progress` marker, matching the paper's endless-loop guard.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "config/knowledge.h"
#include "core/taint.h"
#include "util/source.h"

namespace phpsafe {

/// A sink inside a summarized function reachable from a parameter.
struct ParamSinkFlow {
    int param = 0;
    VulnSet kinds;              ///< kinds that reach the sink unsanitized
    VulnKind vuln = VulnKind::kXss;
    SourceLocation location;    ///< sink location inside the callee
    std::string sink_name;
    std::string variable;       ///< vulnerable expression at the sink
    bool via_oop = false;
};

struct FunctionSummary {
    bool analyzed = false;
    bool in_progress = false;   ///< recursion guard

    /// Return-value taint independent of arguments (internal sources).
    TaintValue return_base;

    /// Per-parameter kinds that flow into the return value unsanitized.
    std::vector<ParamFlow> param_to_return;

    /// Kinds the function sanitizes on flows from parameter to return (the
    /// paper's inter-procedural check "if the function is able to sanitize
    /// the tainted data"). Derived: a kind missing from param_to_return for
    /// a parameter that does reach the return was sanitized en route.
    std::vector<ParamSinkFlow> param_sinks;

    /// True when the summarized body writes taint into globals/properties;
    /// those writes happen against the live stores during summarization.
    bool has_side_effects = false;

    /// Final taint of by-reference parameters (PHP `function f(&$x)`): the
    /// callee's writes flow back into the caller's argument variable.
    struct ParamOut {
        int param = 0;
        TaintValue value;
    };
    std::vector<ParamOut> param_outputs;
};

/// Keyed map of summaries ("function" or "class::method", lowercased).
class SummaryStore {
public:
    FunctionSummary& slot(const std::string& qualified_lower);
    const FunctionSummary* find(const std::string& qualified_lower) const;
    void clear();
    size_t size() const noexcept { return summaries_.size(); }

    /// All qualified names with a computed summary (for engine statistics).
    std::vector<std::string> analyzed_names() const;

private:
    std::map<std::string, FunctionSummary> summaries_;
};

}  // namespace phpsafe
