// Function summaries (paper §III.C: "every function is analyzed only the
// first time it is called; the data flow of this analysis is used to
// process future calls"). A summary records, per parameter, which
// vulnerability kinds pass unsanitized to the return value and to each
// sensitive sink inside the function, plus any taint the function produces
// on its own (internal sources). Recursive calls are cut by the
// `in_progress` marker, matching the paper's endless-loop guard.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "config/knowledge.h"
#include "core/finding.h"
#include "core/taint.h"
#include "util/diagnostics.h"
#include "util/source.h"

namespace phpsafe {

/// A sink inside a summarized function reachable from a parameter.
struct ParamSinkFlow {
    int param = 0;
    VulnSet kinds;              ///< kinds that reach the sink unsanitized
    VulnKind vuln = VulnKind::kXss;
    SourceLocation location;    ///< sink location inside the callee
    std::string sink_name;
    std::string variable;       ///< vulnerable expression at the sink
    bool via_oop = false;
};

struct FunctionSummary {
    bool analyzed = false;
    bool in_progress = false;   ///< recursion guard

    /// Return-value taint independent of arguments (internal sources).
    TaintValue return_base;

    /// Per-parameter kinds that flow into the return value unsanitized.
    std::vector<ParamFlow> param_to_return;

    /// Kinds the function sanitizes on flows from parameter to return (the
    /// paper's inter-procedural check "if the function is able to sanitize
    /// the tainted data"). Derived: a kind missing from param_to_return for
    /// a parameter that does reach the return was sanitized en route.
    std::vector<ParamSinkFlow> param_sinks;

    /// True when the summarized body writes taint into globals/properties;
    /// those writes happen against the live stores during summarization.
    bool has_side_effects = false;

    /// Final taint of by-reference parameters (PHP `function f(&$x)`): the
    /// callee's writes flow back into the caller's argument variable.
    struct ParamOut {
        int param = 0;
        TaintValue value;
    };
    std::vector<ParamOut> param_outputs;
};

// ---------------------------------------------------------------------------
// Cross-run summary reuse (the incremental analysis service)
// ---------------------------------------------------------------------------

/// One thing a summary's computation observed about the project. Reusing the
/// summary in a later run is sound only while every observation still holds;
/// the service re-checks them against the new project before seeding.
struct SummaryDep {
    enum class Kind {
        kFile,       ///< read this file's content (body, callee, include)
        kFunction,   ///< resolved a free-function name (file empty: unresolved)
        kMethod,     ///< resolved "class::method" (file empty: unresolved)
        kMethodAny,  ///< resolved a method by unique name across classes
        kClass,      ///< resolved a class name (file empty: unresolved)
        kInclude,    ///< resolved an include path hint (file empty: external)
    };
    Kind kind = Kind::kFile;
    std::string name;  ///< lowercased symbol / path / file name
    std::string file;  ///< file the name resolved to; empty when unresolved
    /// For kFile deps: content hash of the file at capture time. The engine
    /// leaves it 0 (it would cost a linear file lookup per summary); the
    /// service fills it from the scanned project before caching.
    uint64_t hash = 0;

    friend bool operator<(const SummaryDep& a, const SummaryDep& b) {
        if (a.kind != b.kind) return a.kind < b.kind;
        if (a.name != b.name) return a.name < b.name;
        return a.file < b.file;
    }
    friend bool operator==(const SummaryDep& a, const SummaryDep& b) {
        return a.kind == b.kind && a.name == b.name && a.file == b.file;
    }
};

/// A function summary packaged for reuse across engine runs: the summary
/// itself, the findings that were reported while its body was analyzed
/// (replayed verbatim on reuse, so a warm run reports exactly what a cold
/// run would), and the dependency record that gates reuse. `reusable` is
/// false when the computation touched state a replay cannot reproduce —
/// globals, the property store, or an executed include — or ran under an
/// abnormal engine state; such artifacts are recomputed every run.
struct SummaryArtifact {
    FunctionSummary summary;
    std::vector<Finding> findings;
    std::vector<SummaryDep> deps;
    /// Entry-file artifacts only (AnalysisOptions::capture_entry_files):
    /// the final value of every shared slot — plain global ("$x"),
    /// class-level property ("Cls->prop") or static property ("Cls::prop")
    /// — the entry's top-level walk wrote, name-sorted. Replayed on seeding
    /// so later entry files observe the same shared state a fresh walk
    /// would have left behind.
    std::vector<std::pair<std::string, TaintValue>> shared_writes;
    /// Entry-file artifacts only: shared slots this walk read (or
    /// weak-merged) before writing them, paired with the value_fingerprint
    /// of the value observed (0 marks an absent slot), name-sorted. A seed
    /// applies only while every slot still holds a value with the same
    /// fingerprint, checked against the live stores at seed time — so
    /// cross-entry state flows need no writer analysis: when any input
    /// changed, the check fails and the walk re-runs.
    std::vector<std::pair<std::string, uint64_t>> foreign_reads;
    /// Entry-file artifacts only: diagnostics the walk emitted, replayed on
    /// seeding (a warm run's diagnostic stream must match a cold run's),
    /// and whether the walk aborted the file (the include-depth failure of
    /// paper §V.E). A deterministic abort is as replayable as a clean walk:
    /// the dependency record covers everything read up to the abort point.
    std::vector<Diagnostic> diagnostics;
    bool file_failed = false;
    bool reusable = false;
};

/// Seeds and captures for one engine run. `seeds` maps lowercased qualified
/// names to validated artifacts installed instead of analyzing the body;
/// `capture` (when set) receives an artifact for every summary the run
/// computes context-free. Both require AnalysisOptions::hermetic_summaries.
struct SummaryExchange {
    const std::map<std::string, const SummaryArtifact*>* seeds = nullptr;
    /// Keys in `seeds` to ignore this run, checked before either seed kind
    /// applies. Lets a caller build one immutable seed map and share it
    /// across many rescans, supplying only each rescan's invalidation set
    /// (batch fix verification blocks the artifacts whose computation read
    /// the patched file this way, without rebuilding the map per fix).
    const std::set<std::string>* seed_block = nullptr;
    std::map<std::string, SummaryArtifact>* capture = nullptr;
};

/// Keyed map of summaries ("function" or "class::method", lowercased).
class SummaryStore {
public:
    FunctionSummary& slot(const std::string& qualified_lower);
    const FunctionSummary* find(const std::string& qualified_lower) const;
    void clear();
    size_t size() const noexcept { return summaries_.size(); }

    /// All qualified names with a computed summary (for engine statistics).
    std::vector<std::string> analyzed_names() const;

private:
    std::map<std::string, FunctionSummary> summaries_;
};

}  // namespace phpsafe
