// OOP support for the taint engine (paper §III.E). The original tool builds
// "full names" for properties and methods by backward-searching the token
// stream over T_OBJECT_OPERATOR / T_DOUBLE_COLON; here the AST gives the
// structure directly. This module keeps the taint state of properties —
// keyed both by access path ("$row->sml_name") and, when the receiver class
// is known, by class ("wpdb::prefix") — and resolves receiver class names
// (self / parent / static, inheritance).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/taint.h"
#include "php/project.h"

namespace phpsafe {

/// Merged-over-instances taint store for object and static properties.
class PropertyStore {
public:
    /// Class-level slot: "class::prop" (class lowercased).
    TaintValue& class_slot(std::string_view class_name, std::string_view prop);
    const TaintValue* find_class_slot(std::string_view class_name,
                                      std::string_view prop) const;

    /// Static property slot: "Class::$prop".
    TaintValue& static_slot(std::string_view class_name, std::string_view prop);
    const TaintValue* find_static_slot(std::string_view class_name,
                                       std::string_view prop) const;

    /// Raw-key access ("cls::prop" / "cls::$prop", class already lowercased)
    /// for the engine's shared-slot snapshot/replay machinery.
    TaintValue& slot(std::string_view key);
    const TaintValue* find_slot(std::string_view key) const;

    void clear();
    size_t size() const noexcept { return slots_.size(); }

private:
    std::map<std::string, TaintValue> slots_;
};

/// Resolves `self` / `parent` / `static` against the enclosing class and
/// returns a lowercase class name; empty when unresolvable.
std::string resolve_class_name(std::string_view name,
                               const php::ClassDecl* current_class,
                               const php::Project& project);

/// Looks up a declared property walking the inheritance chain. Returns the
/// declaring class (lowercased) or empty when not found.
std::string find_property_owner(std::string_view class_name,
                                std::string_view prop,
                                const php::Project& project);

}  // namespace phpsafe
