// Vulnerability findings and per-run analysis results (paper §III.D:
// results-processing stage). A Finding carries everything phpSAFE's report
// page shows: the vulnerable variable, the sink, the entry point, and the
// variable-to-variable flow of the malicious data.
#pragma once

#include <string>
#include <vector>

#include "config/knowledge.h"
#include "core/taint.h"
#include "obs/counters.h"
#include "util/diagnostics.h"
#include "util/source.h"

namespace phpsafe {

/// Dynamic-confirmation tier of a finding (paper §III.E / §IV.B.5: the
/// authors confirmed reports by executing the attack; validate/ automates
/// that). kUnchecked means the validation pipeline never ran — the state
/// every engine-produced finding starts in. Deliberately NOT part of a
/// finding's analysis identity: dedup_key(), result_signature() and the
/// deduplicate() total order ignore it, so tiering a result never changes
/// which findings it contains or their order.
enum class Confidence : uint8_t {
    kUnchecked = 0,   ///< dynamic validation was not attempted
    kValidated,       ///< the replayed payload broke out at the sink
    kUnvalidated,     ///< the replay ran but the payload never surfaced
    kInconclusive,    ///< the replay could not run (error, missing entry)
};

std::string to_string(Confidence confidence);

struct Finding {
    VulnKind kind = VulnKind::kXss;
    SourceLocation location;   ///< where the sink fires
    std::string sink;          ///< "echo", "mysql_query", "wpdb::get_results", ...
    std::string variable;      ///< source text of the vulnerable expression
    InputVector vector = InputVector::kUnknown;
    bool via_oop = false;      ///< flow involved OOP constructs (paper §V.A)
    Confidence confidence = Confidence::kUnchecked;  ///< validate/ tier
    std::vector<TaintStep> trace;

    /// Two findings are the same vulnerability when kind, sink location and
    /// vulnerable variable agree (normalized report matching, paper §IV.B.5).
    std::string dedup_key() const;
};

std::string to_string(const Finding& finding);

/// Run statistics — the reproduction of the reviewer-facing data phpSAFE's
/// results-processing stage exposes besides the findings themselves
/// (§III.D: variables, functions, files included, debug information).
struct AnalysisStats {
    int functions_summarized = 0;  ///< distinct user functions/methods analyzed
    int uncalled_functions = 0;    ///< functions never called from plugin code
    int includes_followed = 0;     ///< include/require edges resolved in-project
    int sink_checks = 0;           ///< sensitive-argument checks performed
    int sources_seen = 0;          ///< taint introductions (superglobals, APIs)
    int variables_tracked = 0;     ///< peak variable slots across scopes
};

/// Result of analyzing one plugin with one tool.
struct AnalysisResult {
    std::string tool;
    std::string plugin;
    std::vector<Finding> findings;
    int files_total = 0;
    int files_failed = 0;     ///< robustness: files the tool could not analyze
    int error_messages = 0;   ///< error diagnostics raised during the run
    double cpu_seconds = 0.0; ///< filled by the harness
    /// CPU spent inside included files (subset of cpu_seconds; filled by the
    /// engine so the evaluation driver can attribute the include stage).
    double include_cpu_seconds = 0.0;
    /// CPU spent lowering bodies to the flat IR (subset of cpu_seconds;
    /// zero on the AST backend). Lets the evaluation driver split the
    /// analyze stage into lowering vs propagation.
    double lower_cpu_seconds = 0.0;
    AnalysisStats stats;
    /// Observability counters captured around the run (filled by run_tool).
    obs::Counters counters;
    std::vector<Diagnostic> diagnostics;

    int count(VulnKind kind) const noexcept;
};

/// Sorts findings into a total order (every field participates, so the
/// result is independent of discovery order) and removes duplicates.
void deduplicate(std::vector<Finding>& findings);

/// Canonical byte rendering of everything analysis semantics determine:
/// findings (every field, including the full trace), failure counts and
/// diagnostics. Two results with equal signatures are byte-identical for
/// reporting purposes — the comparison the differential backend and the
/// IR-vs-AST test suite are built on. Deliberately excludes timings and
/// counters (they measure the run, not the analysis).
std::string result_signature(const AnalysisResult& result);

}  // namespace phpsafe
