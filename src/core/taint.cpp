#include "core/taint.h"

#include <algorithm>

#include "obs/counters.h"

namespace phpsafe {

void Trace::push(SourceLocation loc, std::string description) {
    auto node = std::make_shared<Node>();
    node->step = TaintStep{std::move(loc), std::move(description)};
    node->depth = static_cast<uint32_t>(size()) + 1;
    node->parent = std::move(head_);
    head_ = std::move(node);
}

std::vector<TaintStep> Trace::steps() const {
    std::vector<TaintStep> out(size());
    size_t i = out.size();
    for (const Node* node = head_.get(); node; node = node->parent.get())
        out[--i] = node->step;
    return out;
}

TaintValue TaintValue::source(VulnSet kinds, InputVector vec, SourceLocation loc,
                              std::string what) {
    TaintValue v;
    v.active = kinds;
    v.vector = vec;
    v.user_input = vec == InputVector::kGet || vec == InputVector::kPost ||
                   vec == InputVector::kCookie || vec == InputVector::kRequest;
    v.trace.push(std::move(loc), "source: " + what);
    return v;
}

void TaintValue::merge(const TaintValue& other) {
    ++obs::tls().taint_propagations;
    // Decide which trace to keep before the taint sets are unioned: prefer
    // the trace that actually carries taint (it leads back to a source).
    if (trace.empty() || (other.active.any() && !active.any()))
        trace = other.trace;
    active |= other.active;
    latent |= other.latent;
    user_input = user_input || other.user_input;
    via_oop = via_oop || other.via_oop;
    if (vector == InputVector::kUnknown) vector = other.vector;
    if (object_class.empty()) object_class = other.object_class;
    for (const ParamFlow& pf : other.param_flows) add_param_flow(pf.param, pf.kinds);
}

void TaintValue::add_step(SourceLocation loc, std::string description) {
    if (trace.size() >= kMaxTraceSteps) return;
    trace.push(std::move(loc), std::move(description));
}

void TaintValue::apply_sanitizer(VulnSet kinds, SourceLocation loc,
                                 std::string_view fn) {
    const VulnSet removed = active & kinds;
    active -= kinds;
    latent |= removed;
    for (ParamFlow& pf : param_flows) pf.kinds -= kinds;
    param_flows.erase(std::remove_if(param_flows.begin(), param_flows.end(),
                                     [](const ParamFlow& pf) { return pf.kinds.empty(); }),
                      param_flows.end());
    if (removed.any() || depends_on_params()) {
        std::string step = "sanitized by ";
        step += fn;
        step += " (";
        step += to_string(kinds);
        step += ')';
        add_step(loc, std::move(step));
    }
}

void TaintValue::apply_revert(VulnSet kinds, SourceLocation loc,
                              std::string_view fn) {
    const VulnSet revived = latent & kinds;
    active |= revived;
    latent -= revived;
    // Parameter flows: a revert can undo a sanitizer applied before the call
    // boundary, so conservatively restore those kinds on all flows.
    for (ParamFlow& pf : param_flows) pf.kinds |= kinds;
    if (revived.any() || depends_on_params()) {
        std::string step = "sanitization reverted by ";
        step += fn;
        step += " (";
        step += to_string(kinds);
        step += ')';
        add_step(loc, std::move(step));
    }
}

void TaintValue::add_param_flow(int param, VulnSet kinds) {
    for (ParamFlow& pf : param_flows) {
        if (pf.param == param) {
            pf.kinds |= kinds;
            return;
        }
    }
    param_flows.push_back(ParamFlow{param, kinds});
}

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv(uint64_t hash, std::string_view bytes) noexcept {
    for (unsigned char c : bytes) hash = (hash ^ c) * kFnvPrime;
    return hash;
}

uint64_t fnv(uint64_t hash, uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
        hash = (hash ^ (v & 0xff)) * kFnvPrime;
        v >>= 8;
    }
    return hash;
}

}  // namespace

uint64_t Trace::fold_fnv(uint64_t hash) const noexcept {
    for (const Node* node = head_.get(); node; node = node->parent.get()) {
        hash = fnv(hash, node->step.location.file);
        hash = fnv(hash, static_cast<uint64_t>(node->step.location.line));
        hash = fnv(hash, node->step.description);
    }
    return hash;
}

uint64_t value_fingerprint(const TaintValue& value) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    h = fnv(h, static_cast<uint64_t>(value.active.bits()));
    h = fnv(h, static_cast<uint64_t>(value.latent.bits()));
    h = fnv(h, static_cast<uint64_t>(value.vector));
    h = fnv(h, static_cast<uint64_t>((value.user_input ? 1 : 0) |
                                     (value.via_oop ? 2 : 0)));
    h = fnv(h, value.object_class);
    for (const ParamFlow& pf : value.param_flows) {
        h = fnv(h, static_cast<uint64_t>(pf.param));
        h = fnv(h, static_cast<uint64_t>(pf.kinds.bits()));
    }
    h = value.trace.fold_fnv(h);
    return h ? h : 1;
}

}  // namespace phpsafe
