// Lowering from the AST to the flat dataflow IR (see core/ir.h). The
// lowering mirrors Engine::eval / Engine::exec_stmt exactly: operands are
// emitted in the evaluation order of the recursive evaluator, every op
// carries the expression-nesting depth its node would have evaluated at,
// and statement lists get failed-file gates at precisely the points
// exec_stmts checks current_file_failed_. Anything rarely executed and
// structurally awkward (class declarations) escapes to the AST interpreter
// as a single kEscapeStmt op instead of growing special cases here.
#include "core/ir.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <vector>

#include "core/engine.h"
#include "obs/counters.h"

namespace phpsafe::ir {

using php::NodeKind;

namespace {

class Lowerer {
public:
    Lowerer(const KnowledgeBase& kb, const AnalysisOptions& options,
            SymbolTable& symbols)
        : kb_(kb),
          options_(options),
          symbols_(symbols),
          trips_(std::max(1, options.loop_iterations)) {}

    void lower_list(const ArenaVector<php::StmtPtr>& stmts) {
        // One gate per statement, matching the per-iteration
        // current_file_failed_ check in Engine::exec_stmts. A gate jumps to
        // the end of its own list; nested lists chain naturally (the outer
        // list's next gate fires immediately after the jump).
        std::vector<uint32_t> gates;
        for (const php::StmtPtr& stmt : stmts) {
            if (!stmt) continue;
            gates.push_back(emit(Op::kStmtGate, 0, stmt));
            lower_stmt(*stmt);
        }
        const uint32_t end = static_cast<uint32_t>(insts_.size());
        for (uint32_t gate : gates) insts_[gate].c = end;
    }

    const Body* finish(Arena& arena) {
        build_blocks();
        ++obs::tls().ir_bodies_lowered;
        obs::tls().ir_insts_lowered += insts_.size();
        obs::tls().ir_blocks_lowered += blocks_.size();
        Body* body = arena.create<Body>();
        body->insts = copy_out(arena, insts_);
        body->inst_count = static_cast<uint32_t>(insts_.size());
        body->pool = copy_out(arena, pool_);
        body->pool_count = static_cast<uint32_t>(pool_.size());
        body->blocks = copy_out(arena, blocks_);
        body->block_count = static_cast<uint32_t>(blocks_.size());
        body->facts = copy_out(arena, facts_);
        body->fact_count = static_cast<uint32_t>(facts_.size());
        body->max_depth = max_depth_;
        return body;
    }

private:
    // -- emission --------------------------------------------------------------
    uint32_t emit(Op op, int depth, const php::Node* node = nullptr,
                  uint32_t a = kNoValue, uint32_t b = kNoValue,
                  uint32_t c = kNoValue, uint8_t flags = 0) {
        Inst inst;
        inst.op = op;
        inst.flags = flags;
        inst.depth = static_cast<uint16_t>(depth);
        inst.a = a;
        inst.b = b;
        inst.c = c;
        inst.node = node;
        if (inst.depth > max_depth_) max_depth_ = inst.depth;
        insts_.push_back(inst);
        return static_cast<uint32_t>(insts_.size() - 1);
    }

    uint32_t emit_call(Op op, const php::Node* node,
                       const std::vector<uint32_t>& arg_ids, int depth,
                       uint32_t a = kNoValue) {
        const uint32_t offset = static_cast<uint32_t>(pool_.size());
        pool_.insert(pool_.end(), arg_ids.begin(), arg_ids.end());
        return emit(op, depth, node, a, offset,
                    static_cast<uint32_t>(arg_ids.size()));
    }

    void note_use(uint32_t inst, std::string_view name) {
        uses_.emplace_back(inst, symbols_.intern(name));
    }
    void note_def(uint32_t inst, std::string_view name) {
        defs_.emplace_back(inst, symbols_.intern(name));
    }

    // -- expressions -----------------------------------------------------------
    std::vector<uint32_t> lower_args(const ArenaVector<php::Argument>& args,
                                     int depth) {
        std::vector<uint32_t> ids;
        ids.reserve(args.size());
        for (const php::Argument& arg : args)
            ids.push_back(arg.value ? lower_expr(*arg.value, depth)
                                    : emit(Op::kClean, depth));
        return ids;
    }

    uint32_t lower_expr(const php::Expr& e, int depth) {
        switch (e.kind) {
            case NodeKind::kLiteral:
            case NodeKind::kClassConstAccess:
            case NodeKind::kListExpr:
                return emit(Op::kClean, depth, &e);
            case NodeKind::kInterpString: {
                const auto& n = static_cast<const php::InterpString&>(e);
                std::vector<uint32_t> ids;
                for (const php::ExprPtr& part : n.parts)
                    if (part) ids.push_back(lower_expr(*part, depth + 1));
                return emit_call(Op::kMerge, &e, ids, depth);
            }
            case NodeKind::kVariable: {
                const auto& var = static_cast<const php::Variable&>(e);
                const uint32_t id = emit(Op::kVarRead, depth, &e);
                note_use(id, var.name);
                return id;
            }
            case NodeKind::kArrayAccess: {
                const auto& access = static_cast<const php::ArrayAccess&>(e);
                if (!access.base) return emit(Op::kClean, depth, &e);
                if (access.base->kind == NodeKind::kVariable) {
                    const auto& base =
                        static_cast<const php::Variable&>(*access.base);
                    if (kb_.superglobal(base.name)) {
                        if (access.index) lower_expr(*access.index, depth + 1);
                        return emit(Op::kSgArrayRead, depth, &e);
                    }
                    if (base.name == "$GLOBALS" && access.index &&
                        access.index->kind == NodeKind::kLiteral)
                        return emit(Op::kGlobalsRead, depth, &e);
                }
                const uint32_t base_id = lower_expr(*access.base, depth + 1);
                if (access.index) lower_expr(*access.index, depth + 1);
                // Whole-array granularity: an element read yields the
                // array's merged taint.
                return emit(Op::kCopy, depth, &e, base_id);
            }
            case NodeKind::kPropertyAccess: {
                const auto& access = static_cast<const php::PropertyAccess&>(e);
                if (!access.object) return emit(Op::kClean, depth, &e);
                if (!options_.oop_support) {
                    lower_expr(*access.object, depth + 1);
                    return emit(Op::kClean, depth, &e);
                }
                const uint32_t object = lower_expr(*access.object, depth + 1);
                if (access.property_expr)
                    lower_expr(*access.property_expr, depth + 1);
                if (access.property.empty()) return emit(Op::kClean, depth, &e);
                return emit(Op::kPropRead, depth, &e, object);
            }
            case NodeKind::kStaticPropertyAccess:
                if (!options_.oop_support) return emit(Op::kClean, depth, &e);
                return emit(Op::kStaticPropRead, depth, &e);
            case NodeKind::kFunctionCall: {
                const auto& call = static_cast<const php::FunctionCall&>(e);
                if (call.name.empty()) {
                    // Dynamic call through an expression: the result merges
                    // the arguments' taint (not the callee's).
                    if (call.callee) lower_expr(*call.callee, depth + 1);
                    const std::vector<uint32_t> ids =
                        lower_args(call.args, depth + 1);
                    return emit_call(Op::kMerge, &e, ids, depth);
                }
                const std::vector<uint32_t> ids = lower_args(call.args, depth + 1);
                return emit_call(Op::kCallFunc, &e, ids, depth);
            }
            case NodeKind::kMethodCall: {
                const auto& call = static_cast<const php::MethodCall&>(e);
                if (!call.object) return emit(Op::kClean, depth, &e);
                if (!options_.oop_support) {
                    lower_expr(*call.object, depth + 1);
                    lower_args(call.args, depth + 1);
                    return emit(Op::kClean, depth, &e);
                }
                const uint32_t object = lower_expr(*call.object, depth + 1);
                if (call.method_expr) lower_expr(*call.method_expr, depth + 1);
                const std::vector<uint32_t> ids = lower_args(call.args, depth + 1);
                return emit_call(Op::kCallMethod, &e, ids, depth, object);
            }
            case NodeKind::kStaticCall: {
                const auto& call = static_cast<const php::StaticCall&>(e);
                const std::vector<uint32_t> ids = lower_args(call.args, depth + 1);
                if (!options_.oop_support) return emit(Op::kClean, depth, &e);
                return emit_call(Op::kCallStatic, &e, ids, depth);
            }
            case NodeKind::kNew: {
                const auto& n = static_cast<const php::New&>(e);
                if (n.class_expr) lower_expr(*n.class_expr, depth + 1);
                const std::vector<uint32_t> ids = lower_args(n.args, depth + 1);
                if (!options_.oop_support) return emit(Op::kClean, depth, &e);
                return emit_call(Op::kNewObj, &e, ids, depth);
            }
            case NodeKind::kAssign:
                return lower_assign(static_cast<const php::Assign&>(e), depth);
            case NodeKind::kBinary: {
                // Mirror of the evaluator's iterative left-spine fold: the
                // whole spine evaluates inside the root's depth scope, so
                // every operand sits at depth+1 and every fold at depth.
                std::vector<const php::Binary*> spine;
                const php::Expr* leftmost = &e;
                while (leftmost->kind == NodeKind::kBinary) {
                    const auto& b = static_cast<const php::Binary&>(*leftmost);
                    spine.push_back(&b);
                    if (!b.lhs) break;
                    leftmost = b.lhs;
                }
                uint32_t acc = leftmost->kind == NodeKind::kBinary
                                   ? emit(Op::kClean, depth, leftmost)
                                   : lower_expr(*leftmost, depth + 1);
                for (auto it = spine.rbegin(); it != spine.rend(); ++it) {
                    const php::Binary& b = **it;
                    const uint32_t rhs = b.rhs
                                             ? lower_expr(*b.rhs, depth + 1)
                                             : emit(Op::kClean, depth, &b);
                    const bool keep = b.op == php::BinaryOp::kConcat ||
                                      b.op == php::BinaryOp::kCoalesce;
                    acc = emit(Op::kBinFold, depth, &b, acc, rhs, kNoValue,
                               keep ? kKeepTaint : 0);
                }
                return acc;
            }
            case NodeKind::kUnary: {
                const auto& n = static_cast<const php::Unary&>(e);
                const uint32_t v = n.operand ? lower_expr(*n.operand, depth + 1)
                                             : emit(Op::kClean, depth, &e);
                if (n.op == php::UnaryOp::kSuppress)
                    return emit(Op::kCopy, depth, &e, v);
                return emit(Op::kClean, depth, &e);
            }
            case NodeKind::kCast: {
                const auto& n = static_cast<const php::Cast&>(e);
                const uint32_t v = n.operand ? lower_expr(*n.operand, depth + 1)
                                             : emit(Op::kClean, depth, &e);
                return emit(Op::kCast, depth, &e, v);
            }
            case NodeKind::kTernary: {
                const auto& n = static_cast<const php::Ternary&>(e);
                const uint32_t cond = n.cond ? lower_expr(*n.cond, depth + 1)
                                             : emit(Op::kClean, depth, &e);
                // Elvis `?:` yields the condition value itself.
                const uint32_t a =
                    n.then_expr ? lower_expr(*n.then_expr, depth + 1) : cond;
                const uint32_t b =
                    n.else_expr ? lower_expr(*n.else_expr, depth + 1) : kNoValue;
                return emit(Op::kTernary, depth, &e, a, b);
            }
            case NodeKind::kArrayLiteral: {
                const auto& n = static_cast<const php::ArrayLiteral&>(e);
                std::vector<uint32_t> ids;
                for (const php::ArrayItem& item : n.items) {
                    if (item.key) ids.push_back(lower_expr(*item.key, depth + 1));
                    if (item.value)
                        ids.push_back(lower_expr(*item.value, depth + 1));
                }
                return emit_call(Op::kMerge, &e, ids, depth);
            }
            case NodeKind::kIssetExpr: {
                const auto& n = static_cast<const php::IssetExpr&>(e);
                for (const php::ExprPtr& v : n.vars)
                    if (v) lower_expr(*v, depth + 1);
                return emit(Op::kClean, depth, &e);
            }
            case NodeKind::kEmptyExpr: {
                if (const auto& n = static_cast<const php::EmptyExpr&>(e);
                    n.operand)
                    lower_expr(*n.operand, depth + 1);
                return emit(Op::kClean, depth, &e);
            }
            case NodeKind::kIncDec: {
                if (const auto& n = static_cast<const php::IncDec&>(e); n.operand)
                    lower_expr(*n.operand, depth + 1);
                return emit(Op::kClean, depth, &e);
            }
            case NodeKind::kInstanceOf: {
                if (const auto& n = static_cast<const php::InstanceOf&>(e);
                    n.object)
                    lower_expr(*n.object, depth + 1);
                return emit(Op::kClean, depth, &e);
            }
            case NodeKind::kClosure:
                return emit(Op::kClosure, depth, &e);
            case NodeKind::kIncludeExpr: {
                const auto& n = static_cast<const php::IncludeExpr&>(e);
                if (!n.path) return emit(Op::kClean, depth, &e);
                lower_expr(*n.path, depth + 1);
                return emit(Op::kInclude, depth, &e);
            }
            case NodeKind::kPrintExpr: {
                const auto& n = static_cast<const php::PrintExpr&>(e);
                if (!n.operand) return emit(Op::kClean, depth, &e);
                const uint32_t v = lower_expr(*n.operand, depth + 1);
                return emit(Op::kPrintSink, depth, &e, v);
            }
            case NodeKind::kExitExpr: {
                const auto& n = static_cast<const php::ExitExpr&>(e);
                if (!n.operand) return emit(Op::kClean, depth, &e);
                const uint32_t v = lower_expr(*n.operand, depth + 1);
                return emit(Op::kExitSink, depth, &e, v);
            }
            default:
                return emit(Op::kClean, depth, &e);
        }
    }

    uint32_t lower_assign(const php::Assign& assign, int depth) {
        if (!assign.target || !assign.value)
            return emit(Op::kClean, depth, &assign);
        if (assign.by_ref && assign.target->kind == NodeKind::kVariable &&
            assign.value->kind == NodeKind::kVariable) {
            // Alias binding happens BEFORE the value is (re)read — binding
            // erases the target's old slot, which changes what the read of
            // an aliased name observes.
            const uint32_t bind = emit(Op::kRefBind, depth, &assign);
            note_def(bind,
                     static_cast<const php::Variable&>(*assign.target).name);
            return lower_expr(*assign.value, depth + 1);
        }
        const uint32_t value = lower_expr(*assign.value, depth + 1);
        uint8_t flags = 0;
        uint32_t target_rvalue = kNoValue;
        switch (assign.op) {
            case php::AssignOp::kAssign:
                break;
            case php::AssignOp::kConcat:
            case php::AssignOp::kCoalesce:
                target_rvalue = lower_expr(*assign.target, depth + 1);
                flags = kMergeTarget;
                break;
            default:
                // Arithmetic compound assignment: the target is still read
                // (for its side effects) but the stored value is clean.
                lower_expr(*assign.target, depth + 1);
                flags = kCleanValue;
                break;
        }
        const uint32_t id = emit(Op::kAssignFinish, depth, &assign, value,
                                 target_rvalue, kNoValue, flags);
        if (assign.target->kind == NodeKind::kVariable)
            note_def(id,
                     static_cast<const php::Variable&>(*assign.target).name);
        return id;
    }

    // -- statements ------------------------------------------------------------
    void lower_loop(const php::Node* node, const std::function<void()>& body) {
        if (trips_ <= 1) {
            body();
            return;
        }
        const uint32_t begin =
            emit(Op::kLoopBegin, 0, node, kNoValue, static_cast<uint32_t>(trips_));
        body();
        emit(Op::kLoopEnd, 0, node, kNoValue, begin + 1);
    }

    void lower_stmt(const php::Stmt& stmt) {
        switch (stmt.kind) {
            case NodeKind::kExprStmt:
                if (const auto& n = static_cast<const php::ExprStmt&>(stmt);
                    n.expr)
                    lower_expr(*n.expr, 1);
                break;
            case NodeKind::kEchoStmt: {
                const auto& n = static_cast<const php::EchoStmt&>(stmt);
                for (size_t i = 0; i < n.args.size(); ++i) {
                    if (!n.args[i]) continue;
                    const uint32_t v = lower_expr(*n.args[i], 1);
                    emit(Op::kEchoSink, 0, &n, v, static_cast<uint32_t>(i));
                }
                break;
            }
            case NodeKind::kBlock:
                lower_list(static_cast<const php::Block&>(stmt).statements);
                break;
            case NodeKind::kIfStmt: {
                // Paper §III.C: branches are processed sequentially in the
                // same environment — the IR is simply straight-line here.
                const auto& n = static_cast<const php::IfStmt&>(stmt);
                if (n.cond) lower_expr(*n.cond, 1);
                if (n.then_branch) lower_stmt(*n.then_branch);
                if (n.else_branch) lower_stmt(*n.else_branch);
                break;
            }
            case NodeKind::kWhileStmt: {
                const auto& n = static_cast<const php::WhileStmt&>(stmt);
                lower_loop(&n, [&] {
                    if (n.cond) lower_expr(*n.cond, 1);
                    if (n.body) lower_stmt(*n.body);
                });
                break;
            }
            case NodeKind::kDoWhileStmt: {
                const auto& n = static_cast<const php::DoWhileStmt&>(stmt);
                lower_loop(&n, [&] {
                    if (n.body) lower_stmt(*n.body);
                    if (n.cond) lower_expr(*n.cond, 1);
                });
                break;
            }
            case NodeKind::kForStmt: {
                const auto& n = static_cast<const php::ForStmt&>(stmt);
                for (const php::ExprPtr& e : n.init)
                    if (e) lower_expr(*e, 1);
                lower_loop(&n, [&] {
                    for (const php::ExprPtr& e : n.cond)
                        if (e) lower_expr(*e, 1);
                    if (n.body) lower_stmt(*n.body);
                    for (const php::ExprPtr& e : n.update)
                        if (e) lower_expr(*e, 1);
                });
                break;
            }
            case NodeKind::kForeachStmt: {
                const auto& n = static_cast<const php::ForeachStmt&>(stmt);
                const uint32_t iterable =
                    n.iterable ? lower_expr(*n.iterable, 1) : kNoValue;
                const uint32_t prepped =
                    emit(Op::kForeachPrep, 0, &n, iterable);
                lower_loop(&n, [&] {
                    if (n.key_var) {
                        const uint32_t id =
                            emit(Op::kBindTarget, 0, n.key_var, prepped);
                        if (n.key_var->kind == NodeKind::kVariable)
                            note_def(id, static_cast<const php::Variable&>(
                                             *n.key_var)
                                             .name);
                    }
                    if (n.value_var) {
                        const uint32_t id =
                            emit(Op::kBindTarget, 0, n.value_var, prepped);
                        if (n.value_var->kind == NodeKind::kVariable)
                            note_def(id, static_cast<const php::Variable&>(
                                             *n.value_var)
                                             .name);
                    }
                    if (n.body) lower_stmt(*n.body);
                });
                break;
            }
            case NodeKind::kSwitchStmt: {
                const auto& n = static_cast<const php::SwitchStmt&>(stmt);
                if (n.subject) lower_expr(*n.subject, 1);
                for (const php::SwitchCase& c : n.cases) {
                    if (c.match) lower_expr(*c.match, 1);
                    lower_list(c.body);
                }
                break;
            }
            case NodeKind::kReturnStmt: {
                const auto& n = static_cast<const php::ReturnStmt&>(stmt);
                const uint32_t v = n.value ? lower_expr(*n.value, 1) : kNoValue;
                emit(Op::kReturn, 0, &n, v);
                break;
            }
            case NodeKind::kGlobalStmt:
                emit(Op::kGlobalDecl, 0, &stmt);
                break;
            case NodeKind::kStaticVarStmt: {
                const auto& n = static_cast<const php::StaticVarStmt&>(stmt);
                for (size_t i = 0; i < n.vars.size(); ++i) {
                    const auto& [name, init] = n.vars[i];
                    if (!init) continue;
                    const uint32_t v = lower_expr(*init, 1);
                    const uint32_t id = emit(Op::kStaticBind, 0, &n, v,
                                             static_cast<uint32_t>(i));
                    note_def(id, name);
                }
                break;
            }
            case NodeKind::kUnsetStmt:
                emit(Op::kUnset, 0, &stmt);
                break;
            case NodeKind::kClassDecl:
                // Rare, structurally heavy (property-default evaluation with
                // shared-state stores): one escape op, AST semantics.
                emit(Op::kEscapeStmt, 0, &stmt);
                break;
            case NodeKind::kTryStmt: {
                const auto& n = static_cast<const php::TryStmt&>(stmt);
                lower_list(n.body);
                for (size_t i = 0; i < n.catches.size(); ++i) {
                    const php::CatchClause& c = n.catches[i];
                    const uint32_t id = emit(Op::kCatchBind, 0, &n, kNoValue,
                                             static_cast<uint32_t>(i));
                    if (!c.var.empty()) note_def(id, c.var);
                    lower_list(c.body);
                }
                lower_list(n.finally_body);
                break;
            }
            case NodeKind::kThrowStmt:
                if (const auto& n = static_cast<const php::ThrowStmt&>(stmt);
                    n.value)
                    lower_expr(*n.value, 1);
                break;
            case NodeKind::kNamespaceStmt:
                lower_list(static_cast<const php::NamespaceStmt&>(stmt).body);
                break;
            case NodeKind::kConstStmt: {
                const auto& n = static_cast<const php::ConstStmt&>(stmt);
                for (const auto& [name, value] : n.constants)
                    if (value) lower_expr(*value, 1);
                break;
            }
            case NodeKind::kBreakStmt:
            case NodeKind::kContinueStmt:
            case NodeKind::kInlineHtmlStmt:
            case NodeKind::kFunctionDecl:  // indexed during model construction
            case NodeKind::kUseStmt:
            default:
                break;
        }
    }

    // -- basic blocks ----------------------------------------------------------
    void build_blocks() {
        const uint32_t end = static_cast<uint32_t>(insts_.size());
        std::vector<uint32_t> leaders;
        leaders.push_back(0);
        leaders.push_back(end);
        for (uint32_t i = 0; i < end; ++i) {
            const Inst& inst = insts_[i];
            switch (inst.op) {
                case Op::kStmtGate:
                    leaders.push_back(i + 1);
                    leaders.push_back(inst.c);
                    break;
                case Op::kLoopBegin:
                    leaders.push_back(i + 1);
                    break;
                case Op::kLoopEnd:
                    leaders.push_back(i + 1);
                    leaders.push_back(inst.b);
                    break;
                default:
                    break;
            }
        }
        std::sort(leaders.begin(), leaders.end());
        leaders.erase(std::unique(leaders.begin(), leaders.end()),
                      leaders.end());

        // uses_/defs_ were appended in instruction order, so a two-pointer
        // sweep partitions them per block without re-sorting.
        size_t use_at = 0, def_at = 0;
        for (size_t i = 0; i + 1 < leaders.size(); ++i) {
            Block block;
            block.first = leaders[i];
            block.count = leaders[i + 1] - leaders[i];
            if (block.count == 0) continue;
            block.uses_first = static_cast<uint32_t>(facts_.size());
            use_at = append_facts(uses_, use_at, leaders[i + 1]);
            block.uses_count =
                static_cast<uint32_t>(facts_.size()) - block.uses_first;
            block.defs_first = static_cast<uint32_t>(facts_.size());
            def_at = append_facts(defs_, def_at, leaders[i + 1]);
            block.defs_count =
                static_cast<uint32_t>(facts_.size()) - block.defs_first;
            blocks_.push_back(block);
        }
    }

    /// Appends the symbols of facts with inst index < `limit` (starting at
    /// `from`), deduplicated within the appended range; returns the new
    /// cursor.
    size_t append_facts(const std::vector<std::pair<uint32_t, Symbol>>& facts,
                        size_t from, uint32_t limit) {
        const size_t begin = facts_.size();
        while (from < facts.size() && facts[from].first < limit)
            facts_.push_back(facts[from++].second);
        std::sort(facts_.begin() + begin, facts_.end());
        facts_.erase(std::unique(facts_.begin() + begin, facts_.end()),
                     facts_.end());
        return from;
    }

    template <typename T>
    static const T* copy_out(Arena& arena, const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (v.empty()) return nullptr;
        T* mem =
            static_cast<T*>(arena.allocate(v.size() * sizeof(T), alignof(T)));
        std::memcpy(mem, v.data(), v.size() * sizeof(T));
        return mem;
    }

    const KnowledgeBase& kb_;
    const AnalysisOptions& options_;
    SymbolTable& symbols_;
    const int trips_;
    std::vector<Inst> insts_;
    std::vector<uint32_t> pool_;
    std::vector<Block> blocks_;
    std::vector<Symbol> facts_;
    std::vector<std::pair<uint32_t, Symbol>> uses_;
    std::vector<std::pair<uint32_t, Symbol>> defs_;
    uint16_t max_depth_ = 0;
};

}  // namespace

const Body& Module::lower(const KnowledgeBase& kb,
                          const AnalysisOptions& options, SymbolTable& symbols,
                          const ArenaVector<php::StmtPtr>& stmts) {
    if (const Body* existing = find(stmts)) return *existing;
    Lowerer lowerer(kb, options, symbols);
    lowerer.lower_list(stmts);
    const Body* body = lowerer.finish(arena_);
    bodies_.emplace(static_cast<const void*>(&stmts), body);
    return *body;
}

}  // namespace phpsafe::ir
