// Taint domain for the analysis engine. A TaintValue is the abstract value
// of one PHP expression/variable: which vulnerability kinds it can carry
// (active), which were neutralized by sanitizers but could be revived by
// revert functions (latent — paper §III.A "revert functions"), where the
// data originally entered (input vector, for the Table II root-cause
// analysis), and the data-flow trace phpSAFE shows the reviewer.
#pragma once

#include <string>
#include <vector>

#include "config/knowledge.h"
#include "util/source.h"

namespace phpsafe {

/// One hop in a data-flow trace (source → assignments → sink).
struct TaintStep {
    SourceLocation location;
    std::string description;
};

/// During function summarization, marks that a value depends on parameter
/// `param`: if the caller passes taint of a kind in `kinds`, it arrives here.
struct ParamFlow {
    int param = 0;
    VulnSet kinds = kBothVulns;
};

class TaintValue {
public:
    VulnSet active;                ///< exploitable kinds right now
    VulnSet latent;                ///< sanitized away; revivable by reverts
    InputVector vector = InputVector::kUnknown;
    bool user_input = false;       ///< directly from GET/POST/COOKIE/REQUEST
    bool via_oop = false;          ///< flowed through an OOP construct
    std::string object_class;      ///< inferred class when the value is an object
    std::vector<TaintStep> trace;
    std::vector<ParamFlow> param_flows;

    /// Traces are capped so merges in loops cannot grow without bound.
    static constexpr size_t kMaxTraceSteps = 24;

    static TaintValue clean() { return TaintValue{}; }

    static TaintValue source(VulnSet kinds, InputVector vec, SourceLocation loc,
                             std::string what);

    bool tainted(VulnKind kind) const noexcept { return active.contains(kind); }
    bool tainted_any() const noexcept { return active.any(); }
    bool depends_on_params() const noexcept { return !param_flows.empty(); }

    /// Control-flow join / concatenation: union of everything.
    void merge(const TaintValue& other);

    void add_step(SourceLocation loc, std::string description);

    /// Applies a sanitizer: `kinds` move from active to latent; parameter
    /// flows lose those kinds.
    void apply_sanitizer(VulnSet kinds, SourceLocation loc, const std::string& fn);

    /// Applies a revert function: latent kinds in `kinds` become active
    /// again; parameter flows conservatively regain them.
    void apply_revert(VulnSet kinds, SourceLocation loc, const std::string& fn);

    /// Adds/unions a parameter dependency.
    void add_param_flow(int param, VulnSet kinds);

    /// Drops everything (PHP unset(): paper marks the variable untainted).
    void reset() { *this = TaintValue{}; }
};

}  // namespace phpsafe
