// Taint domain for the analysis engine. A TaintValue is the abstract value
// of one PHP expression/variable: which vulnerability kinds it can carry
// (active), which were neutralized by sanitizers but could be revived by
// revert functions (latent — paper §III.A "revert functions"), where the
// data originally entered (input vector, for the Table II root-cause
// analysis), and the data-flow trace phpSAFE shows the reviewer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "config/knowledge.h"
#include "util/source.h"

namespace phpsafe {

/// One hop in a data-flow trace (source → assignments → sink).
struct TaintStep {
    SourceLocation location;
    std::string description;
};

/// Copy-on-write data-flow trace. The engine copies TaintValues on every
/// assignment, merge and argument pass; with an eager std::vector<TaintStep>
/// each copy duplicated up to kMaxTraceSteps location strings. A Trace is
/// instead an immutable cons list (each node holds one step and a shared
/// pointer to its parent), so copying a trace — and therefore a TaintValue —
/// is one refcount increment, and extending it never touches the copies
/// already handed out. The flat step vector is materialized only when a
/// finding is reported.
class Trace {
public:
    bool empty() const noexcept { return head_ == nullptr; }
    size_t size() const noexcept { return head_ ? head_->depth : 0; }
    void clear() noexcept { head_.reset(); }

    /// Appends a step. Shared suffixes are untouched: values that copied
    /// this trace earlier keep their version.
    void push(SourceLocation loc, std::string description);

    /// The most recent step; trace must be non-empty.
    const TaintStep& back() const noexcept { return head_->step; }

    /// Materializes the steps in source order (oldest first).
    std::vector<TaintStep> steps() const;

    /// Folds every step (newest first) into an FNV-1a accumulator without
    /// materializing the step vector; used by value_fingerprint.
    uint64_t fold_fnv(uint64_t hash) const noexcept;

private:
    struct Node {
        TaintStep step;
        std::shared_ptr<const Node> parent;
        uint32_t depth = 0;  ///< number of steps up to and including this one
    };
    std::shared_ptr<const Node> head_;
};

/// During function summarization, marks that a value depends on parameter
/// `param`: if the caller passes taint of a kind in `kinds`, it arrives here.
struct ParamFlow {
    int param = 0;
    VulnSet kinds = kBothVulns;
};

class TaintValue {
public:
    VulnSet active;                ///< exploitable kinds right now
    VulnSet latent;                ///< sanitized away; revivable by reverts
    InputVector vector = InputVector::kUnknown;
    bool user_input = false;       ///< directly from GET/POST/COOKIE/REQUEST
    bool via_oop = false;          ///< flowed through an OOP construct
    std::string object_class;      ///< inferred class when the value is an object
    Trace trace;
    std::vector<ParamFlow> param_flows;

    /// Traces are capped so merges in loops cannot grow without bound.
    static constexpr size_t kMaxTraceSteps = 24;

    static TaintValue clean() { return TaintValue{}; }

    static TaintValue source(VulnSet kinds, InputVector vec, SourceLocation loc,
                             std::string what);

    bool tainted(VulnKind kind) const noexcept { return active.contains(kind); }
    bool tainted_any() const noexcept { return active.any(); }
    bool depends_on_params() const noexcept { return !param_flows.empty(); }

    /// Control-flow join / concatenation: union of everything.
    void merge(const TaintValue& other);

    void add_step(SourceLocation loc, std::string description);

    /// Applies a sanitizer: `kinds` move from active to latent; parameter
    /// flows lose those kinds.
    void apply_sanitizer(VulnSet kinds, SourceLocation loc, std::string_view fn);

    /// Applies a revert function: latent kinds in `kinds` become active
    /// again; parameter flows conservatively regain them.
    void apply_revert(VulnSet kinds, SourceLocation loc, std::string_view fn);

    /// Adds/unions a parameter dependency.
    void add_param_flow(int param, VulnSet kinds);

    /// Drops everything (PHP unset(): paper marks the variable untainted).
    void reset() { *this = TaintValue{}; }
};

/// 64-bit FNV-1a digest of every field (trace steps included) such that two
/// values with equal fingerprints are interchangeable for analysis: used by
/// the entry-seeding machinery to check that a shared slot still holds the
/// value a captured walk observed. Never returns 0, so observation records
/// can use 0 to mean "slot absent".
uint64_t value_fingerprint(const TaintValue& value);

}  // namespace phpsafe
